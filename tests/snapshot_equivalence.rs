//! Snapshot-cache equivalence: the cold-start snapshot cache is a pure
//! memoization layer, so enabling it must never change a single byte of any
//! report. These tests run the full pipeline twice per cell — snapshots
//! force-disabled vs. force-enabled with a fresh store — and demand
//! byte-identical serialized outcomes across a chaos grid, with and without
//! platform jitter.
//!
//! The companion guarantee — that the goldens under `tests/golden/` keep
//! passing with snapshots on and *without* re-blessing (`SLIMSTART_BLESS=1`)
//! — is enforced by `tests/golden_reports.rs`, which runs with the default
//! (snapshot-enabled) platform configuration.

use std::sync::Arc;

use slimstart::appmodel::catalog::{fleet_population, CatalogApp};
use slimstart::core::export::outcome_to_json;
use slimstart::core::pipeline::{Pipeline, PipelineConfig};
use slimstart::platform::chaos::ChaosConfig;
use slimstart::platform::PlatformConfig;
use slimstart::pyrt::snapshot::SnapshotStore;

/// Serialize one pipeline run with the given platform config.
fn run_json(
    entry: &CatalogApp,
    seed: u64,
    chaos: Option<ChaosConfig>,
    platform: PlatformConfig,
) -> String {
    let built = entry.build(seed).expect("catalog blueprint builds");
    let mut config = PipelineConfig::default()
        .with_cold_starts(8)
        .with_platform(platform)
        .with_seed(seed);
    if let Some(mix) = chaos {
        config = config.with_chaos(mix);
    }
    let outcome = Pipeline::new(config)
        .run(&built.app, &entry.workload_weights())
        .expect("pipeline completes");
    outcome_to_json(&outcome)
}

/// Run disabled-vs-enabled on one cell and return the enabled-side store so
/// callers can assert the cache actually participated.
fn assert_equivalent(
    entry: &CatalogApp,
    seed: u64,
    chaos: Option<ChaosConfig>,
    base: PlatformConfig,
    label: &str,
) -> Arc<SnapshotStore> {
    let store = Arc::new(SnapshotStore::new());
    let disabled = run_json(entry, seed, chaos, base.clone().without_snapshots());
    let enabled = run_json(entry, seed, chaos, base.with_snapshot_store(store.clone()));
    assert_eq!(
        disabled, enabled,
        "{label} ({}, seed {seed}): snapshot cache changed the report",
        entry.code
    );
    store
}

#[test]
fn chaos_free_reports_are_byte_identical_with_snapshots_on() {
    let population = fleet_population(3);
    for (i, entry) in population.iter().enumerate() {
        let seed = 100 + i as u64 * 13;
        let store = assert_equivalent(
            entry,
            seed,
            None,
            PlatformConfig::default().without_jitter(),
            "chaos-off",
        );
        // Eight cold starts per deployment: the first misses and captures,
        // the rest must restore from the cache — otherwise this test is
        // vacuously comparing two identical non-cached runs.
        assert!(
            store.hits() > 0,
            "{}: cache never hit (misses {})",
            entry.code,
            store.misses()
        );
        // One miss per distinct deployment fingerprint: the pipeline deploys
        // the original app and its optimized rewrite through the same store.
        assert_eq!(
            store.misses(),
            2,
            "{}: two deployments, two misses",
            entry.code
        );
    }
}

#[test]
fn jittered_time_scales_restore_exactly() {
    // Platform jitter gives every container its own time scale; the restore
    // path re-applies raw per-module costs through the same per-load scaling
    // as the loader, so byte equality must survive jitter too.
    let population = fleet_population(2);
    for (i, entry) in population.iter().enumerate() {
        let store = assert_equivalent(
            entry,
            7_000 + i as u64,
            None,
            PlatformConfig::default(),
            "jittered",
        );
        assert!(store.hits() > 0, "{}: cache never hit", entry.code);
    }
}

#[test]
fn chaos_grid_stays_equivalent() {
    // Fault injection perturbs which cold starts happen and when; the cache
    // key mixes the chaos rates, and restores must remain byte-invisible
    // under every mix (including observer-free sampler-dropout containers,
    // which are snapshot-eligible).
    let mixes = [
        ("uniform-0.25", ChaosConfig::uniform(0.25)),
        (
            "platform-storm",
            ChaosConfig {
                crash_during_init: 0.5,
                reclamation_storm: 0.4,
                sampler_dropout: 0.5,
                ..ChaosConfig::DISABLED
            },
        ),
        (
            "deploy-storm",
            ChaosConfig {
                deploy_failure: 0.9,
                ..ChaosConfig::DISABLED
            },
        ),
    ];
    let population = fleet_population(2);
    for (m, (name, mix)) in mixes.iter().enumerate() {
        let entry = &population[m % population.len()];
        assert_equivalent(
            entry,
            4_242 + m as u64 * 101,
            Some(*mix),
            PlatformConfig::default().without_jitter(),
            name,
        );
    }
}
