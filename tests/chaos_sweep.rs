//! Chaos conformance sweep: a seed × fault-mix grid driving the full
//! pipeline under fault injection and asserting the resilience invariants
//! that make the subsystem trustworthy:
//!
//! 1. **No panics, always an outcome.** Every (seed, mix) cell terminates
//!    with a `PipelineOutcome` — faults degrade runs, they never abort them.
//! 2. **Optimizations stay safe under chaos.** No cell ever surfaces a
//!    `RuntimeFault::StrippedModuleCall`: degraded (conservative) and
//!    rolled-back paths must never deploy an unsound rewrite.
//! 3. **Degradation is consistent.** A rolled-back run carries no
//!    optimization; a conservative run reports a degraded profile.
//! 4. **Determinism.** Identical (seed, mix) cells reproduce byte-identical
//!    report JSON, which is what makes the whole sweep assertable.

use slimstart::appmodel::catalog::{fleet_population, CatalogApp};
use slimstart::core::export::outcome_to_json;
use slimstart::core::pipeline::{Pipeline, PipelineConfig, PipelineError, PipelineOutcome};
use slimstart::core::resilience::DegradationLevel;
use slimstart::platform::chaos::ChaosConfig;
use slimstart::platform::PlatformConfig;

/// The fault-mix grid: uniform low/medium/high pressure plus three
/// targeted storms that each lean on one resilience path.
fn mixes() -> Vec<(&'static str, ChaosConfig)> {
    let deploy_storm = ChaosConfig {
        deploy_failure: 0.9,
        ..ChaosConfig::DISABLED
    };
    let upload_storm = ChaosConfig {
        upload_loss: 0.9,
        upload_truncation: 0.5,
        ..ChaosConfig::DISABLED
    };
    let platform_storm = ChaosConfig {
        crash_during_init: 0.5,
        reclamation_storm: 0.4,
        sampler_dropout: 0.5,
        ..ChaosConfig::DISABLED
    };
    vec![
        ("uniform-0.05", ChaosConfig::uniform(0.05)),
        ("uniform-0.25", ChaosConfig::uniform(0.25)),
        ("uniform-0.60", ChaosConfig::uniform(0.60)),
        ("deploy-storm", deploy_storm),
        ("upload-storm", upload_storm),
        ("platform-storm", platform_storm),
    ]
}

/// The sweep population: the first five catalog apps. The later
/// FaaSLight-suite entries are orders of magnitude larger (FL-PWM alone
/// simulates for ~a minute per debug-build run) and add no new resilience
/// paths — size is orthogonal to fault handling.
fn population() -> Vec<CatalogApp> {
    fleet_population(5)
}

fn run_cell(entry: &CatalogApp, seed: u64, mix: ChaosConfig) -> PipelineOutcome {
    let built = entry.build(seed).expect("catalog blueprint builds");
    let config = PipelineConfig::default()
        .with_cold_starts(6)
        .with_platform(PlatformConfig::default().without_jitter())
        .with_seed(seed)
        .with_chaos(mix);
    match Pipeline::new(config).run(&built.app, &entry.workload_weights()) {
        Ok(outcome) => outcome,
        Err(PipelineError::Fault(fault)) => panic!(
            "{} seed {seed}: chaos surfaced a runtime fault (an unsound \
             optimization was deployed): {fault}",
            entry.code
        ),
        Err(other) => panic!("{} seed {seed}: pipeline failed: {other}", entry.code),
    }
}

#[test]
fn sweep_terminates_safely_and_degrades_consistently() {
    let population = population();
    let mixes = mixes();
    let mut cells = 0usize;
    let mut degraded = 0usize;
    for (m, (name, mix)) in mixes.iter().enumerate() {
        for s in 0..12u64 {
            let seed = 1000 + s * 37 + m as u64;
            let entry = &population[(cells) % population.len()];
            let outcome = run_cell(entry, seed, *mix);
            cells += 1;

            let res = &outcome.resilience;
            assert!(res.chaos_enabled, "{name}: chaos must be on in the sweep");
            match res.degradation {
                DegradationLevel::RolledBack => {
                    degraded += 1;
                    assert!(
                        outcome.optimization.is_none(),
                        "{name} seed {seed}: rolled-back run still carries an optimization"
                    );
                    assert!(res.deploy_retries > 0 || res.faults_injected > 0);
                }
                DegradationLevel::Conservative => {
                    degraded += 1;
                    assert!(
                        res.faults_injected > 0,
                        "{name} seed {seed}: conservative mode without any injected fault"
                    );
                }
                DegradationLevel::None => {}
            }
            if res.recovered {
                assert!(res.faults_injected > 0);
                assert_eq!(res.degradation, DegradationLevel::None);
            }
        }
    }
    assert!(
        cells >= 64,
        "grid must cover at least 64 cells, got {cells}"
    );
    assert!(
        degraded > 0,
        "a sweep at these rates must exercise the degradation paths"
    );
}

#[test]
fn identical_cells_reproduce_byte_identical_reports() {
    let population = population();
    // Sample one seed per mix — full JSON equality, not just field spot
    // checks, so any nondeterminism anywhere in the outcome surfaces.
    for (m, (name, mix)) in mixes().iter().enumerate() {
        let seed = 4242 + m as u64 * 101;
        let entry = &population[m % population.len()];
        let first = outcome_to_json(&run_cell(entry, seed, *mix));
        let second = outcome_to_json(&run_cell(entry, seed, *mix));
        assert_eq!(first, second, "{name}: same (seed, mix) must replay");
        assert!(
            first.contains("\"resilience\""),
            "{name}: chaos-enabled outcomes must carry the resilience object"
        );
    }
}

#[test]
fn nearby_seeds_produce_distinct_fault_schedules() {
    // The chaos stream is seeded per experiment; neighboring seeds must not
    // share a schedule (a classic low-entropy seeding bug).
    let population = population();
    let entry = &population[0];
    let mix = ChaosConfig::uniform(0.25);
    let a = outcome_to_json(&run_cell(entry, 9000, mix));
    let b = outcome_to_json(&run_cell(entry, 9001, mix));
    assert_ne!(
        a, b,
        "adjacent seeds should diverge somewhere in the report"
    );
}
