//! Optimizer safety: the transformation must preserve observable behaviour.
//!
//! "Observable behaviour" in the model is: the same handler invocations,
//! with the same payload seeds, perform the same compute work and never
//! fault — only *when* modules load may change. These tests drive baseline
//! and optimized deployments with identical invocation streams and compare.

use std::sync::Arc;

use slimstart::appmodel::catalog::{by_code, catalog};
use slimstart::core::pipeline::{Pipeline, PipelineConfig};
use slimstart::platform::platform::{Platform, PlatformConfig};
use slimstart::pyrt::RuntimeFault;
use slimstart::simcore::time::SimDuration;
use slimstart::workload::generator::generate;
use slimstart::workload::spec::WorkloadSpec;

fn jitterless(cold_starts: usize) -> PipelineConfig {
    PipelineConfig::default()
        .with_cold_starts(cold_starts)
        .with_platform(PlatformConfig::default().without_jitter())
}

/// Pure compute time of an invocation: execution minus deferred loading.
fn work_ms(r: &slimstart::platform::invocation::InvocationRecord) -> f64 {
    (r.exec_latency - r.deferred_load_time).as_millis_f64()
}

#[test]
fn optimized_app_performs_identical_work() {
    for code in ["R-GB", "R-SA", "CVE", "FL-SA"] {
        let entry = by_code(code).expect("exists");
        let built = entry.build(21).expect("builds");
        let out = Pipeline::new(jitterless(50))
            .run(&built.app, &entry.workload_weights())
            .expect("pipeline runs");
        assert!(out.optimized_anything(), "{code} should optimize");

        // Re-run both versions on one identical stream, including the rare
        // handlers (weights that exercise every entry point).
        let mut mix = entry.workload_weights();
        for w in &mut mix {
            if w.1 == 0.0 {
                w.1 = 0.2; // push traffic through the workload-dead handler
            }
        }
        let spec = WorkloadSpec::cold_starts_with_mix(&mix, 60);
        let invs = generate(&spec, &built.app, 77).expect("workload");

        let mut base = Platform::new(
            Arc::new(built.app.clone()),
            PlatformConfig::default().without_jitter(),
            1,
        );
        let base_records = base.run(&invs).expect("baseline never faults").to_vec();

        let mut opt = Platform::new(
            Arc::clone(&out.final_app),
            PlatformConfig::default().without_jitter(),
            1,
        );
        let opt_records = opt.run(&invs).expect("optimized must never fault").to_vec();

        assert_eq!(base_records.len(), opt_records.len());
        for (b, o) in base_records.iter().zip(&opt_records) {
            assert_eq!(b.handler, o.handler);
            let diff = (work_ms(b) - work_ms(o)).abs();
            assert!(
                diff < 1e-6,
                "{code}: work changed for an invocation: {} vs {}",
                work_ms(b),
                work_ms(o)
            );
        }
    }
}

#[test]
fn deferred_modules_load_exactly_once_per_container() {
    let entry = by_code("CVE").expect("exists");
    let built = entry.build(5).expect("builds");
    let out = Pipeline::new(jitterless(50))
        .run(&built.app, &entry.workload_weights())
        .expect("runs");

    // Warm stream against one container: the rare path fires repeatedly but
    // xmlschema loads once.
    let app = Arc::clone(&out.final_app);
    let mut process = slimstart::pyrt::process::Process::new(Arc::clone(&app), 1.0);
    let handler_mod = app.module_by_name("handler").expect("handler");
    process.cold_start(handler_mod).expect("no fault");
    let xml = app.module_by_name("xmlschema").expect("xmlschema");
    assert!(
        !process.is_loaded(xml),
        "deferred module must not load eagerly"
    );

    let handler = app.handler_by_name("handler").expect("handler");
    let mut first_load_seen = false;
    for seed in 0..3_000u64 {
        let mut rng = slimstart::simcore::rng::SimRng::seed_from(seed);
        process.invoke(handler, &mut rng).expect("no fault");
        if process.is_loaded(xml) {
            first_load_seen = true;
            break;
        }
    }
    assert!(
        first_load_seen,
        "the 0.8% branch should fire within 3000 tries"
    );
    let loads_before = process.load_events().len();
    for seed in 10_000..10_500u64 {
        let mut rng = slimstart::simcore::rng::SimRng::seed_from(seed);
        process.invoke(handler, &mut rng).expect("no fault");
    }
    assert_eq!(
        process.load_events().len(),
        loads_before,
        "module cache must prevent re-loading"
    );
}

#[test]
fn over_aggressive_stripping_faults_loudly() {
    // Contrast: if a (hypothetical, buggy) optimizer *strips* a
    // workload-dead package instead of deferring it, invoking the admin
    // handler faults — which is why FaaSLight must stay conservative and
    // why SlimStart defers instead of deleting.
    let entry = by_code("R-GB").expect("exists");
    let built = entry.build(5).expect("builds");
    let mut broken = built.app.clone();
    let tree = broken.package_tree();
    for m in tree.modules_under("igraph.drawing") {
        broken.module_mut(m).set_stripped(true);
    }
    let broken = Arc::new(broken);

    let mut process = slimstart::pyrt::process::Process::new(Arc::clone(&broken), 1.0);
    let handler_mod = broken.module_by_name("handler").expect("handler");
    process.cold_start(handler_mod).expect("cold start is fine");
    let admin = broken.handler_by_name("admin").expect("admin");
    let err = process
        .invoke(admin, &mut slimstart::simcore::rng::SimRng::seed_from(1))
        .expect_err("calling into a stripped package must fault");
    assert!(matches!(err, RuntimeFault::StrippedModuleCall { .. }));
}

#[test]
fn optimization_does_not_regress_any_gated_app() {
    // Broad sweep: optimized e2e must never be slower than baseline (mean).
    for entry in catalog().into_iter().filter(|e| e.above_gate()) {
        let built = entry.build(31).expect("builds");
        let out = Pipeline::new(jitterless(20))
            .run(&built.app, &entry.workload_weights())
            .expect("runs");
        assert!(
            out.speedup.e2e >= 0.999,
            "{}: optimization regressed e2e ({:.3}x)",
            entry.code,
            out.speedup.e2e
        );
        assert!(
            out.speedup.init >= 0.999,
            "{}: optimization regressed init ({:.3}x)",
            entry.code,
            out.speedup.init
        );
    }
}

#[test]
fn side_effectful_modules_always_load_eagerly_after_optimization() {
    for code in ["R-GB", "FL-SA", "FL-SN"] {
        let entry = by_code(code).expect("exists");
        let built = entry.build(17).expect("builds");
        let out = Pipeline::new(jitterless(40))
            .run(&built.app, &entry.workload_weights())
            .expect("runs");
        let app = Arc::clone(&out.final_app);
        let mut process = slimstart::pyrt::process::Process::new(Arc::clone(&app), 1.0);
        let handler_mod = app.module_by_name("handler").expect("handler");
        process.cold_start(handler_mod).expect("no fault");
        for (i, module) in app.modules().iter().enumerate() {
            if module.side_effectful() {
                assert!(
                    process.is_loaded(slimstart::appmodel::ModuleId::from_index(i)),
                    "{code}: side-effectful {} must load at cold start",
                    module.name()
                );
            }
        }
    }
}

#[test]
fn double_optimization_is_idempotent() {
    let entry = by_code("R-GB").expect("exists");
    let built = entry.build(23).expect("builds");
    let pipeline = Pipeline::new(jitterless(40));
    let first = pipeline
        .run(&built.app, &entry.workload_weights())
        .expect("runs");
    // Run the pipeline again on the already-optimized app: nothing new to
    // defer, so it must not change the app further (flagged packages no
    // longer appear in the eager cold path).
    let second = pipeline
        .run(&first.final_app, &entry.workload_weights())
        .expect("runs");
    let newly_deferred = second
        .optimization
        .as_ref()
        .map(|o| o.edits.len())
        .unwrap_or(0);
    assert_eq!(newly_deferred, 0, "re-optimization must be a fixpoint");
    // And performance holds steady.
    assert!((second.speedup.e2e - 1.0).abs() < 0.02);
    let _ = SimDuration::ZERO;
}
