//! Eviction-order determinism for the budgeted [`SnapshotStore`].
//!
//! The store's cost-aware eviction picks victims through a *total* order —
//! rebuild-cost-per-byte score, then sim-clock LRU, then the snapshot key —
//! so the victim can never depend on `HashMap` iteration order, allocator
//! state, or anything else that varies between runs. This property test
//! drives a seeded op sequence (inserts across fingerprint generations,
//! LRU-touching lookups, and interleaved redeploy invalidations) against
//! `SnapshotStore::with_limits` twice with the same seed and requires the
//! full observable trace — hit/miss outcomes, eviction counts, occupancy,
//! and resident bytes after every op — to match exactly. A diverging trace
//! means eviction picked different victims, which would leak scheduling
//! nondeterminism into every fleet report built on the node pool.

use slimstart::pyrt::snapshot::{SnapLoad, Snapshot, SnapshotKey, SnapshotStore};
use slimstart::simcore::{SimDuration, SimRng, SimTime};
use slimstart_appmodel::ModuleId;

/// One observable store state, recorded after every operation.
#[derive(Debug, PartialEq, Eq)]
struct TracePoint {
    op: String,
    hits: u64,
    misses: u64,
    evictions: u64,
    entries: usize,
    resident_bytes: u64,
}

fn synthetic_snapshot(rng: &mut SimRng) -> Snapshot {
    // 1-4 loads over a 64-module space; sizes and costs vary so the
    // cost-per-byte eviction score actually discriminates between entries.
    let n = 1 + rng.next_below(4);
    let loads: Box<[SnapLoad]> = (0..n)
        .map(|_| SnapLoad {
            module: ModuleId::from_index(rng.next_below(64)),
            init_cost: SimDuration::from_micros(50 + rng.next_below(5000) as u64),
            mem_kb: 64 + rng.next_below(2048) as u64,
        })
        .collect();
    let mut loaded = [0u64; 1];
    for load in loads.iter() {
        loaded[0] |= 1 << load.module.index();
    }
    let nominal_init = loads.iter().map(|l| l.init_cost).sum();
    Snapshot {
        loaded_count: loaded[0].count_ones() as usize,
        loaded: Box::new(loaded),
        nominal_init,
        working: None,
        loads,
    }
}

/// Runs the seeded op mix against a fresh budgeted store and returns the
/// per-op observable trace.
fn run_trace(seed: u64) -> Vec<TracePoint> {
    const GENERATIONS: [u64; 3] = [0xAAAA, 0xBBBB, 0xCCCC];
    // Tight budget relative to the ~0.1-2 MiB snapshots above, so budget
    // eviction fires constantly, not just at the margins.
    let store = SnapshotStore::with_limits(Some(4 * 1024 * 1024), true);
    let mut rng = SimRng::seed_from(seed);
    let mut inserted: Vec<SnapshotKey> = Vec::new();
    let mut trace = Vec::new();
    for step in 0..400u64 {
        let now = SimTime::default() + SimDuration::from_micros(step * 1_000);
        let op = match rng.next_below(10) {
            // Inserts dominate so the store keeps refilling after each
            // invalidation wave.
            0..=5 => {
                let fingerprint = *rng.pick(&GENERATIONS);
                let key = SnapshotKey::new(ModuleId::from_index(rng.next_below(64)), fingerprint);
                store.insert(key, synthetic_snapshot(&mut rng), now);
                inserted.push(key);
                format!("insert {}/{:x}", key.root.index(), fingerprint)
            }
            6..=8 if !inserted.is_empty() => {
                let key = *rng.pick(&inserted);
                let hit = store.get(&key, now).is_some();
                format!("get {}/{:x} -> {hit}", key.root.index(), key.fingerprint)
            }
            _ => {
                // Redeploy: one generation survives, the rest are evicted.
                let fingerprint = *rng.pick(&GENERATIONS);
                let evicted = store.invalidate_stale(fingerprint);
                format!("invalidate != {fingerprint:x} -> {evicted}")
            }
        };
        trace.push(TracePoint {
            op,
            hits: store.hits(),
            misses: store.misses(),
            evictions: store.evictions(),
            entries: store.len(),
            resident_bytes: store.resident_bytes(),
        });
    }
    trace
}

#[test]
fn same_seed_runs_evict_in_the_same_order() {
    let first = run_trace(2025);
    let second = run_trace(2025);
    assert_eq!(first.len(), second.len());
    for (i, (a, b)) in first.iter().zip(second.iter()).enumerate() {
        assert_eq!(a, b, "trace diverged at op {i}");
    }
    // The sequence must actually exercise the machinery it pins down.
    let last = first.last().expect("non-empty trace");
    assert!(last.evictions > 0, "no evictions happened");
    assert!(last.hits > 0 && last.misses > 0, "lookups never split");
    assert!(
        first.iter().any(|p| p.op.starts_with("invalidate")),
        "no redeploy invalidation ran"
    );
    assert!(
        last.resident_bytes <= 4 * 1024 * 1024,
        "budget exceeded: {} bytes resident",
        last.resident_bytes
    );
}

#[test]
fn different_seeds_produce_different_traces() {
    // Sanity check on the harness itself: if every seed yielded the same
    // trace the determinism assertion above would be vacuous.
    assert_ne!(run_trace(2025), run_trace(31));
}
