//! Differential property test for the timing-wheel event queue.
//!
//! The wheel ([`EventQueue`]) replaced the binary heap as the simulation
//! scheduler; the heap survives as [`ReferenceEventQueue`] precisely so this
//! suite can drive both through identical operation interleavings and demand
//! identical observable behavior:
//!
//! 1. **Same pops.** Every `pop` returns the same `(time, payload)` pair from
//!    both queues, including FIFO tie-breaking for events scheduled at the
//!    same instant.
//! 2. **Same batches.** `pop_due_into` drains the same due prefix in the same
//!    order at every probed horizon.
//! 3. **Same bookkeeping.** `len`/`peek_time` agree after every operation.
//!
//! The generated schedules deliberately include same-instant ties, past-time
//! schedules (at times already popped), and far-future offsets beyond the
//! wheel's 2^42 µs horizon so the overflow spill/rescue path is exercised.

use slimstart::simcore::event::reference::ReferenceEventQueue;
use slimstart::simcore::event::EventQueue;
use slimstart::simcore::{SimRng, SimTime};

/// One randomized interleaving: mixed schedule / pop / pop_due_into traffic
/// driven against both queues in lockstep.
fn drive(seed: u64, ops: usize) {
    let mut rng = SimRng::seed_from(seed);
    let mut wheel: EventQueue<u64> = EventQueue::new();
    let mut heap: ReferenceEventQueue<u64> = ReferenceEventQueue::new();
    let mut wheel_buf = Vec::new();
    let mut heap_buf = Vec::new();
    let mut now = SimTime::ZERO;
    let mut payload = 0u64;

    for op in 0..ops {
        match rng.next_below(10) {
            // Schedule-heavy mix keeps the queues populated.
            0..=5 => {
                let offset = match rng.next_below(20) {
                    // Common case: near-future offsets inside level 0..3.
                    0..=13 => rng.next_below(1_000_000) as u64,
                    // Mid-range: minutes out, upper wheel levels.
                    14..=17 => rng.next_below(60_000_000) as u64,
                    // Same-instant tie with whatever `now` is.
                    18 => 0,
                    // Beyond the 2^42 µs horizon: overflow list.
                    _ => (1u64 << 43) + rng.next_below(1_000_000) as u64,
                };
                // Occasionally aim *behind* the cursor: a past-time schedule
                // must still pop (clamped), ordered by its true timestamp.
                let at = if rng.chance(0.1) && now.as_micros() > 10 {
                    SimTime::from_micros(now.as_micros() - rng.next_below(10) as u64)
                } else {
                    SimTime::from_micros(now.as_micros() + offset)
                };
                payload += 1;
                wheel.schedule(at, payload);
                heap.schedule(at, payload);
            }
            6..=7 => {
                let a = wheel.pop();
                let b = heap.pop();
                assert_eq!(a, b, "seed {seed} op {op}: pop diverged");
                if let Some((at, _)) = a {
                    now = now.max(at);
                }
            }
            _ => {
                let horizon =
                    SimTime::from_micros(now.as_micros() + rng.next_below(5_000_000) as u64);
                wheel.pop_due_into(horizon, &mut wheel_buf);
                heap.pop_due_into(horizon, &mut heap_buf);
                assert_eq!(
                    wheel_buf, heap_buf,
                    "seed {seed} op {op}: pop_due_into diverged at {horizon:?}"
                );
                if let Some((at, _)) = wheel_buf.last() {
                    now = now.max(*at);
                }
            }
        }
        assert_eq!(wheel.len(), heap.len(), "seed {seed} op {op}: len diverged");
        assert_eq!(
            wheel.peek_time(),
            heap.peek_time(),
            "seed {seed} op {op}: peek_time diverged"
        );
    }

    // Full drain must agree to the last event.
    while let Some(expected) = heap.pop() {
        assert_eq!(wheel.pop(), Some(expected), "seed {seed}: drain diverged");
    }
    assert!(wheel.is_empty());
}

#[test]
fn random_interleavings_match_the_reference_heap() {
    for seed in [1, 7, 42, 1234, 0xDEAD_BEEF, 2025] {
        drive(seed, 3_000);
    }
}

#[test]
fn same_instant_ties_drain_in_schedule_order() {
    let mut wheel: EventQueue<&str> = EventQueue::new();
    let mut heap: ReferenceEventQueue<&str> = ReferenceEventQueue::new();
    let at = SimTime::from_millis(5);
    for payload in ["first", "second", "third", "fourth"] {
        wheel.schedule(at, payload);
        heap.schedule(at, payload);
    }
    // A later event must not disturb the tie order of the earlier four.
    wheel.schedule(SimTime::from_millis(6), "later");
    heap.schedule(SimTime::from_millis(6), "later");
    for _ in 0..5 {
        assert_eq!(wheel.pop(), heap.pop());
    }
    assert_eq!(wheel.pop(), None);
}

#[test]
fn far_future_overflow_agrees_with_the_heap() {
    let mut wheel: EventQueue<u32> = EventQueue::new();
    let mut heap: ReferenceEventQueue<u32> = ReferenceEventQueue::new();
    // Interleave near events with ones far past the wheel horizon, then a
    // second near wave after the first drain forces overflow redistribution.
    let far = 1u64 << 44;
    for (i, at) in [3, far, 1, far + 2, 2, far + 1].iter().enumerate() {
        wheel.schedule(SimTime::from_micros(*at), i as u32);
        heap.schedule(SimTime::from_micros(*at), i as u32);
    }
    for _ in 0..3 {
        assert_eq!(wheel.pop(), heap.pop());
    }
    wheel.schedule(SimTime::from_micros(far + 3), 99);
    heap.schedule(SimTime::from_micros(far + 3), 99);
    while let Some(expected) = heap.pop() {
        assert_eq!(wheel.pop(), Some(expected));
    }
    assert!(wheel.is_empty());
}
