//! Fleet-orchestrator determinism: the serialized [`FleetReport`] must be
//! byte-identical regardless of worker-pool size, because per-app RNG
//! streams are split from the experiment seed sequentially before any
//! worker starts (the work-stealing scheduler decides *when* an app runs,
//! never *with which randomness*), and chunk partials merge in population
//! index order through associativity-exact folds.
//!
//! Covers the small-catalog contract, a 2k-app scale-out cell swept over
//! 1/2/4/8 threads (chaos on and off), and a seeded property sweep
//! proving that random worker counts, chunk sizes, and artificial per-app
//! delays can never change which seed an app receives.

use std::sync::Arc;
use std::time::Duration;

use slimstart::appmodel::catalog::light_population;
use slimstart::fleet::report::seed_digest_term;
use slimstart::fleet::{FleetConfig, FleetOrchestrator, FleetReport, StallHook};
use slimstart::platform::chaos::ChaosConfig;
use slimstart::platform::PlatformConfig;
use slimstart::simcore::SimRng;
use slimstart_core::pipeline::PipelineConfig;

fn run(threads: usize) -> FleetReport {
    let config = FleetConfig::default()
        .with_apps(6)
        .with_threads(threads)
        .with_seed(2025)
        .with_cold_starts(10)
        .with_pipeline(
            PipelineConfig::default().with_platform(PlatformConfig::default().without_jitter()),
        );
    let (report, stats) = FleetOrchestrator::new(config).run().expect("fleet runs");
    assert!(stats.threads <= threads.max(1));
    report
}

fn run_chaotic(threads: usize) -> FleetReport {
    // The `slimstart chaos --fault-rate 0.2` configuration from the CLI
    // contract, shrunk to a test-sized fleet. Five apps keeps the chaotic
    // fleet on the small catalog entries (profile-upload retries re-run
    // the profiling deployment, which is expensive on the FaaSLight apps).
    let config = FleetConfig::default()
        .with_apps(5)
        .with_threads(threads)
        .with_seed(2025)
        .with_cold_starts(10)
        .with_chaos(ChaosConfig::uniform(0.2))
        .with_pipeline(
            PipelineConfig::default().with_platform(PlatformConfig::default().without_jitter()),
        );
    let (report, _) = FleetOrchestrator::new(config).run().expect("fleet runs");
    report
}

#[test]
fn one_thread_and_eight_threads_emit_byte_identical_json() {
    let sequential = run(1);
    let parallel = run(8);
    assert_eq!(
        sequential.to_json(),
        parallel.to_json(),
        "FleetReport JSON must not depend on worker count"
    );
}

#[test]
fn chaotic_fleet_json_is_byte_identical_across_worker_counts() {
    // Fault injection draws from dedicated per-app chaos streams that are
    // split up front, exactly like the main seeds — so a 20 % fault rate
    // must not reintroduce any thread-count dependence.
    let sequential = run_chaotic(1);
    let parallel = run_chaotic(8);
    let json = sequential.to_json();
    assert_eq!(
        json,
        parallel.to_json(),
        "chaotic FleetReport JSON must not depend on worker count"
    );
    assert!(json.contains("\"chaos\""), "chaos summary must be present");
}

#[test]
fn chaos_free_reports_never_mention_chaos() {
    // The passthrough contract: with chaos disabled the serialized report
    // carries no trace of the fault-injection subsystem.
    assert!(!run(2).to_json().contains("chaos"));
}

#[test]
fn report_rows_follow_population_order() {
    let report = run(4);
    let codes: Vec<&str> = report.detail.iter().map(|a| a.code.as_str()).collect();
    let expected: Vec<&str> = slimstart::appmodel::catalog::fleet_population(6)
        .iter()
        .map(|e| e.code)
        .collect();
    assert_eq!(codes, expected);
    for (i, app) in report.detail.iter().enumerate() {
        assert_eq!(app.index, i);
    }
}

#[test]
fn different_seeds_change_per_app_streams() {
    let base = run(2);
    let config = FleetConfig::default()
        .with_apps(6)
        .with_threads(2)
        .with_seed(31)
        .with_cold_starts(10)
        .with_pipeline(
            PipelineConfig::default().with_platform(PlatformConfig::default().without_jitter()),
        );
    let (other, _) = FleetOrchestrator::new(config).run().expect("fleet runs");
    let base_seeds: Vec<u64> = base.detail.iter().map(|a| a.seed).collect();
    let other_seeds: Vec<u64> = other.detail.iter().map(|a| a.seed).collect();
    assert_ne!(base_seeds, other_seeds);
    assert_ne!(base.seed_digest, other.seed_digest);
}

#[test]
fn interned_symbol_ids_are_deterministic_across_runs_and_threads() {
    // The name interner assigns ids in insertion order, never by hash
    // iteration, so for the same seed the (name, id) assignment must be
    // identical run to run and on every worker thread — otherwise any
    // downstream use of symbol ids would silently depend on scheduling.
    use slimstart::appmodel::NameTable;

    fn table_for(seed: u64) -> Vec<(String, u32)> {
        let entry = slimstart::appmodel::catalog::by_code("R-GB").expect("catalog entry");
        let built = entry.build(seed).expect("app builds");
        let table = NameTable::build(&built.app);
        let ids: Vec<(String, u32)> = table
            .interner()
            .iter()
            .map(|(sym, name)| (name.to_string(), sym.index() as u32))
            .collect();
        ids
    }

    let sequential = table_for(2025);
    assert!(!sequential.is_empty());
    // Same seed, fresh run: identical assignment.
    assert_eq!(sequential, table_for(2025));

    // Eight threads racing the same build must all agree with it.
    let handles: Vec<_> = (0..8)
        .map(|_| std::thread::spawn(|| table_for(2025)))
        .collect();
    for handle in handles {
        assert_eq!(sequential, handle.join().expect("thread completes"));
    }

    // A different seed may legitimately produce a different app; the ids
    // must still be a pure function of the build, not of prior activity.
    assert_eq!(table_for(31), table_for(31));
}

#[test]
fn honors_runs_averaging_in_the_fleet_path() {
    // SLIMSTART_RUNS semantics: `runs` in the config is what the bench
    // runner wires the env var to; the report must carry it and the
    // averaged speedups must stay plausible.
    let config = FleetConfig::default()
        .with_apps(2)
        .with_threads(2)
        .with_seed(7)
        .with_cold_starts(10)
        .with_runs(3)
        .with_pipeline(
            PipelineConfig::default().with_platform(PlatformConfig::default().without_jitter()),
        );
    let (report, _) = FleetOrchestrator::new(config).run().expect("fleet runs");
    assert_eq!(report.runs, 3);
    assert!(report.to_json().contains("\"runs\":3"));
    for app in &report.detail {
        assert!(
            app.speedup.init >= 0.9,
            "{}: {}",
            app.code,
            app.speedup.init
        );
    }
}

/// A 2k-app scale-out configuration over the lightweight fixture
/// population — big enough that the detail window truncates, work
/// stealing kicks in across hundreds of chunks, and the streaming
/// aggregator carries real load, while staying fast in debug builds.
fn scale_config(threads: usize) -> FleetConfig {
    FleetConfig::default()
        .with_apps(2000)
        .with_threads(threads)
        .with_seed(2025)
        .with_cold_starts(2)
        .with_pipeline(
            PipelineConfig::default().with_platform(PlatformConfig::default().without_jitter()),
        )
}

fn scale_run(config: FleetConfig) -> (FleetReport, slimstart::fleet::FleetRunStats) {
    let population = light_population(config.apps);
    FleetOrchestrator::new(config)
        .run_population(&population)
        .expect("scale fleet runs")
}

#[test]
fn two_thousand_apps_are_byte_identical_across_1_2_4_8_threads() {
    let (baseline, stats) = scale_run(scale_config(1));
    let json = baseline.to_json();
    assert_eq!(baseline.fleet_size, 2000);
    assert!(
        baseline.detail_truncated,
        "2k apps must truncate the detail window"
    );
    assert_eq!(baseline.detail.len(), 32);
    assert_eq!(stats.threads, 1);
    for threads in [2, 4, 8] {
        let (report, stats) = scale_run(scale_config(threads));
        assert_eq!(
            json,
            report.to_json(),
            "report bytes moved between 1 and {threads} threads"
        );
        assert_eq!(stats.threads, threads);
        // The streaming path is constant-memory: the aggregation state
        // (fixed histograms + 32 detail rows + a few buffered chunk
        // partials) stays far below what 2000 retained rows would cost.
        assert!(
            stats.aggregate_peak_bytes < 256 * 1024,
            "peak aggregate {} B is not constant-memory",
            stats.aggregate_peak_bytes
        );
    }
    // Repeated run at the same thread count: byte-identical again.
    let (again, _) = scale_run(scale_config(4));
    assert_eq!(json, again.to_json());
}

#[test]
fn two_thousand_app_chaos_cell_is_byte_identical_across_worker_counts() {
    let chaotic = |threads: usize| {
        let (report, _) = scale_run(scale_config(threads).with_chaos(ChaosConfig::uniform(0.2)));
        report
    };
    let sequential = chaotic(1);
    let parallel = chaotic(8);
    let json = sequential.to_json();
    assert_eq!(json, parallel.to_json());
    assert!(json.contains("\"chaos\""), "chaos summary must be present");
    assert!(sequential.chaos.expect("chaos summary").faulted > 0);
}

#[test]
fn random_worker_counts_and_delays_never_change_seed_assignment() {
    // The work-queue property: `split_seed` assignment is a pure function
    // of the population index. Whatever the scheduler does — however many
    // workers race, however lopsided the chunking, however adversarial
    // the per-app delays injected through the stall hook — every app must
    // receive exactly the seed a sequential split hands it.
    let apps = 97; // odd size: the last chunk is always partial
    let expected: Vec<u64> = {
        let mut root = SimRng::seed_from(2025);
        (0..apps).map(|_| root.split_seed()).collect()
    };
    let expected_digest = expected
        .iter()
        .enumerate()
        .fold(0u64, |d, (i, &s)| d ^ seed_digest_term(i, s));

    let population = light_population(apps);
    let mut sweep_rng = SimRng::seed_from(0x5EED_51FE);
    let mut baseline_json: Option<String> = None;
    for trial in 0..4u64 {
        let threads = 1 + sweep_rng.next_below(8);
        let chunk = 1 + sweep_rng.next_below(9);
        // Deterministically lumpy per-app delays: some apps stall, some
        // do not, shifting completion order between configurations.
        let stall: StallHook =
            Arc::new(move |i| Duration::from_micros(((i as u64 * 37 + trial * 11) % 4) * 150));
        let config = scale_config(threads)
            .with_apps(apps)
            .with_chunk(chunk)
            .with_stall_hook(stall);
        let (report, _) = FleetOrchestrator::new(config)
            .run_population(&population)
            .expect("property fleet runs");
        assert_eq!(
            report.seed_digest, expected_digest,
            "trial {trial} (threads {threads}, chunk {chunk}) perturbed seed assignment"
        );
        let detail_seeds: Vec<u64> = report.detail.iter().map(|a| a.seed).collect();
        assert_eq!(detail_seeds, expected[..report.detail.len()]);
        let json = report.to_json();
        match &baseline_json {
            None => baseline_json = Some(json),
            Some(baseline) => assert_eq!(baseline, &json, "trial {trial} moved report bytes"),
        }
    }
}
