//! Fleet-orchestrator determinism: the serialized [`FleetReport`] must be
//! byte-identical regardless of worker-pool size, because per-app RNG
//! streams are split from the experiment seed sequentially before any
//! worker starts (thread scheduling decides *when* an app runs, never
//! *with which randomness*).

use slimstart::fleet::{FleetConfig, FleetOrchestrator, FleetReport};
use slimstart::platform::chaos::ChaosConfig;
use slimstart::platform::PlatformConfig;
use slimstart_core::pipeline::PipelineConfig;

fn run(threads: usize) -> FleetReport {
    let config = FleetConfig::default()
        .with_apps(6)
        .with_threads(threads)
        .with_seed(2025)
        .with_cold_starts(10)
        .with_pipeline(
            PipelineConfig::default().with_platform(PlatformConfig::default().without_jitter()),
        );
    let (report, stats) = FleetOrchestrator::new(config).run().expect("fleet runs");
    assert!(stats.threads <= threads.max(1));
    report
}

fn run_chaotic(threads: usize) -> FleetReport {
    // The `slimstart chaos --fault-rate 0.2` configuration from the CLI
    // contract, shrunk to a test-sized fleet. Five apps keeps the chaotic
    // fleet on the small catalog entries (profile-upload retries re-run
    // the profiling deployment, which is expensive on the FaaSLight apps).
    let config = FleetConfig::default()
        .with_apps(5)
        .with_threads(threads)
        .with_seed(2025)
        .with_cold_starts(10)
        .with_chaos(ChaosConfig::uniform(0.2))
        .with_pipeline(
            PipelineConfig::default().with_platform(PlatformConfig::default().without_jitter()),
        );
    let (report, _) = FleetOrchestrator::new(config).run().expect("fleet runs");
    report
}

#[test]
fn one_thread_and_eight_threads_emit_byte_identical_json() {
    let sequential = run(1);
    let parallel = run(8);
    assert_eq!(
        sequential.to_json(),
        parallel.to_json(),
        "FleetReport JSON must not depend on worker count"
    );
}

#[test]
fn chaotic_fleet_json_is_byte_identical_across_worker_counts() {
    // Fault injection draws from dedicated per-app chaos streams that are
    // split up front, exactly like the main seeds — so a 20 % fault rate
    // must not reintroduce any thread-count dependence.
    let sequential = run_chaotic(1);
    let parallel = run_chaotic(8);
    let json = sequential.to_json();
    assert_eq!(
        json,
        parallel.to_json(),
        "chaotic FleetReport JSON must not depend on worker count"
    );
    assert!(json.contains("\"chaos\""), "chaos summary must be present");
}

#[test]
fn chaos_free_reports_never_mention_chaos() {
    // The passthrough contract: with chaos disabled the serialized report
    // carries no trace of the fault-injection subsystem.
    assert!(!run(2).to_json().contains("chaos"));
}

#[test]
fn report_rows_follow_population_order() {
    let report = run(4);
    let codes: Vec<&str> = report.apps.iter().map(|a| a.code.as_str()).collect();
    let expected: Vec<&str> = slimstart::appmodel::catalog::fleet_population(6)
        .iter()
        .map(|e| e.code)
        .collect();
    assert_eq!(codes, expected);
    for (i, app) in report.apps.iter().enumerate() {
        assert_eq!(app.index, i);
    }
}

#[test]
fn different_seeds_change_per_app_streams() {
    let base = run(2);
    let config = FleetConfig::default()
        .with_apps(6)
        .with_threads(2)
        .with_seed(31)
        .with_cold_starts(10)
        .with_pipeline(
            PipelineConfig::default().with_platform(PlatformConfig::default().without_jitter()),
        );
    let (other, _) = FleetOrchestrator::new(config).run().expect("fleet runs");
    let base_seeds: Vec<u64> = base.apps.iter().map(|a| a.seed).collect();
    let other_seeds: Vec<u64> = other.apps.iter().map(|a| a.seed).collect();
    assert_ne!(base_seeds, other_seeds);
}

#[test]
fn interned_symbol_ids_are_deterministic_across_runs_and_threads() {
    // The name interner assigns ids in insertion order, never by hash
    // iteration, so for the same seed the (name, id) assignment must be
    // identical run to run and on every worker thread — otherwise any
    // downstream use of symbol ids would silently depend on scheduling.
    use slimstart::appmodel::NameTable;

    fn table_for(seed: u64) -> Vec<(String, u32)> {
        let entry = slimstart::appmodel::catalog::by_code("R-GB").expect("catalog entry");
        let built = entry.build(seed).expect("app builds");
        let table = NameTable::build(&built.app);
        let ids: Vec<(String, u32)> = table
            .interner()
            .iter()
            .map(|(sym, name)| (name.to_string(), sym.index() as u32))
            .collect();
        ids
    }

    let sequential = table_for(2025);
    assert!(!sequential.is_empty());
    // Same seed, fresh run: identical assignment.
    assert_eq!(sequential, table_for(2025));

    // Eight threads racing the same build must all agree with it.
    let handles: Vec<_> = (0..8)
        .map(|_| std::thread::spawn(|| table_for(2025)))
        .collect();
    for handle in handles {
        assert_eq!(sequential, handle.join().expect("thread completes"));
    }

    // A different seed may legitimately produce a different app; the ids
    // must still be a pure function of the build, not of prior activity.
    assert_eq!(table_for(31), table_for(31));
}

#[test]
fn honors_runs_averaging_in_the_fleet_path() {
    // SLIMSTART_RUNS semantics: `runs` in the config is what the bench
    // runner wires the env var to; the report must carry it and the
    // averaged speedups must stay plausible.
    let config = FleetConfig::default()
        .with_apps(2)
        .with_threads(2)
        .with_seed(7)
        .with_cold_starts(10)
        .with_runs(3)
        .with_pipeline(
            PipelineConfig::default().with_platform(PlatformConfig::default().without_jitter()),
        );
    let (report, _) = FleetOrchestrator::new(config).run().expect("fleet runs");
    assert_eq!(report.runs, 3);
    assert!(report.to_json().contains("\"runs\":3"));
    for app in &report.apps {
        assert!(
            app.speedup.init >= 0.9,
            "{}: {}",
            app.code,
            app.speedup.init
        );
    }
}
