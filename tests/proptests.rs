//! Property-based tests over the core data structures and invariants.
//!
//! Cases are generated from seeded [`SimRng`] streams rather than a
//! property-testing framework (the build environment is offline, so the
//! workspace carries no such dependency): each test sweeps a fixed,
//! deterministic family of random inputs and asserts the property on
//! every case, reporting the case seed on failure.

use slimstart::appmodel::app::AppBuilder;
use slimstart::appmodel::function::{Stmt, StmtKind};
use slimstart::appmodel::synth::{
    AppBlueprint, HandlerBlueprint, LibraryBlueprint, SubpackageBlueprint, UseSpec,
};
use slimstart::appmodel::{FunctionId, ImportMode, ModuleId};
use slimstart::core::cct::Cct;
use slimstart::core::profile::SampleRecord;
use slimstart::core::utilization::Utilization;
use slimstart::pyrt::process::Process;
use slimstart::pyrt::stack::{Frame, FrameKind};
use slimstart::simcore::dist::{Empirical, Zipf};
use slimstart::simcore::rng::SimRng;
use slimstart::simcore::stats::Percentiles;
use slimstart::simcore::time::SimDuration;

// ------------------------------------------------------------------ simcore

#[test]
fn percentiles_match_naive_sort() {
    let mut rng = SimRng::seed_from(0xA11CE);
    for case in 0..64 {
        let n = 1 + rng.next_below(199);
        let values: Vec<f64> = (0..n).map(|_| rng.uniform(-1e6, 1e6)).collect();
        let q = rng.next_f64();
        let p: Percentiles = values.iter().copied().collect();
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        assert_eq!(p.quantile(q), Some(sorted[rank - 1]), "case {case} (q={q})");
    }
}

#[test]
fn zipf_pmf_always_normalizes() {
    let mut rng = SimRng::seed_from(0x21FF);
    for case in 0..64 {
        let n = 1 + rng.next_below(199);
        let s = rng.uniform(0.0, 3.0);
        let z = Zipf::new(n, s).unwrap();
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "case {case}: pmf sums to {total} (n={n}, s={s})"
        );
    }
}

#[test]
fn empirical_sampling_stays_in_support() {
    let mut rng = SimRng::seed_from(0xE3921);
    for case in 0..64 {
        let n = 1 + rng.next_below(19);
        let weights: Vec<f64> = (0..n).map(|_| rng.uniform(0.0, 10.0)).collect();
        if weights.iter().sum::<f64>() <= 0.0 {
            continue;
        }
        let e = Empirical::new(&weights).unwrap();
        let mut draw_rng = SimRng::seed_from(1000 + case);
        for _ in 0..100 {
            let k = e.sample(&mut draw_rng);
            assert!(k < weights.len(), "case {case}: index out of support");
            // Zero-weight categories never drawn.
            assert!(weights[k] > 0.0, "case {case}: zero-weight category drawn");
        }
    }
}

// --------------------------------------------------------------------- cct

fn arbitrary_paths(seed: u64, n: usize) -> Vec<(Vec<Frame>, bool)> {
    let mut rng = SimRng::seed_from(seed);
    (0..n)
        .map(|_| {
            let depth = 1 + rng.next_below(6);
            let path: Vec<Frame> = (0..depth)
                .map(|_| Frame {
                    kind: FrameKind::Call(FunctionId::from_index(rng.next_below(12))),
                    line: 1 + rng.next_below(5) as u32,
                })
                .collect();
            (path, rng.chance(0.4))
        })
        .collect()
}

#[test]
fn cct_conserves_samples() {
    let mut rng = SimRng::seed_from(0xCC7);
    for case in 0..48 {
        let seed = rng.next_u64() % 500;
        let n = 1 + rng.next_below(299);
        let paths = arbitrary_paths(seed, n);
        let mut cct = Cct::new();
        for (path, is_init) in &paths {
            cct.insert(path, *is_init);
        }
        assert_eq!(cct.total_samples(), n as u64, "case {case}");
        let inclusive = cct.inclusive();
        // Escalation conserves mass at the root…
        assert_eq!(inclusive[0], n as u64, "case {case}");
        // …and inclusive >= self everywhere.
        for (i, node) in cct.nodes().iter().enumerate() {
            assert!(inclusive[i] >= node.self_samples, "case {case}, node {i}");
        }
        // Parent inclusive >= child inclusive.
        for (i, node) in cct.nodes().iter().enumerate().skip(1) {
            let parent = node.parent.unwrap();
            assert!(inclusive[parent] >= inclusive[i], "case {case}, node {i}");
        }
    }
}

#[test]
fn cct_merge_conserves() {
    let mut rng = SimRng::seed_from(0x3E26E);
    for case in 0..48 {
        let seed_a = rng.next_u64() % 100;
        let seed_b = 100 + rng.next_u64() % 100;
        let n = 1 + rng.next_below(99);
        let a_paths = arbitrary_paths(seed_a, n);
        let b_paths = arbitrary_paths(seed_b, n);
        let mut a = Cct::new();
        for (p, i) in &a_paths {
            a.insert(p, *i);
        }
        let mut b = Cct::new();
        for (p, i) in &b_paths {
            b.insert(p, *i);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.total_samples(), 2 * n as u64, "case {case}");
        let init_total: u64 = merged.nodes().iter().map(|nd| nd.self_init_samples).sum();
        let expected: usize = a_paths.iter().chain(&b_paths).filter(|(_, i)| *i).count();
        assert_eq!(init_total, expected as u64, "case {case}");
    }
}

// ------------------------------------------------------------- utilization

#[test]
fn utilization_is_bounded() {
    let mut case_rng = SimRng::seed_from(0x07115);
    for case in 0..48 {
        let seed = case_rng.next_u64() % 300;
        let n = case_rng.next_below(200);

        // One app-module function, one library function.
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let hm = b.add_app_module("handler", SimDuration::ZERO, 0);
        let lm = b.add_library_module("lib", SimDuration::ZERO, 0, false, lib);
        b.add_import(hm, lm, 2, ImportMode::Global).unwrap();
        let f_lib = b.add_function("f", lm, 1, vec![]);
        let f_main = b.add_function("main", hm, 1, vec![]);
        b.add_handler("main", f_main);
        let app = b.finish().unwrap();

        let mut rng = SimRng::seed_from(seed);
        let samples: Vec<SampleRecord> = (0..n)
            .map(|_| {
                let in_lib = rng.chance(0.5);
                SampleRecord {
                    path: vec![Frame {
                        kind: FrameKind::Call(if in_lib { f_lib } else { f_main }),
                        line: 1,
                    }]
                    .into(),
                    is_init: rng.chance(0.3),
                }
            })
            .collect();
        let u = Utilization::from_samples(samples.iter(), &app);
        for v in u.by_package.values() {
            assert!((0.0..=1.0).contains(v), "case {case}: package util {v}");
        }
        for v in &u.by_library {
            assert!((0.0..=1.0).contains(v), "case {case}: library util {v}");
        }
        assert!(u.total_runtime_samples as usize <= n, "case {case}");
    }
}

// ------------------------------------------------------------------- pyrt

/// A randomized three-subpackage blueprint for loader/optimizer properties.
fn random_blueprint(seed: u64) -> AppBlueprint {
    let mut rng = SimRng::seed_from(seed);
    let hot_share = 0.3 + rng.next_f64() * 0.4;
    let dead_share = (1.0 - hot_share) * (0.3 + rng.next_f64() * 0.5);
    let rare_share = 1.0 - hot_share - dead_share;
    let sub = |name: &str, share: f64, api: usize| SubpackageBlueprint {
        name: name.to_string(),
        module_share: share,
        init_share: share,
        mem_share: share,
        side_effectful: false,
        api_functions: api,
        api_call_cost: SimDuration::from_millis(3),
    };
    AppBlueprint {
        name: format!("rand-{seed}"),
        app_init: SimDuration::from_millis(1),
        app_mem_kb: 64,
        libraries: vec![LibraryBlueprint {
            name: "randlib".to_string(),
            modules: 20 + rng.next_below(60),
            avg_depth: 3.0 + rng.next_f64() * 3.0,
            init_total: SimDuration::from_millis(200 + rng.next_below(800) as u64),
            mem_total_kb: 10_000,
            subpackages: vec![
                sub("hot", hot_share, 2),
                sub("dead", dead_share, 1),
                sub("rare", rare_share, 1),
            ],
        }],
        handlers: vec![
            HandlerBlueprint {
                name: "main".to_string(),
                local_work: SimDuration::from_millis(10),
                uses: vec![
                    UseSpec {
                        library: "randlib".to_string(),
                        subpackage: "hot".to_string(),
                        api_index: 0,
                        calls: 2,
                        branch_probability: None,
                        indirect: false,
                    },
                    UseSpec {
                        library: "randlib".to_string(),
                        subpackage: "rare".to_string(),
                        api_index: 0,
                        calls: 1,
                        branch_probability: Some(0.01),
                        indirect: false,
                    },
                ],
            },
            HandlerBlueprint {
                name: "admin".to_string(),
                local_work: SimDuration::from_millis(5),
                uses: vec![UseSpec {
                    library: "randlib".to_string(),
                    subpackage: "dead".to_string(),
                    api_index: 0,
                    calls: 1,
                    branch_probability: None,
                    indirect: false,
                }],
            },
        ],
    }
}

#[test]
fn loader_is_idempotent_and_cost_exact() {
    let mut case_rng = SimRng::seed_from(0x10AD);
    for case in 0..24 {
        let seed = case_rng.next_u64() % 10_000;
        let built = slimstart::appmodel::synth::build_app(&random_blueprint(seed), seed).unwrap();
        let app = std::sync::Arc::new(built.app);
        let mut p = Process::new(std::sync::Arc::clone(&app), 1.0);
        let root = app.module_by_name("handler").unwrap();
        let init = p.cold_start(root).unwrap();
        // The loader pays exactly the structural eager cost.
        assert_eq!(init, app.eager_init_cost(root), "case {case} (seed {seed})");
        // Second cold start is free (everything cached).
        let again = p.cold_start(root).unwrap();
        assert_eq!(again, SimDuration::ZERO, "case {case} (seed {seed})");
        assert_eq!(
            p.load_events().len(),
            app.eager_load_set(root).len(),
            "case {case} (seed {seed})"
        );
    }
}

#[test]
fn pipeline_never_faults_and_never_regresses() {
    let mut case_rng = SimRng::seed_from(0x919E);
    for case in 0..12 {
        let seed = case_rng.next_u64() % 2_000;
        let built = slimstart::appmodel::synth::build_app(&random_blueprint(seed), seed).unwrap();
        let mix = vec![("main".to_string(), 1.0), ("admin".to_string(), 0.0)];
        let config = slimstart::core::pipeline::PipelineConfig::default()
            .with_cold_starts(12)
            .with_platform(slimstart::platform::PlatformConfig::default().without_jitter());
        let out = slimstart::core::pipeline::Pipeline::new(config)
            .run(&built.app, &mix)
            .unwrap();
        assert!(
            out.speedup.e2e >= 0.999,
            "case {case} (seed {seed}): e2e regressed: {}",
            out.speedup.e2e
        );
        assert!(
            out.speedup.init >= 0.999,
            "case {case} (seed {seed}): init regressed: {}",
            out.speedup.init
        );
        // Optimized app still serves the admin handler correctly.
        let mut p = Process::new(std::sync::Arc::clone(&out.final_app), 1.0);
        let root = out.final_app.module_by_name("handler").unwrap();
        p.cold_start(root).unwrap();
        let admin = out.final_app.handler_by_name("admin").unwrap();
        assert!(
            p.invoke(admin, &mut SimRng::seed_from(seed)).is_ok(),
            "case {case} (seed {seed})"
        );
    }
}

// -------------------------------------------------------- interpreter paths

#[test]
fn branch_statistics_match_probability() {
    let mut case_rng = SimRng::seed_from(0xB3A9C4);
    for case in 0..24 {
        let p = case_rng.next_f64();
        let seed = case_rng.next_u64() % 200;
        let mut b = AppBuilder::new("t");
        let m = b.add_app_module("handler", SimDuration::ZERO, 0);
        let f = b.add_function(
            "main",
            m,
            1,
            vec![Stmt {
                line: 2,
                kind: StmtKind::Branch {
                    probability: p,
                    body: vec![Stmt {
                        line: 3,
                        kind: StmtKind::Work(SimDuration::from_millis(1)),
                    }],
                },
            }],
        );
        let h = b.add_handler("main", f);
        let app = std::sync::Arc::new(b.finish().unwrap());
        let mut proc = Process::new(std::sync::Arc::clone(&app), 1.0);
        let mut rng = SimRng::seed_from(seed);
        let n = 300;
        let mut fired = 0u32;
        for _ in 0..n {
            let out = proc.invoke(h, &mut rng).unwrap();
            if !out.exec_time.is_zero() {
                fired += 1;
            }
        }
        let rate = f64::from(fired) / f64::from(n);
        assert!(
            (rate - p).abs() < 0.15,
            "case {case} (seed {seed}): rate {rate} vs p {p}"
        );
    }
}

// ----------------------------------------------------- structural soundness

#[test]
fn eager_set_is_closed_under_global_imports() {
    let mut case_rng = SimRng::seed_from(0xEA93);
    for case in 0..16 {
        let seed = case_rng.next_u64() % 10_000;
        let built = slimstart::appmodel::synth::build_app(&random_blueprint(seed), seed).unwrap();
        let app = built.app;
        let root = app.module_by_name("handler").unwrap();
        let set: std::collections::HashSet<ModuleId> =
            app.eager_load_set(root).into_iter().collect();
        for m in &set {
            for decl in app.imports_of(*m) {
                if decl.mode.is_global() {
                    assert!(
                        set.contains(&decl.target),
                        "case {case} (seed {seed}): eager set must be transitively closed"
                    );
                }
            }
        }
    }
}
