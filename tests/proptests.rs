//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;

use slimstart::appmodel::app::AppBuilder;
use slimstart::appmodel::function::{Stmt, StmtKind};
use slimstart::appmodel::synth::{
    AppBlueprint, HandlerBlueprint, LibraryBlueprint, SubpackageBlueprint, UseSpec,
};
use slimstart::appmodel::{FunctionId, ImportMode, ModuleId};
use slimstart::core::cct::Cct;
use slimstart::core::profile::SampleRecord;
use slimstart::core::utilization::Utilization;
use slimstart::pyrt::process::Process;
use slimstart::pyrt::stack::{Frame, FrameKind};
use slimstart::simcore::dist::{Empirical, Zipf};
use slimstart::simcore::rng::SimRng;
use slimstart::simcore::stats::Percentiles;
use slimstart::simcore::time::SimDuration;

// ------------------------------------------------------------------ simcore

proptest! {
    #[test]
    fn percentiles_match_naive_sort(values in prop::collection::vec(-1e6f64..1e6, 1..200), q in 0.0f64..=1.0) {
        let p: Percentiles = values.iter().copied().collect();
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        prop_assert_eq!(p.quantile(q), Some(sorted[rank - 1]));
    }

    #[test]
    fn zipf_pmf_always_normalizes(n in 1usize..200, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s).unwrap();
        let total: f64 = (0..n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empirical_sampling_stays_in_support(weights in prop::collection::vec(0.0f64..10.0, 1..20), seed in 0u64..1000) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let e = Empirical::new(&weights).unwrap();
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..100 {
            let k = e.sample(&mut rng);
            prop_assert!(k < weights.len());
            // Zero-weight categories never drawn.
            prop_assert!(weights[k] > 0.0);
        }
    }
}

// --------------------------------------------------------------------- cct

fn arbitrary_paths(seed: u64, n: usize) -> Vec<(Vec<Frame>, bool)> {
    let mut rng = SimRng::seed_from(seed);
    (0..n)
        .map(|_| {
            let depth = 1 + rng.next_below(6);
            let path: Vec<Frame> = (0..depth)
                .map(|_| Frame {
                    kind: FrameKind::Call(FunctionId::from_index(rng.next_below(12))),
                    line: 1 + rng.next_below(5) as u32,
                })
                .collect();
            (path, rng.chance(0.4))
        })
        .collect()
}

proptest! {
    #[test]
    fn cct_conserves_samples(seed in 0u64..500, n in 1usize..300) {
        let paths = arbitrary_paths(seed, n);
        let mut cct = Cct::new();
        for (path, is_init) in &paths {
            cct.insert(path, *is_init);
        }
        prop_assert_eq!(cct.total_samples(), n as u64);
        let inclusive = cct.inclusive();
        // Escalation conserves mass at the root…
        prop_assert_eq!(inclusive[0], n as u64);
        // …and inclusive >= self everywhere.
        for (i, node) in cct.nodes().iter().enumerate() {
            prop_assert!(inclusive[i] >= node.self_samples);
        }
        // Parent inclusive >= child inclusive.
        for (i, node) in cct.nodes().iter().enumerate().skip(1) {
            let parent = node.parent.unwrap();
            prop_assert!(inclusive[parent] >= inclusive[i]);
        }
    }

    #[test]
    fn cct_merge_conserves(seed_a in 0u64..100, seed_b in 100u64..200, n in 1usize..100) {
        let a_paths = arbitrary_paths(seed_a, n);
        let b_paths = arbitrary_paths(seed_b, n);
        let mut a = Cct::new();
        for (p, i) in &a_paths {
            a.insert(p, *i);
        }
        let mut b = Cct::new();
        for (p, i) in &b_paths {
            b.insert(p, *i);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(merged.total_samples(), 2 * n as u64);
        let init_total: u64 = merged.nodes().iter().map(|nd| nd.self_init_samples).sum();
        let expected: usize = a_paths.iter().chain(&b_paths).filter(|(_, i)| *i).count();
        prop_assert_eq!(init_total, expected as u64);
    }
}

// ------------------------------------------------------------- utilization

proptest! {
    #[test]
    fn utilization_is_bounded(seed in 0u64..300, n in 0usize..200) {
        // One app-module function, one library function.
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let hm = b.add_app_module("handler", SimDuration::ZERO, 0);
        let lm = b.add_library_module("lib", SimDuration::ZERO, 0, false, lib);
        b.add_import(hm, lm, 2, ImportMode::Global).unwrap();
        let f_lib = b.add_function("f", lm, 1, vec![]);
        let f_main = b.add_function("main", hm, 1, vec![]);
        b.add_handler("main", f_main);
        let app = b.finish().unwrap();

        let mut rng = SimRng::seed_from(seed);
        let samples: Vec<SampleRecord> = (0..n)
            .map(|_| {
                let in_lib = rng.chance(0.5);
                SampleRecord {
                    path: vec![Frame {
                        kind: FrameKind::Call(if in_lib { f_lib } else { f_main }),
                        line: 1,
                    }],
                    is_init: rng.chance(0.3),
                }
            })
            .collect();
        let u = Utilization::from_samples(samples.iter(), &app);
        for v in u.by_package.values() {
            prop_assert!((0.0..=1.0).contains(v));
        }
        for v in &u.by_library {
            prop_assert!((0.0..=1.0).contains(v));
        }
        prop_assert!(u.total_runtime_samples as usize <= n);
    }
}

// ------------------------------------------------------------------- pyrt

/// A randomized three-subpackage blueprint for loader/optimizer properties.
fn random_blueprint(seed: u64) -> AppBlueprint {
    let mut rng = SimRng::seed_from(seed);
    let hot_share = 0.3 + rng.next_f64() * 0.4;
    let dead_share = (1.0 - hot_share) * (0.3 + rng.next_f64() * 0.5);
    let rare_share = 1.0 - hot_share - dead_share;
    let sub = |name: &str, share: f64, api: usize| SubpackageBlueprint {
        name: name.to_string(),
        module_share: share,
        init_share: share,
        mem_share: share,
        side_effectful: false,
        api_functions: api,
        api_call_cost: SimDuration::from_millis(3),
    };
    AppBlueprint {
        name: format!("rand-{seed}"),
        app_init: SimDuration::from_millis(1),
        app_mem_kb: 64,
        libraries: vec![LibraryBlueprint {
            name: "randlib".to_string(),
            modules: 20 + rng.next_below(60),
            avg_depth: 3.0 + rng.next_f64() * 3.0,
            init_total: SimDuration::from_millis(200 + rng.next_below(800) as u64),
            mem_total_kb: 10_000,
            subpackages: vec![
                sub("hot", hot_share, 2),
                sub("dead", dead_share, 1),
                sub("rare", rare_share, 1),
            ],
        }],
        handlers: vec![
            HandlerBlueprint {
                name: "main".to_string(),
                local_work: SimDuration::from_millis(10),
                uses: vec![
                    UseSpec {
                        library: "randlib".to_string(),
                        subpackage: "hot".to_string(),
                        api_index: 0,
                        calls: 2,
                        branch_probability: None,
                        indirect: false,
                    },
                    UseSpec {
                        library: "randlib".to_string(),
                        subpackage: "rare".to_string(),
                        api_index: 0,
                        calls: 1,
                        branch_probability: Some(0.01),
                        indirect: false,
                    },
                ],
            },
            HandlerBlueprint {
                name: "admin".to_string(),
                local_work: SimDuration::from_millis(5),
                uses: vec![UseSpec {
                    library: "randlib".to_string(),
                    subpackage: "dead".to_string(),
                    api_index: 0,
                    calls: 1,
                    branch_probability: None,
                    indirect: false,
                }],
            },
        ],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn loader_is_idempotent_and_cost_exact(seed in 0u64..10_000) {
        let built = slimstart::appmodel::synth::build_app(&random_blueprint(seed), seed).unwrap();
        let app = std::sync::Arc::new(built.app);
        let mut p = Process::new(std::sync::Arc::clone(&app), 1.0);
        let root = app.module_by_name("handler").unwrap();
        let init = p.cold_start(root).unwrap();
        // The loader pays exactly the structural eager cost.
        prop_assert_eq!(init, app.eager_init_cost(root));
        // Second cold start is free (everything cached).
        let again = p.cold_start(root).unwrap();
        prop_assert_eq!(again, SimDuration::ZERO);
        prop_assert_eq!(p.load_events().len(), app.eager_load_set(root).len());
    }

    #[test]
    fn pipeline_never_faults_and_never_regresses(seed in 0u64..2_000) {
        let built = slimstart::appmodel::synth::build_app(&random_blueprint(seed), seed).unwrap();
        let mix = vec![("main".to_string(), 1.0), ("admin".to_string(), 0.0)];
        let config = slimstart::core::pipeline::PipelineConfig {
            cold_starts: 12,
            platform: slimstart::platform::PlatformConfig::default().without_jitter(),
            ..Default::default()
        };
        let out = slimstart::core::pipeline::Pipeline::new(config)
            .run(&built.app, &mix)
            .unwrap();
        prop_assert!(out.speedup.e2e >= 0.999, "e2e regressed: {}", out.speedup.e2e);
        prop_assert!(out.speedup.init >= 0.999, "init regressed: {}", out.speedup.init);
        // Optimized app still serves the admin handler correctly.
        let mut p = Process::new(std::sync::Arc::clone(&out.final_app), 1.0);
        let root = out.final_app.module_by_name("handler").unwrap();
        p.cold_start(root).unwrap();
        let admin = out.final_app.handler_by_name("admin").unwrap();
        prop_assert!(p.invoke(admin, &mut SimRng::seed_from(seed)).is_ok());
    }
}

// -------------------------------------------------------- interpreter paths

proptest! {
    #[test]
    fn branch_statistics_match_probability(p in 0.0f64..=1.0, seed in 0u64..200) {
        let mut b = AppBuilder::new("t");
        let m = b.add_app_module("handler", SimDuration::ZERO, 0);
        let f = b.add_function(
            "main",
            m,
            1,
            vec![Stmt {
                line: 2,
                kind: StmtKind::Branch {
                    probability: p,
                    body: vec![Stmt {
                        line: 3,
                        kind: StmtKind::Work(SimDuration::from_millis(1)),
                    }],
                },
            }],
        );
        let h = b.add_handler("main", f);
        let app = std::sync::Arc::new(b.finish().unwrap());
        let mut proc = Process::new(std::sync::Arc::clone(&app), 1.0);
        let mut rng = SimRng::seed_from(seed);
        let n = 300;
        let mut fired = 0u32;
        for _ in 0..n {
            let out = proc.invoke(h, &mut rng).unwrap();
            if !out.exec_time.is_zero() {
                fired += 1;
            }
        }
        let rate = f64::from(fired) / f64::from(n);
        prop_assert!((rate - p).abs() < 0.15, "rate {rate} vs p {p}");
    }
}

// ----------------------------------------------------- structural soundness

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn eager_set_is_closed_under_global_imports(seed in 0u64..10_000) {
        let built = slimstart::appmodel::synth::build_app(&random_blueprint(seed), seed).unwrap();
        let app = built.app;
        let root = app.module_by_name("handler").unwrap();
        let set: std::collections::HashSet<ModuleId> =
            app.eager_load_set(root).into_iter().collect();
        for m in &set {
            for decl in app.imports_of(*m) {
                if decl.mode.is_global() {
                    prop_assert!(
                        set.contains(&decl.target),
                        "eager set must be transitively closed"
                    );
                }
            }
        }
    }
}
