//! End-to-end pipeline tests across the paper's application catalog.

use slimstart::appmodel::catalog::{by_code, catalog};
use slimstart::core::pipeline::{Pipeline, PipelineConfig};
use slimstart::platform::PlatformConfig;

fn config(cold_starts: usize) -> PipelineConfig {
    PipelineConfig::default()
        .with_cold_starts(cold_starts)
        .with_platform(PlatformConfig::default().without_jitter())
}

#[test]
fn gate_separates_seventeen_from_five() {
    let mut above = 0;
    let mut below = 0;
    for entry in catalog() {
        let built = entry.build(3).expect("builds");
        let out = Pipeline::new(config(10))
            .run(&built.app, &entry.workload_weights())
            .expect("pipeline runs");
        if out.report.gate_passed {
            above += 1;
            assert!(entry.above_gate(), "{} unexpectedly above gate", entry.code);
        } else {
            below += 1;
            assert!(
                !entry.above_gate(),
                "{} unexpectedly below gate",
                entry.code
            );
            // Gated-out apps are left untouched.
            assert!(out.optimization.is_none());
            assert_eq!(out.speedup.e2e, 1.0);
        }
    }
    assert_eq!(
        above, 17,
        "paper: 17 of 22 applications show inefficiencies"
    );
    assert_eq!(below, 5);
}

#[test]
fn speedups_track_paper_shape() {
    // Spot-check a spread of suites: speedups within a generous band of the
    // published numbers (library-loading speedup vs Table II).
    for code in ["R-DV", "R-GB", "FL-SA", "FL-TWM", "FWB-MS", "CVE", "HFP"] {
        let entry = by_code(code).expect("exists");
        let built = entry.build(11).expect("builds");
        let out = Pipeline::new(config(60))
            .run(&built.app, &entry.workload_weights())
            .expect("pipeline runs");
        let rel = (out.speedup.load - entry.paper.init_speedup).abs() / entry.paper.init_speedup;
        assert!(
            rel < 0.15,
            "{code}: load speedup {:.2} vs paper {:.2}",
            out.speedup.load,
            entry.paper.init_speedup
        );
        let rel_e2e = (out.speedup.e2e - entry.paper.e2e_speedup).abs() / entry.paper.e2e_speedup;
        assert!(
            rel_e2e < 0.15,
            "{code}: e2e speedup {:.2} vs paper {:.2}",
            out.speedup.e2e,
            entry.paper.e2e_speedup
        );
        assert!(out.speedup.mem >= 0.99, "{code}: memory must not regress");
    }
}

#[test]
fn profiler_overhead_stays_under_ten_percent() {
    for code in ["R-GB", "FL-PMP", "FWB-CML"] {
        let entry = by_code(code).expect("exists");
        let built = entry.build(5).expect("builds");
        let out = Pipeline::new(config(40))
            .run(&built.app, &entry.workload_weights())
            .expect("pipeline runs");
        let overhead = out.profiler_overhead();
        assert!(
            (1.0..1.10).contains(&overhead),
            "{code}: overhead ratio {overhead}"
        );
    }
}

#[test]
fn expected_packages_are_deferred_and_skipped() {
    let entry = by_code("R-SA").expect("exists");
    let built = entry.build(7).expect("builds");
    let out = Pipeline::new(config(60))
        .run(&built.app, &entry.workload_weights())
        .expect("pipeline runs");
    let opt = out.optimization.as_ref().expect("optimized");
    assert!(
        opt.deferred_packages.iter().any(|p| p == "nltk.sem"),
        "nltk.sem must be lazy-loaded: {:?}",
        opt.deferred_packages
    );
    assert!(
        opt.skipped.iter().any(|(p, _)| p == "nltk.plugins"),
        "side-effectful package must be skipped: {:?}",
        opt.skipped
    );
    // Every edit is auditable: commented global import + insertion site.
    for edit in &opt.edits {
        assert!(edit.after.starts_with("# import "));
        assert!(!edit.file.is_empty());
    }
}

#[test]
fn rare_library_pays_only_on_the_rare_path() {
    let entry = by_code("CVE").expect("exists");
    let built = entry.build(7).expect("builds");
    let out = Pipeline::new(config(200))
        .run(&built.app, &entry.workload_weights())
        .expect("pipeline runs");
    let opt = out.optimization.as_ref().expect("optimized");
    assert!(opt.deferred_packages.iter().any(|p| p == "xmlschema"));
    // After optimization the cold-start init no longer contains xmlschema,
    // so mean init drops by at least its share.
    assert!(
        out.speedup.load > 1.15,
        "load speedup {:.2}",
        out.speedup.load
    );
    // p99 speedup is dented by the rare path (paper: 1.08x init p99).
    assert!(
        out.speedup.p99_e2e < out.speedup.e2e + 0.05,
        "rare-path deferral should not help the tail"
    );
}

#[test]
fn pipeline_is_deterministic() {
    let entry = by_code("FL-PWM").expect("exists");
    let built = entry.build(9).expect("builds");
    let a = Pipeline::new(config(30))
        .run(&built.app, &entry.workload_weights())
        .expect("runs");
    let b = Pipeline::new(config(30))
        .run(&built.app, &entry.workload_weights())
        .expect("runs");
    assert_eq!(a.baseline, b.baseline);
    assert_eq!(a.speedup, b.speedup);
    assert_eq!(a.report.findings, b.report.findings);
}

#[test]
fn report_renders_for_every_gated_app() {
    for entry in catalog().into_iter().filter(|e| e.above_gate()).take(5) {
        let built = entry.build(13).expect("builds");
        let out = Pipeline::new(config(30))
            .run(&built.app, &entry.workload_weights())
            .expect("runs");
        let text = slimstart::core::report::render(&out.report, &built.app);
        assert!(text.contains("SLIMSTART Summary"));
        assert!(text.contains("Gate: PASSED"));
        assert!(text.contains("Call Path"), "{}: {text}", entry.code);
    }
}
