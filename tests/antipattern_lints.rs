//! Anti-pattern lint catalog, end to end: one positive and one negative
//! fixture per lint id, plus the auto-fix equivalence suite — the
//! verifier-gated [`AutoFixStage`] must leave each fixture app behaviorally
//! identical (same modules, handlers and functions; only import modes move)
//! while measurably improving its simulated cold start, and re-analysis of
//! the fixed app must show the fixed lints gone.
//!
//! The positive fixtures are the `AP-*` apps from
//! [`slimstart::appmodel::catalog::antipattern_apps`]; the negatives are
//! published catalog entries that are clean for the lint in question.

use std::collections::BTreeSet;

use slimstart::analyzer::{
    collect_findings, lint_info, Analyzer, AntipatternConfig, RuntimeProfile,
};
use slimstart::appmodel::catalog::{antipattern_apps, by_code};
use slimstart::appmodel::Application;
use slimstart::core::pipeline::{Pipeline, PipelineConfig, PipelineOutcome};
use slimstart::core::{AutoFixStage, StageEngine};
use slimstart::platform::PlatformConfig;

const SEED: u64 = 11;

fn app(code: &str) -> Application {
    by_code(code)
        .unwrap_or_else(|| panic!("unknown fixture code {code}"))
        .build(SEED)
        .expect("fixture builds")
        .app
}

fn static_lints(app: &Application) -> Vec<&'static str> {
    collect_findings(app, None, &AntipatternConfig::default())
        .into_iter()
        .map(|f| f.fix.lint_id)
        .collect()
}

fn profiled_lints(code: &str) -> Vec<&'static str> {
    let entry = by_code(code).expect("fixture code");
    let built = entry.build(SEED).expect("builds");
    let usage = Pipeline::new(config())
        .profile_usage(&built.app, &entry.workload_weights())
        .expect("profiling run")
        .to_observed();
    collect_findings(&built.app, Some(&usage), &AntipatternConfig::default())
        .into_iter()
        .map(|f| f.fix.lint_id)
        .collect()
}

fn config() -> PipelineConfig {
    PipelineConfig::default()
        .with_cold_starts(30)
        .with_seed(SEED)
        .with_platform(PlatformConfig::default().without_jitter())
}

fn run_autofix(code: &str) -> (Application, PipelineOutcome) {
    let entry = by_code(code).expect("fixture code");
    let built = entry.build(SEED).expect("builds");
    let cfg = config();
    let engine = StageEngine::canonical(&cfg).replace(
        "optimize",
        AutoFixStage::with_config(AntipatternConfig::default()),
    );
    let outcome = Pipeline::new(cfg)
        .run_with_engine(&engine, &built.app, &entry.workload_weights())
        .unwrap_or_else(|e| panic!("{code}: pipeline failed: {e}"));
    (built.app, outcome)
}

// --------------------------------------------------- per-lint fixtures

#[test]
fn eager_monolithic_init_positive_and_negative() {
    assert!(static_lints(&app("AP-MONO")).contains(&"eager-monolithic-init"));
    assert!(!static_lints(&app("FL-HW")).contains(&"eager-monolithic-init"));
}

#[test]
fn oversized_dependency_tree_positive_and_negative() {
    assert!(static_lints(&app("AP-TREE")).contains(&"oversized-dependency-tree"));
    // AP-HEAVY plants the same unused library but at 24 modules — expensive,
    // not oversized.
    assert!(!static_lints(&app("AP-HEAVY")).contains(&"oversized-dependency-tree"));
}

#[test]
fn init_in_handler_positive_and_negative() {
    assert!(static_lints(&app("AP-LAZY")).contains(&"init-in-handler"));
    // AP-MONO ships everything eager: nothing loads inside the request.
    assert!(!static_lints(&app("AP-MONO")).contains(&"init-in-handler"));
}

#[test]
fn missing_connection_reuse_positive_and_negative() {
    assert!(static_lints(&app("AP-CHAT")).contains(&"missing-connection-reuse"));
    // The published R-GB makes only two consecutive client calls.
    assert!(!static_lints(&app("R-GB")).contains(&"missing-connection-reuse"));
}

#[test]
fn unused_heavy_library_positive_and_negative() {
    assert!(static_lints(&app("AP-HEAVY")).contains(&"unused-heavy-library"));
    assert!(!static_lints(&app("FL-HW")).contains(&"unused-heavy-library"));
}

#[test]
fn handler_hot_import_positive_and_negative() {
    // Needs a profile: the handler's use of the deferred main library is
    // observed on (almost) every request.
    assert!(profiled_lints("AP-LAZY").contains(&"handler-hot-import"));
    // Same profile treatment, but no deferred import anywhere.
    assert!(!profiled_lints("AP-MONO").contains(&"handler-hot-import"));
}

// ------------------------------------------------------- fix pairing

#[test]
fn every_finding_pairs_a_cataloged_lint_with_a_suggested_fix() {
    for entry in antipattern_apps() {
        let built = entry.build(SEED).expect("builds");
        let findings = collect_findings(&built.app, None, &AntipatternConfig::default());
        assert!(!findings.is_empty(), "{}: no findings", entry.code);
        for f in &findings {
            assert_eq!(f.diagnostic.lint_id, f.fix.lint_id, "{}", entry.code);
            assert!(
                lint_info(f.fix.lint_id).is_some(),
                "{}: `{}` missing from the lint catalog",
                entry.code,
                f.fix.lint_id
            );
            assert!(
                f.diagnostic.suggestion.is_some(),
                "{}: `{}` carries no suggested edit",
                entry.code,
                f.fix.lint_id
            );
        }
    }
}

#[test]
fn lint_reports_are_byte_identical_across_runs() {
    let cfg = AntipatternConfig::default();
    let a = Analyzer::with_antipattern_passes(cfg.clone())
        .analyze(&app("AP-TREE"), None)
        .render_json();
    let b = Analyzer::with_antipattern_passes(cfg)
        .analyze(&app("AP-TREE"), None)
        .render_json();
    assert_eq!(a, b);
}

#[test]
fn runtime_profiles_are_distinct_and_resolvable() {
    for name in ["python", "nodejs", "java"] {
        assert!(RuntimeProfile::by_name(name).is_some(), "{name}");
    }
    assert!(RuntimeProfile::by_name("cobol").is_none());
}

// ----------------------------------------------- auto-fix equivalence

#[test]
fn autofix_improves_cold_start_and_preserves_behavior() {
    // Every defer-type fixture app: the stage must fix something, prove a
    // measured cold-start win, and leave the program structure untouched.
    for code in ["AP-MONO", "AP-TREE", "AP-HEAVY", "AP-LAZY"] {
        let (base, outcome) = run_autofix(code);
        let autofix = outcome
            .autofix
            .as_ref()
            .unwrap_or_else(|| panic!("{code}: auto-fix stage recorded no outcome"));
        assert!(autofix.fixed_anything(), "{code}: nothing fixed");
        assert!(!autofix.rolled_back, "{code}: rolled back");

        // In-pipeline measured proof, not just the model. AP-LAZY is the one
        // fixture whose first fix *restores* an eager import (shifting load
        // cost from the request back into init before round 2 defers the
        // cold packages), so the strict init improvement applies only to the
        // pure-defer fixtures; the end-to-end gate applies to all.
        let before = autofix.before.as_ref().expect("baseline measured");
        let after = autofix.after.as_ref().expect("fixed app measured");
        if code != "AP-LAZY" {
            assert!(
                after.mean_init_ms < before.mean_init_ms,
                "{code}: init {} -> {}",
                before.mean_init_ms,
                after.mean_init_ms
            );
        }
        assert!(
            after.mean_e2e_ms <= before.mean_e2e_ms * 1.005,
            "{code}: e2e regressed {} -> {}",
            before.mean_e2e_ms,
            after.mean_e2e_ms
        );
        for fix in &autofix.report.applied {
            assert!(
                fix.estimated_saving_ms >= 0.0,
                "{code}: `{}` applied with negative modeled saving",
                fix.subject
            );
        }

        // Behavioral equivalence: only import modes may change.
        let fixed = &outcome.final_app;
        assert_eq!(fixed.modules().len(), base.modules().len(), "{code}");
        assert_eq!(fixed.functions().len(), base.functions().len(), "{code}");
        let names = |a: &Application| -> Vec<String> {
            a.handlers().iter().map(|h| h.name().to_string()).collect()
        };
        assert_eq!(names(fixed), names(&base), "{code}");

        // Convergence: the fixed lint instances are gone on re-analysis.
        let applied: BTreeSet<(&str, String)> = autofix
            .report
            .applied
            .iter()
            .map(|f| (f.lint_id, f.subject.clone()))
            .collect();
        for f in collect_findings(fixed, None, &AntipatternConfig::default()) {
            assert!(
                !applied.contains(&(f.fix.lint_id, f.fix.action.describe())),
                "{code}: applied fix `{}` reappeared on re-analysis",
                f.fix.action.describe()
            );
        }
    }
}

#[test]
fn advisory_lints_are_reported_but_never_auto_applied() {
    let findings = collect_findings(&app("AP-CHAT"), None, &AntipatternConfig::default());
    assert!(
        findings
            .iter()
            .any(|f| f.fix.lint_id == "missing-connection-reuse" && !f.fix.action.is_applicable()),
        "AP-CHAT should carry an advisory connection-reuse finding"
    );
    let (_, outcome) = run_autofix("AP-CHAT");
    let autofix = outcome.autofix.as_ref().expect("outcome recorded");
    assert!(
        autofix
            .report
            .applied
            .iter()
            .all(|f| f.lint_id != "missing-connection-reuse"),
        "advisory fixes must never be applied"
    );
}
