//! Working-set snapshot restore under node memory pressure.
//!
//! Three guarantees from the PR 9 design:
//!
//! 1. **Differential oracle.** With an unlimited budget and a full working
//!    set (the app touches every module it loads), the lazy restore path
//!    must be byte-identical to the retained full-stream restore *and* to
//!    the snapshot-free platform, across a jitter × chaos grid.
//! 2. **Budget bound + determinism.** Under a constrained
//!    [`NodeSnapshotPool`], no shard ever exceeds its fair-share budget,
//!    and the fleet report — including every snapshot counter — is
//!    byte-identical across worker thread counts.
//! 3. **Redeploy invalidation.** A fingerprint change must *evict* stale
//!    entries from the shared pool store (counted as evictions), not
//!    merely miss alongside them.

use std::sync::Arc;

use slimstart::appmodel::app::AppBuilder;
use slimstart::appmodel::catalog::light_population;
use slimstart::appmodel::function::{Stmt, StmtKind};
use slimstart::appmodel::imports::ImportMode;
use slimstart::appmodel::Application;
use slimstart::fleet::{FleetConfig, FleetOrchestrator, NodeSnapshotPool};
use slimstart::platform::chaos::{ChaosConfig, ChaosPlan};
use slimstart::platform::{Invocation, Platform, PlatformConfig};
use slimstart::pyrt::snapshot::SnapshotStore;
use slimstart::simcore::time::{SimDuration, SimTime};

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

/// An app whose handler touches every module it loads: handler module,
/// hot library module (executed), and its transitive submodule (touched
/// explicitly). With a full working set, lazy restore may omit nothing.
fn full_touch_app() -> Arc<Application> {
    let mut b = AppBuilder::new("fulltouch");
    let lib = b.add_library("lib");
    let root = b.add_app_module("handler", ms(1), 64);
    let hot = b.add_library_module("lib", ms(40), 512, false, lib);
    let sub = b.add_library_module("lib.sub", ms(25), 256, false, lib);
    b.add_import(root, hot, 2, ImportMode::Global)
        .expect("import is valid");
    b.add_import(hot, sub, 3, ImportMode::Global)
        .expect("import is valid");
    let work = b.add_function(
        "work",
        hot,
        5,
        vec![
            Stmt {
                line: 6,
                kind: StmtKind::Work(ms(2)),
            },
            Stmt {
                line: 7,
                kind: StmtKind::Touch(sub),
            },
        ],
    );
    let main = b.add_function(
        "main",
        root,
        4,
        vec![Stmt {
            line: 5,
            kind: StmtKind::call(work),
        }],
    );
    b.add_handler("main", main);
    Arc::new(b.finish().expect("app builds"))
}

/// Like [`full_touch_app`] but `lib.sub` is only loaded, never touched by
/// the `main` handler — the working set omits it. A second handler `rare`
/// shares the same root module and *does* touch it, forcing a lazy fault.
fn partial_touch_app() -> Arc<Application> {
    let mut b = AppBuilder::new("partialtouch");
    let lib = b.add_library("lib");
    let root = b.add_app_module("handler", ms(1), 64);
    let hot = b.add_library_module("lib", ms(40), 512, false, lib);
    let sub = b.add_library_module("lib.sub", ms(25), 256, false, lib);
    b.add_import(root, hot, 2, ImportMode::Global)
        .expect("import is valid");
    b.add_import(hot, sub, 3, ImportMode::Global)
        .expect("import is valid");
    let work = b.add_function(
        "work",
        hot,
        5,
        vec![Stmt {
            line: 6,
            kind: StmtKind::Work(ms(2)),
        }],
    );
    let main = b.add_function(
        "main",
        root,
        4,
        vec![Stmt {
            line: 5,
            kind: StmtKind::call(work),
        }],
    );
    let rare = b.add_function(
        "rare",
        root,
        8,
        vec![
            Stmt {
                line: 9,
                kind: StmtKind::call(work),
            },
            Stmt {
                line: 10,
                kind: StmtKind::Touch(sub),
            },
        ],
    );
    b.add_handler("main", main);
    b.add_handler("rare", rare);
    Arc::new(b.finish().expect("app builds"))
}

/// `count` invocations of `handler`, spaced past the 10-minute keep-alive
/// so every one is a cold start.
fn cold_invocations(app: &Application, handler: &str, count: usize) -> Vec<Invocation> {
    let handler = app.handler_by_name(handler).expect("handler exists");
    (0..count)
        .map(|k| Invocation {
            at: SimTime::from_millis(k as u64 * 11 * 60 * 1000),
            handler,
            seed: k as u64 + 1,
        })
        .collect()
}

/// Runs `invocations` on a fresh platform and serializes the records.
fn run_records(
    app: &Arc<Application>,
    config: PlatformConfig,
    seed: u64,
    invocations: &[Invocation],
) -> String {
    let mut platform = Platform::new(Arc::clone(app), config, seed);
    let records = platform.run(invocations).expect("run completes");
    format!("{records:?}")
}

#[test]
fn unlimited_lazy_restore_matches_full_stream_oracle_across_grid() {
    let app = full_touch_app();
    let invocations = cold_invocations(&app, "main", 8);
    let chaos_grid: [Option<ChaosConfig>; 2] = [None, Some(ChaosConfig::uniform(0.25))];
    for jitter in [false, true] {
        for (c, chaos) in chaos_grid.iter().enumerate() {
            let seed = 900 + c as u64;
            let base = if jitter {
                PlatformConfig::default()
            } else {
                PlatformConfig::default().without_jitter()
            };
            let with_chaos = |cfg: PlatformConfig| match chaos {
                // A fresh plan per run: chaos draws are stateful, so each
                // variant must start from the same seeded stream.
                Some(mix) => cfg.with_chaos(Arc::new(ChaosPlan::from_seed(*mix, 11))),
                None => cfg,
            };
            let bare = run_records(
                &app,
                with_chaos(base.clone().without_snapshots()),
                seed,
                &invocations,
            );

            let full = Arc::new(SnapshotStore::new());
            let full_json = run_records(
                &app,
                with_chaos(base.clone().with_snapshot_store(Arc::clone(&full))),
                seed,
                &invocations,
            );

            let lazy = Arc::new(SnapshotStore::with_limits(None, true));
            let lazy_json = run_records(
                &app,
                with_chaos(base.clone().with_snapshot_store(Arc::clone(&lazy))),
                seed,
                &invocations,
            );

            let label = format!("jitter={jitter} chaos={}", chaos.is_some());
            assert_eq!(
                bare, full_json,
                "{label}: full-stream cache changed records"
            );
            assert_eq!(
                full_json, lazy_json,
                "{label}: lazy restore diverged from the full-stream oracle"
            );
            assert!(lazy.hits() > 0, "{label}: lazy cache never hit");
            assert_eq!(
                lazy.faulted_loads(),
                0,
                "{label}: a full working set must never fault"
            );
        }
    }
}

#[test]
fn omitted_modules_fault_in_lazily_at_real_cost() {
    let app = partial_touch_app();
    let store = Arc::new(SnapshotStore::with_limits(None, true));
    let config = PlatformConfig::default()
        .without_jitter()
        .with_snapshot_store(Arc::clone(&store));
    let mut platform = Platform::new(Arc::clone(&app), config, 41);

    // Warm the cache and refine the working set on the `main` handler:
    // `lib.sub` is loaded but untouched, so refinement drops it.
    let mut invocations = cold_invocations(&app, "main", 3);
    // A fourth cold start on `rare` (same root module, same snapshot
    // entry) restores without `lib.sub`, then touches it mid-execution.
    let rare = app.handler_by_name("rare").expect("handler exists");
    invocations.push(Invocation {
        at: SimTime::from_millis(3 * 11 * 60 * 1000),
        handler: rare,
        seed: 99,
    });
    let records: Vec<_> = platform.run(&invocations).expect("run completes").to_vec();

    assert_eq!(store.misses(), 1, "only the first cold start misses");
    assert_eq!(store.hits(), 3, "every later cold start restores");
    assert!(
        store.faulted_loads() >= 1,
        "touching an omitted module must fault it in"
    );
    // The lazy hits on `main` skip lib.sub's 25 ms load; the first (miss)
    // cold start pays the full 66 ms stream.
    assert!(
        records[1].load_time < records[0].load_time,
        "lazy hit {:?} not cheaper than full replay {:?}",
        records[1].load_time,
        records[0].load_time
    );
    // The faulting invocation pays lib.sub's load during execution — its
    // total work exceeds the clean lazy hit by at least that load cost.
    let clean = records[1].load_time + records[1].deferred_load_time;
    let faulted = records[3].load_time + records[3].deferred_load_time;
    assert!(
        faulted > clean,
        "fault cost not charged: clean {clean:?} vs faulted {faulted:?}"
    );
}

#[test]
fn constrained_store_never_exceeds_budget_and_is_deterministic() {
    // Three handlers share one store sized to hold roughly two of the
    // three snapshot entries, forcing steady eviction churn.
    let mut b = AppBuilder::new("churn");
    for h in 0..3u64 {
        let lib = b.add_library(format!("lib{h}"));
        let root = b.add_app_module(format!("h{h}"), ms(1), 64);
        let hot = b.add_library_module(format!("lib{h}"), ms(30 + 10 * h), 512, false, lib);
        b.add_import(root, hot, 2, ImportMode::Global)
            .expect("import is valid");
        let work = b.add_function(
            format!("work{h}"),
            hot,
            5,
            vec![Stmt {
                line: 6,
                kind: StmtKind::Work(ms(2)),
            }],
        );
        let main = b.add_function(
            format!("main{h}"),
            root,
            4,
            vec![Stmt {
                line: 5,
                kind: StmtKind::call(work),
            }],
        );
        b.add_handler(format!("main{h}"), main);
    }
    let app = Arc::new(b.finish().expect("app builds"));
    // Each entry is (64 + 512) KiB = 576 KiB resident; two fit, three
    // do not.
    let budget = 1_400 * 1024;

    let run_once = || {
        let store = Arc::new(SnapshotStore::with_limits(Some(budget), true));
        let config = PlatformConfig::default()
            .without_jitter()
            .with_snapshot_store(Arc::clone(&store));
        let mut platform = Platform::new(Arc::clone(&app), config, 17);
        let mut trace = String::new();
        for k in 0..12usize {
            let handler = app
                .handler_by_name(&format!("main{}", k % 3))
                .expect("handler exists");
            let records = platform
                .run(&[Invocation {
                    at: SimTime::from_millis(k as u64 * 11 * 60 * 1000),
                    handler,
                    seed: k as u64 + 1,
                }])
                .expect("run completes");
            // The budget is an invariant, not an end-of-run property.
            assert!(
                store.resident_bytes() <= budget,
                "after invocation {k}: resident {} exceeds budget {budget}",
                store.resident_bytes()
            );
            trace.push_str(&format!("{records:?}\n"));
        }
        (store.stats(), trace)
    };

    let (stats_a, trace_a) = run_once();
    let (stats_b, trace_b) = run_once();
    assert!(
        stats_a.evictions > 0,
        "churn workload must evict: {stats_a:?}"
    );
    assert!(
        stats_a.hits > 0,
        "some restores must still hit: {stats_a:?}"
    );
    assert_eq!(stats_a, stats_b, "eviction order must be deterministic");
    assert_eq!(trace_a, trace_b, "record streams must be deterministic");
}

#[test]
fn constrained_pool_fleet_is_byte_identical_across_thread_counts() {
    let apps = 24;
    let population = light_population(apps);
    // 12 MiB per shard (48 MiB node / 4 apps): holds one light-population
    // deployment generation at a time.
    let pool = NodeSnapshotPool::new(Some(48 << 20), 4, true);
    let base = FleetConfig::default()
        .with_apps(apps)
        .with_seed(11)
        .with_cold_starts(8)
        .with_runs(1)
        .with_snapshot_pool(pool);

    let mut jsons = Vec::new();
    let mut reports = Vec::new();
    for threads in [1usize, 2, 4] {
        let (report, _) = FleetOrchestrator::new(base.clone().with_threads(threads))
            .run_population(&population)
            .expect("fleet run succeeds");
        jsons.push(report.to_json());
        reports.push(report);
    }
    assert!(
        jsons.windows(2).all(|w| w[0] == w[1]),
        "fleet report (with snapshot counters) differs across thread counts"
    );

    let report = &reports[0];
    let summary = report
        .snapshots
        .expect("pool-enabled fleet reports counters");
    assert!(summary.hits + summary.misses > 0, "stores were consulted");
    let shard_budget = pool.shard_budget_bytes().expect("budget set");
    for row in &report.detail {
        let snap = row.snapshot.expect("every app row carries counters");
        assert!(
            snap.resident_bytes <= shard_budget,
            "app {}: resident {} exceeds shard budget {shard_budget}",
            row.index,
            snap.resident_bytes
        );
    }
}

#[test]
fn redeploy_fingerprint_change_evicts_stale_pool_entries() {
    // Two deployment generations of "the same app slot": v2 adds a module,
    // changing the deployment fingerprint.
    let build = |version: u32| -> Arc<Application> {
        let mut b = AppBuilder::new("slot");
        let lib = b.add_library("lib");
        let root = b.add_app_module("handler", ms(1), 64);
        let hot = b.add_library_module("lib", ms(40), 512, false, lib);
        b.add_import(root, hot, 2, ImportMode::Global)
            .expect("import is valid");
        if version >= 2 {
            let extra = b.add_library_module("lib.extra", ms(5), 32, false, lib);
            b.add_import(hot, extra, 3, ImportMode::Global)
                .expect("import is valid");
        }
        let work = b.add_function(
            "work",
            hot,
            5,
            vec![Stmt {
                line: 6,
                kind: StmtKind::Work(ms(2)),
            }],
        );
        let main = b.add_function(
            "main",
            root,
            4,
            vec![Stmt {
                line: 5,
                kind: StmtKind::call(work),
            }],
        );
        b.add_handler("main", main);
        Arc::new(b.finish().expect("app builds"))
    };

    let pool = NodeSnapshotPool::new(Some(64 << 20), 2, true);
    // One shard, reused across deployments — the redeploy scenario.
    let store = pool.store_for(0);
    let config = || {
        PlatformConfig::default()
            .without_jitter()
            .with_snapshot_store(Arc::clone(&store))
    };

    let v1 = build(1);
    let mut platform = Platform::new(Arc::clone(&v1), config(), 23);
    platform
        .run(&cold_invocations(&v1, "main", 3))
        .expect("v1 runs");
    assert_eq!(store.len(), 1, "v1 populated its entry");
    assert_eq!(store.evictions(), 0, "nothing stale yet");
    let hits_v1 = store.hits();
    assert_eq!(hits_v1, 2, "v1's later cold starts hit");

    // Same generation again: deploying an identical fingerprint must not
    // disturb the cache.
    let _same = Platform::new(Arc::clone(&v1), config(), 24);
    assert_eq!(store.evictions(), 0, "same fingerprint is not stale");
    assert_eq!(store.len(), 1);

    // New generation: constructing the platform evicts v1's entry.
    let v2 = build(2);
    let mut platform = Platform::new(Arc::clone(&v2), config(), 25);
    assert_eq!(
        store.evictions(),
        1,
        "stale generation must be evicted, not left to miss"
    );
    assert_eq!(store.len(), 0, "pool shard holds no stale entries");

    platform
        .run(&cold_invocations(&v2, "main", 3))
        .expect("v2 runs");
    assert_eq!(store.misses(), 2, "one miss per generation");
    assert_eq!(store.hits(), hits_v1 + 2, "v2 rebuilds and then hits");
}
