//! Differential safety: the analyzer's deferral verifier against the
//! runtime.
//!
//! The central claim of the deferral-safety verifier is *behavioural*:
//! every deferral it accepts can be applied without changing observable
//! behaviour (no runtime fault, side-effectful modules still execute at
//! cold start), and the deferrals it rejects really would change
//! behaviour. These tests check both directions — accepted deferrals are
//! driven through the `pyrt` runtime on randomized synthetic applications,
//! and hand-seeded unsafe applications must be rejected with the right
//! lint id, by the verifier itself rather than the legacy per-finding
//! flag.

use std::sync::Arc;

use slimstart::analyzer::{boundary_imports, verify_deferral, Analyzer, SafetyViolation, Severity};
use slimstart::appmodel::app::AppBuilder;
use slimstart::appmodel::function::{Stmt, StmtKind};
use slimstart::appmodel::synth::{
    build_app, AppBlueprint, HandlerBlueprint, LibraryBlueprint, SubpackageBlueprint, UseSpec,
};
use slimstart::appmodel::{Application, ImportMode};
use slimstart::core::detect::SkipReason;
use slimstart::core::optimizer::optimize;
use slimstart::pyrt::process::Process;
use slimstart::simcore::rng::SimRng;
use slimstart::simcore::time::SimDuration;

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

/// A randomized two-library blueprint; each subpackage is independently
/// side-effectful, so some candidate deferrals are safe and some are not.
fn random_blueprint(seed: u64) -> AppBlueprint {
    let mut rng = SimRng::seed_from(seed ^ 0x5afe);
    let sub = |name: &str, share: f64, sfx: bool, api: usize| SubpackageBlueprint {
        name: name.to_string(),
        module_share: share,
        init_share: share,
        mem_share: share,
        side_effectful: sfx,
        api_functions: api,
        api_call_cost: ms(2),
    };
    let lib = |name: &str, modules: usize, subs: Vec<SubpackageBlueprint>| LibraryBlueprint {
        name: name.to_string(),
        modules,
        avg_depth: 2.5,
        init_total: ms(150),
        mem_total_kb: 4_000,
        subpackages: subs,
    };
    AppBlueprint {
        name: format!("safety-{seed}"),
        app_init: ms(1),
        app_mem_kb: 64,
        libraries: vec![
            lib(
                "alib",
                12 + rng.next_below(20),
                vec![
                    sub("hot", 0.5, rng.chance(0.3), 2),
                    sub("dead", 0.5, rng.chance(0.5), 1),
                ],
            ),
            lib(
                "blib",
                8 + rng.next_below(12),
                vec![
                    sub("used", 0.6, rng.chance(0.3), 1),
                    sub("rare", 0.4, rng.chance(0.5), 1),
                ],
            ),
        ],
        handlers: vec![
            HandlerBlueprint {
                name: "main".to_string(),
                local_work: ms(5),
                uses: vec![
                    UseSpec {
                        library: "alib".to_string(),
                        subpackage: "hot".to_string(),
                        api_index: 0,
                        calls: 2,
                        branch_probability: None,
                        indirect: false,
                    },
                    UseSpec {
                        library: "blib".to_string(),
                        subpackage: "used".to_string(),
                        api_index: 0,
                        calls: 1,
                        branch_probability: None,
                        indirect: false,
                    },
                ],
            },
            HandlerBlueprint {
                name: "admin".to_string(),
                local_work: ms(2),
                uses: vec![
                    UseSpec {
                        library: "alib".to_string(),
                        subpackage: "dead".to_string(),
                        api_index: 0,
                        calls: 1,
                        branch_probability: None,
                        indirect: false,
                    },
                    UseSpec {
                        library: "blib".to_string(),
                        subpackage: "rare".to_string(),
                        api_index: 0,
                        calls: 1,
                        branch_probability: Some(0.2),
                        indirect: false,
                    },
                ],
            },
        ],
    }
}

/// Applies one package deferral by flipping its boundary imports.
fn defer_package(app: &Application, package: &str) -> Application {
    let mut out = app.clone();
    for (importer, target, _line) in boundary_imports(app, package) {
        out.set_import_mode(importer, target, ImportMode::Deferred);
    }
    out
}

/// Drives cold start plus a burst of invocations on every handler.
fn drive(app: &Arc<Application>, seed: u64) -> Result<(), slimstart::pyrt::RuntimeFault> {
    let mut p = Process::new(Arc::clone(app), 1.0);
    let entry = app.module_by_name("handler").expect("handler module");
    p.cold_start(entry)?;
    // Every side-effectful module must have executed during cold start:
    // deferral may never postpone an observable side effect.
    for (i, module) in app.modules().iter().enumerate() {
        if module.side_effectful() {
            assert!(
                p.is_loaded(slimstart::appmodel::ModuleId::from_index(i)),
                "side-effectful {} not loaded at cold start",
                module.name()
            );
        }
    }
    let mut rng = SimRng::seed_from(seed);
    for handler in app.handlers() {
        let h = app
            .handler_by_name(handler.name())
            .expect("handler by name");
        for _ in 0..25 {
            p.invoke(h, &mut rng)?;
        }
    }
    Ok(())
}

#[test]
fn accepted_deferrals_never_fault_on_random_apps() {
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    for seed in 0..60u64 {
        let built = build_app(&random_blueprint(seed), seed).expect("blueprint builds");
        let app = built.app;
        // Candidate packages: every library package node in the tree.
        let tree = app.package_tree();
        let candidates: Vec<String> = tree
            .iter()
            .map(|n| n.path.clone())
            .filter(|p| !p.starts_with("handler"))
            .collect();
        for package in candidates {
            match verify_deferral(&app, &package) {
                Ok(()) => {
                    if boundary_imports(&app, &package).is_empty() {
                        continue; // vacuously safe, nothing to flip
                    }
                    accepted += 1;
                    let deferred = Arc::new(defer_package(&app, &package));
                    drive(&deferred, seed * 31 + 7).unwrap_or_else(|fault| {
                        panic!(
                            "seed {seed}: verifier accepted `{package}` but runtime \
                             faulted: {fault}"
                        )
                    });
                }
                Err(_) => rejected += 1,
            }
        }
    }
    // The property must not hold vacuously: the random fleet has to
    // exercise both verdicts.
    assert!(accepted >= 20, "only {accepted} deferrals accepted");
    assert!(rejected >= 20, "only {rejected} deferrals rejected");
}

#[test]
fn stacking_all_accepted_deferrals_is_still_safe() {
    // Deferrals compose: applying every accepted package at once (the way
    // the optimizer does) must stay fault-free too.
    for seed in 0..20u64 {
        let built = build_app(&random_blueprint(seed), seed).expect("blueprint builds");
        let mut app = built.app;
        let tree = app.package_tree();
        let candidates: Vec<String> = tree.iter().map(|n| n.path.clone()).collect();
        for package in candidates {
            // Re-verify against the partially rewritten app each time.
            if verify_deferral(&app, &package).is_ok() {
                app = defer_package(&app, &package);
            }
        }
        drive(&Arc::new(app), seed ^ 0xdead).expect("stacked deferrals must not fault");
    }
}

/// handler imports lib.sub directly; the side-effectful lib root loads only
/// implicitly as lib.sub's parent. A subtree-only side-effect check calls
/// this safe; the runtime disagrees.
fn implicit_parent_app() -> Application {
    let mut b = AppBuilder::new("t");
    let lib = b.add_library("lib");
    let h = b.add_app_module("handler", ms(1), 0);
    let _root = b.add_library_module("lib", ms(5), 0, true, lib);
    let sub = b.add_library_module("lib.sub", ms(2), 0, false, lib);
    b.add_import(h, sub, 2, ImportMode::Global).unwrap();
    let f = b.add_function("main", h, 4, vec![]);
    b.add_handler("main", f);
    b.finish().unwrap()
}

#[test]
fn parent_side_effects_rejected_by_verifier_not_legacy_flag() {
    let app = implicit_parent_app();

    // The legacy check — "any side-effectful module under the package?" —
    // accepts lib.sub, since its subtree is clean.
    let tree = app.package_tree();
    assert!(
        tree.modules_under("lib.sub")
            .into_iter()
            .all(|m| !app.module(m).side_effectful()),
        "precondition: the subtree itself must look clean to the legacy check"
    );

    // The verifier sees through it.
    let err = verify_deferral(&app, "lib.sub").unwrap_err();
    assert_eq!(err.lint_id(), "deferral-parent-side-effects");
    assert!(matches!(err, SafetyViolation::ParentSideEffects { .. }));

    // And the optimizer refuses on the verifier's verdict even when the
    // report claims the finding is deferrable.
    let report = slimstart::core::detect::InefficiencyReport {
        app_name: "t".into(),
        gate_passed: true,
        total_init: ms(8),
        e2e_mean: ms(10),
        init_share: 0.8,
        libraries: vec![],
        findings: vec![slimstart::core::detect::Finding {
            package: "lib.sub".into(),
            library: slimstart::appmodel::LibraryId::from_index(0),
            class: slimstart::core::detect::UsageClass::Unused,
            utilization: 0.0,
            init_time: ms(2),
            init_fraction: 0.2,
            deferrable: true, // the (wrong) legacy verdict
            skip_reason: None,
        }],
    };
    let out = optimize(&app, &report);
    assert!(out.edits.is_empty());
    assert_eq!(
        out.skipped,
        vec![("lib.sub".to_string(), SkipReason::ParentSideEffects)]
    );

    // Differential witness: applying the deferral anyway visibly postpones
    // the parent's side effect past cold start.
    let broken = Arc::new(defer_package(&app, "lib.sub"));
    let mut p = Process::new(Arc::clone(&broken), 1.0);
    let entry = broken.module_by_name("handler").unwrap();
    p.cold_start(entry).unwrap();
    let root = broken.module_by_name("lib").unwrap();
    assert!(
        !p.is_loaded(root),
        "the deferral the verifier rejected really does skip the \
         side-effectful parent at cold start"
    );
}

#[test]
fn sfx_subtree_rejected_and_skipping_it_keeps_runtime_equivalent() {
    let mut b = AppBuilder::new("t");
    let lib = b.add_library("lib");
    let h = b.add_app_module("handler", ms(1), 0);
    let root = b.add_library_module("lib", ms(5), 0, false, lib);
    let noisy = b.add_library_module("lib.noisy", ms(3), 0, true, lib);
    b.add_import(h, root, 2, ImportMode::Global).unwrap();
    b.add_import(root, noisy, 1, ImportMode::Global).unwrap();
    let f = b.add_function("main", h, 4, vec![]);
    b.add_handler("main", f);
    let app = b.finish().unwrap();

    let err = verify_deferral(&app, "lib.noisy").unwrap_err();
    assert_eq!(err.lint_id(), "deferral-side-effects");

    // Differential witness again: the rejected deferral postpones the side
    // effect; keeping the import eager does not.
    let broken = Arc::new(defer_package(&app, "lib.noisy"));
    let mut p = Process::new(Arc::clone(&broken), 1.0);
    p.cold_start(broken.module_by_name("handler").unwrap())
        .unwrap();
    assert!(!p.is_loaded(broken.module_by_name("lib.noisy").unwrap()));
}

#[test]
fn import_time_touch_rejected_with_lint_id() {
    let mut b = AppBuilder::new("t");
    let lib = b.add_library("lib");
    let h = b.add_app_module("handler", ms(1), 0);
    let root = b.add_library_module("lib", ms(2), 0, false, lib);
    b.add_import(h, root, 2, ImportMode::Global).unwrap();
    let f_lib = b.add_function("api", root, 3, vec![]);
    // main touches lib (attribute access) on line 5 *before* the first
    // call on line 6 — after deferral that touch would hit an unbound name.
    let f = b.add_function(
        "main",
        h,
        4,
        vec![
            Stmt {
                line: 5,
                kind: StmtKind::Touch(root),
            },
            Stmt {
                line: 6,
                kind: StmtKind::call(f_lib),
            },
        ],
    );
    b.add_handler("main", f);
    let app = b.finish().unwrap();

    let err = verify_deferral(&app, "lib").unwrap_err();
    assert_eq!(err.lint_id(), "deferral-touch-before-call");
    match err {
        SafetyViolation::ImportTimeTouch { line, .. } => assert_eq!(line, 5),
        other => panic!("wrong violation: {other:?}"),
    }
}

#[test]
fn deferred_cycle_rejected_with_lint_id() {
    let mut b = AppBuilder::new("t");
    let la = b.add_library("liba");
    let lb = b.add_library("libb");
    let h = b.add_app_module("handler", ms(1), 0);
    let a = b.add_library_module("liba", ms(2), 0, false, la);
    let bm = b.add_library_module("libb", ms(2), 0, false, lb);
    b.add_import(h, a, 2, ImportMode::Global).unwrap();
    b.add_import(h, bm, 3, ImportMode::Global).unwrap();
    b.add_import(bm, a, 1, ImportMode::Global).unwrap();
    b.add_import(a, bm, 1, ImportMode::Deferred).unwrap();
    let f = b.add_function("main", h, 4, vec![]);
    b.add_handler("main", f);
    let app = b.finish().unwrap();

    let err = verify_deferral(&app, "liba").unwrap_err();
    assert_eq!(err.lint_id(), "deferral-cycle");
    match err {
        SafetyViolation::DeferredCycle { cycle, .. } => {
            assert_eq!(cycle, vec!["libb", "liba", "libb"]);
        }
        other => panic!("wrong violation: {other:?}"),
    }
}

#[test]
fn analyzer_flags_deployed_unsafe_deferral_as_error() {
    // Ship the implicit-parent app with the unsafe deferral already
    // applied: the deferral-safety pass must produce an error-severity
    // diagnostic, which is exactly what fails `slimstart lint` and trips
    // the pipeline's pre-deployment gate.
    let broken = defer_package(&implicit_parent_app(), "lib.sub");
    let report = Analyzer::with_default_passes().analyze(&broken, None);
    assert!(report.has_errors());
    let diag = report
        .with_lint("deferral-parent-side-effects")
        .next()
        .expect("the unsafe deployed deferral is reported");
    assert_eq!(diag.severity, Severity::Error);
    assert_eq!(diag.span.file, "handler.py");
    assert!(diag.suggestion.is_some(), "an un-defer edit is suggested");
}

#[test]
fn analyzer_is_clean_on_verifier_approved_rewrites() {
    // Whatever the verifier lets the optimizer do must also satisfy the
    // analyzer's deferral-safety pass afterwards: gate and verifier agree.
    for seed in [3u64, 11, 29] {
        let built = build_app(&random_blueprint(seed), seed).expect("blueprint builds");
        let mut app = built.app;
        let tree = app.package_tree();
        let candidates: Vec<String> = tree.iter().map(|n| n.path.clone()).collect();
        for package in candidates {
            if verify_deferral(&app, &package).is_ok() {
                app = defer_package(&app, &package);
            }
        }
        let report = Analyzer::with_default_passes().analyze(&app, None);
        assert!(
            !report.has_errors(),
            "seed {seed}: analyzer rejected a verifier-approved rewrite:\n{}",
            report.render_text()
        );
    }
}
