//! SlimStart vs the FaaSLight-style static baseline (paper Q2).
//!
//! Static analysis must keep anything reachable from *any* entry point, so
//! workload-dead and rarely-used libraries survive it; SlimStart's dynamic
//! profiling removes them too. These tests verify the dominance the paper
//! reports — and that the static baseline remains *safe* (conservative).

use std::sync::Arc;

use slimstart::appmodel::catalog::{by_code, catalog};
use slimstart::core::pipeline::{Pipeline, PipelineConfig};
use slimstart::faaslight::strip_unreachable;
use slimstart::platform::metrics::AppMetrics;
use slimstart::platform::platform::{Platform, PlatformConfig};
use slimstart::workload::generator::generate;
use slimstart::workload::spec::WorkloadSpec;

fn run_app(
    app: Arc<slimstart::appmodel::Application>,
    mix: &[(String, f64)],
    colds: usize,
    seed: u64,
) -> AppMetrics {
    let spec = WorkloadSpec::cold_starts_with_mix(mix, colds);
    let invs = generate(&spec, &app, seed).expect("workload");
    let mut platform = Platform::new(app, PlatformConfig::default().without_jitter(), seed);
    AppMetrics::aggregate(platform.run(&invs).expect("no faults"))
}

#[test]
fn slimstart_beats_static_analysis_on_workload_skewed_apps() {
    for code in ["R-GB", "R-DV", "FL-SA", "FL-TWM", "SensorTD"] {
        let entry = by_code(code).expect("exists");
        let built = entry.build(41).expect("builds");
        let mix = entry.workload_weights();

        let baseline = run_app(Arc::new(built.app.clone()), &mix, 40, 9);

        // FaaSLight: static strip, then measure.
        let stripped = strip_unreachable(&built.app);
        let static_metrics = run_app(Arc::new(stripped.app), &mix, 40, 9);

        // SlimStart: full pipeline.
        let out = Pipeline::new(
            PipelineConfig::default()
                .with_cold_starts(40)
                .with_platform(PlatformConfig::default().without_jitter()),
        )
        .run(&built.app, &mix)
        .expect("pipeline runs");

        let static_speedup = baseline.mean_e2e_ms / static_metrics.mean_e2e_ms;
        assert!(
            out.speedup.e2e > static_speedup,
            "{code}: SlimStart {:.2}x must beat static {:.2}x",
            out.speedup.e2e,
            static_speedup
        );
        assert!(
            static_speedup >= 1.0,
            "{code}: static slimming must not regress"
        );
    }
}

#[test]
fn static_baseline_is_safe_under_every_entry_point() {
    // Even when the "dead" handlers receive traffic, FaaSLight's
    // conservative analysis must never have stripped something they need.
    for entry in catalog().into_iter().filter(|e| e.above_gate()).take(8) {
        let built = entry.build(43).expect("builds");
        let stripped = strip_unreachable(&built.app);
        let mut mix = entry.workload_weights();
        for w in &mut mix {
            if w.1 == 0.0 {
                w.1 = 0.5;
            }
        }
        // Must not fault.
        let _ = run_app(Arc::new(stripped.app), &mix, 30, 13);
    }
}

#[test]
fn static_analysis_misses_workload_dead_packages() {
    // The crux of Observation 2: the drawing package is reachable from the
    // admin handler, so FaaSLight keeps it; SlimStart defers it.
    let entry = by_code("R-GB").expect("exists");
    let built = entry.build(47).expect("builds");

    let stripped = strip_unreachable(&built.app);
    assert!(
        !stripped
            .stripped_packages
            .iter()
            .any(|p| p.contains("drawing")),
        "static analysis must keep the reachable drawing package"
    );
    assert!(
        stripped
            .stripped_packages
            .iter()
            .any(|p| p == "igraph.compat"),
        "static analysis should remove the truly unreachable package"
    );

    let out = Pipeline::new(
        PipelineConfig::default()
            .with_cold_starts(40)
            .with_platform(PlatformConfig::default().without_jitter()),
    )
    .run(&built.app, &entry.workload_weights())
    .expect("runs");
    let opt = out.optimization.expect("optimized");
    assert!(
        opt.deferred_packages.iter().any(|p| p == "igraph.drawing"),
        "dynamic profiling must defer the workload-dead package"
    );
}

#[test]
fn indirect_calls_pin_libraries_for_static_analysis_only() {
    // FWB-MS uses an indirect call into an extra library; static analysis
    // must keep that library wholesale, while SlimStart profiles actual use.
    let entry = by_code("FWB-MS").expect("exists");
    assert!(entry.indirect_extra);
    let built = entry.build(53).expect("builds");
    let analysis = slimstart::faaslight::StaticAnalysis::analyze(&built.app);
    let pinned = built
        .app
        .libraries()
        .iter()
        .enumerate()
        .filter(|(i, _)| analysis.is_pinned(slimstart::appmodel::LibraryId::from_index(*i)))
        .count();
    assert!(
        pinned >= 1,
        "indirect dispatch must pin at least one library"
    );
}

#[test]
fn static_savings_match_declared_static_dead_share() {
    for code in ["FL-PMP", "FL-SN", "FL-PWM", "FL-TWM", "FL-SA"] {
        let entry = by_code(code).expect("exists");
        let built = entry.build(59).expect("builds");
        let handler = built.app.module_by_name("handler").expect("handler");
        let total = built.app.eager_init_cost(handler);
        let stripped = strip_unreachable(&built.app);
        let frac = stripped.removed_init.ratio(total);
        let declared = entry.frac_static_dead;
        assert!(
            (frac - declared).abs() < 0.04,
            "{code}: static removed {frac:.3}, declared {declared:.3}"
        );
    }
}
