//! Integration tests for the production-path extensions: the binary wire
//! format, the asynchronous collector, JSON export, the iterative pipeline
//! and volume-aware adaptive thresholding.

use std::sync::Arc;

use slimstart::appmodel::catalog::by_code;
use slimstart::core::collector::AsyncCollector;
use slimstart::core::export::{outcome_to_json, report_to_json};
use slimstart::core::pipeline::{Pipeline, PipelineConfig};
use slimstart::core::wire::ProfileBatch;
use slimstart::platform::PlatformConfig;

fn config(cold_starts: usize) -> PipelineConfig {
    PipelineConfig::default()
        .with_cold_starts(cold_starts)
        .with_platform(PlatformConfig::default().without_jitter())
}

#[test]
fn async_collector_pipeline_matches_direct_pipeline() {
    let entry = by_code("R-GB").expect("exists");
    let built = entry.build(91).expect("builds");

    let direct = Pipeline::new(config(40))
        .run(&built.app, &entry.workload_weights())
        .expect("direct runs");

    let mut async_cfg = config(40);
    async_cfg.async_collector = true;
    let channelled = Pipeline::new(async_cfg)
        .run(&built.app, &entry.workload_weights())
        .expect("async runs");

    // The transport must not change the analysis: same findings, same
    // optimization, same measured speedups.
    assert_eq!(direct.report.findings, channelled.report.findings);
    assert_eq!(direct.speedup, channelled.speedup);
    assert_eq!(direct.cct.total_samples(), channelled.cct.total_samples());
}

#[test]
fn wire_round_trip_through_a_real_profile() {
    // Profile a real app, push everything through encode/decode, and verify
    // sample-for-sample equality.
    let entry = by_code("R-SA").expect("exists");
    let built = entry.build(93).expect("builds");
    let out = Pipeline::new(config(20))
        .run(&built.app, &entry.workload_weights())
        .expect("runs");
    // Rebuild a batch from the outcome's CCT leaves is lossy; instead run
    // the collector directly with a live profiling platform.
    let store = slimstart::core::profile::ProfileStore::shared();
    let sampler_cfg = slimstart::core::SamplerConfig::default();
    let mut collector = AsyncCollector::start();
    let sender = collector.sender();
    let observer_cfg = PlatformConfig::default()
        .without_jitter()
        .with_observer_factory(Arc::new(move || {
            Box::new(slimstart::core::SamplerAttachment::with_transport(
                sampler_cfg,
                sender.clone(),
            ))
        }));
    let spec = slimstart::workload::spec::WorkloadSpec::cold_starts_with_mix(
        &entry.workload_weights(),
        20,
    );
    let invs = slimstart::workload::generator::generate(&spec, &built.app, 5).expect("workload");
    let mut platform =
        slimstart::platform::platform::Platform::new(Arc::new(built.app.clone()), observer_cfg, 5);
    platform.run(&invs).expect("no faults");
    let stats = collector.finish();
    assert!(stats.batches >= 20, "one batch per invocation: {stats:?}");
    assert_eq!(stats.decode_errors, 0);
    assert!(stats.bytes > 1_000, "real byte volume: {stats:?}");
    let collected = collector.store();
    let collected = collected.lock();
    assert!(collected.samples.len() > 100);
    // All init observations survived the wire.
    let nltk = built.app.module_by_name("nltk").expect("nltk");
    assert!(collected.init_time(nltk).as_micros() > 0);
    let _ = (out, store);
}

#[test]
fn json_export_is_parseable_shape() {
    let entry = by_code("CVE").expect("exists");
    let built = entry.build(95).expect("builds");
    let out = Pipeline::new(config(60))
        .run(&built.app, &entry.workload_weights())
        .expect("runs");
    let json = outcome_to_json(&out);
    // Structural well-formedness without a JSON parser dependency.
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    assert!(json.contains("\"application\":\"cve-bin-tool\""));
    assert!(json.contains("\"package\":\"xmlschema\""));
    assert!(json.contains("\"speedup\""));
    assert!(json.contains("\"edits\""));
    let report_json = report_to_json(&out.report);
    assert!(report_json.contains("\"gate_passed\":true"));
}

#[test]
fn iterative_pipeline_reaches_fixpoint_in_two_rounds() {
    let entry = by_code("R-GB").expect("exists");
    let built = entry.build(97).expect("builds");
    let rounds = Pipeline::new(config(40))
        .run_iterative(&built.app, &entry.workload_weights(), 5)
        .expect("runs");
    // Round 1 optimizes; round 2 finds nothing new and stops the loop.
    assert_eq!(rounds.len(), 2, "expected fixpoint after one optimization");
    assert!(rounds[0].optimized_anything());
    assert!(!rounds[1].optimized_anything());
    // The final deployment keeps round 1's speedup.
    assert!(rounds[0].speedup.e2e > 1.3);
}

#[test]
fn iterative_pipeline_on_gated_app_stops_immediately() {
    let entry = by_code("FWB-FLT").expect("exists");
    let built = entry.build(99).expect("builds");
    let rounds = Pipeline::new(config(10))
        .run_iterative(&built.app, &entry.workload_weights(), 4)
        .expect("runs");
    assert_eq!(rounds.len(), 1);
    assert!(!rounds[0].report.gate_passed);
}

#[test]
fn batch_encoding_scales_with_content() {
    let empty = ProfileBatch::default();
    let small = ProfileBatch {
        samples: vec![slimstart::core::profile::SampleRecord {
            path: vec![slimstart::pyrt::stack::Frame {
                kind: slimstart::pyrt::stack::FrameKind::Call(
                    slimstart::appmodel::FunctionId::from_index(1),
                ),
                line: 3,
            }]
            .into(),
            is_init: false,
        }],
        init_micros: Default::default(),
    };
    assert!(small.encoded_len() > empty.encoded_len());
    assert_eq!(small.encode().len(), small.encoded_len());
}
