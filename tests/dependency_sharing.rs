//! Per-node live dependency sharing: integration contract for the zygote
//! pool (PR 10).
//!
//! Three properties are pinned here:
//!
//! 1. **Determinism.** A zygote-enabled fleet serializes byte-identically
//!    across 1/2/4 worker threads — the pool is planned sequentially up
//!    front from the run-0 builds, so the work-stealing scheduler can
//!    never perturb which zygote an app forks from.
//! 2. **Passthrough.** With zygotes disabled the report keeps the v3
//!    schema and matches the committed PR 9 golden byte-for-byte: no
//!    `zygote` keys leak, no golden re-bless was needed.
//! 3. **Benefit.** Sharing the node's hottest closure strictly lowers the
//!    fleet's summed baseline cold-init time versus the same fleet without
//!    a pool.

use std::fs;
use std::path::PathBuf;

use slimstart::appmodel::catalog::light_population;
use slimstart::fleet::{FleetConfig, FleetOrchestrator, FleetReport, NodeZygotePool};
use slimstart::platform::chaos::ChaosConfig;
use slimstart::platform::PlatformConfig;
use slimstart_core::pipeline::PipelineConfig;

fn base_config(threads: usize) -> FleetConfig {
    FleetConfig::default()
        .with_apps(6)
        .with_threads(threads)
        .with_seed(2025)
        .with_cold_starts(10)
        .with_pipeline(
            PipelineConfig::default().with_platform(PlatformConfig::default().without_jitter()),
        )
}

fn run_catalog(config: FleetConfig) -> FleetReport {
    let (report, _) = FleetOrchestrator::new(config).run().expect("fleet runs");
    report
}

#[test]
fn zygote_fleet_json_is_byte_identical_across_1_2_4_threads() {
    let baseline = run_catalog(base_config(1).with_zygote_pool(NodeZygotePool::default_geometry()));
    let json = baseline.to_json();
    assert!(
        json.contains("\"schema\":\"slimstart-fleet-report/v4\""),
        "zygote-enabled reports must carry the v4 schema"
    );
    let summary = baseline.zygotes.expect("zygote summary present");
    assert!(summary.forks > 0, "cold starts must fork from zygotes");
    assert!(
        summary.forked_loads > 0,
        "forks must acquire resident modules"
    );
    for threads in [2, 4] {
        let report =
            run_catalog(base_config(threads).with_zygote_pool(NodeZygotePool::default_geometry()));
        assert_eq!(
            json,
            report.to_json(),
            "zygote report bytes moved between 1 and {threads} threads"
        );
    }
}

#[test]
fn zygote_chaos_fleet_is_byte_identical_across_worker_counts() {
    // Fault injection and dependency sharing compose: chaos draws from
    // per-app streams split up front, and the zygote plan is fixed before
    // any worker starts, so neither perturbs the other across schedules.
    let chaotic = |threads: usize| {
        let config = base_config(threads)
            .with_apps(5)
            .with_chaos(ChaosConfig::uniform(0.2))
            .with_zygote_pool(NodeZygotePool::default_geometry());
        run_catalog(config)
    };
    let sequential = chaotic(1);
    let json = sequential.to_json();
    assert_eq!(json, chaotic(4).to_json());
    assert!(json.contains("\"chaos\""), "chaos summary must be present");
    assert!(
        json.contains("\"zygotes\""),
        "zygote summary must be present"
    );
}

#[test]
fn zygote_disabled_fleet_matches_the_committed_v3_golden() {
    // The exact configuration behind tests/golden/fleet_report.json —
    // proving the zygote subsystem is a strict passthrough when disabled,
    // against the artifact committed before it existed.
    let config = FleetConfig::default()
        .with_apps(4)
        .with_threads(2)
        .with_seed(2025)
        .with_cold_starts(10)
        .with_pipeline(
            PipelineConfig::default().with_platform(PlatformConfig::default().without_jitter()),
        );
    let json = run_catalog(config).to_json();
    assert!(json.contains("\"schema\":\"slimstart-fleet-report/v3\""));
    assert!(
        !json.contains("zygote"),
        "no zygote keys may leak when disabled"
    );
    let golden = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/fleet_report.json");
    let expected = fs::read_to_string(golden).expect("committed golden");
    assert_eq!(
        expected, json,
        "disabled zygotes must not move report bytes"
    );
}

#[test]
fn sharing_strictly_lowers_summed_baseline_cold_init() {
    // Table-3 direction at fleet granularity: resident modules acquired at
    // fork cost must pull every app's baseline cold init down. The light
    // fixtures share their library closure, so a single zygote per node
    // covers the whole population.
    let run_light = |zygote: Option<NodeZygotePool>| {
        let mut config = base_config(2).with_apps(12).with_cold_starts(5);
        if let Some(pool) = zygote {
            config = config.with_zygote_pool(pool);
        }
        let population = light_population(config.apps);
        let (report, _) = FleetOrchestrator::new(config)
            .run_population(&population)
            .expect("light fleet runs");
        report
    };
    let unshared = run_light(None);
    let shared = run_light(Some(NodeZygotePool::default_geometry()));
    let sum = |r: &FleetReport| -> f64 { r.detail.iter().map(|a| a.baseline_init_ms).sum() };
    assert!(
        sum(&shared) < sum(&unshared),
        "sharing must lower summed baseline cold init ({} >= {})",
        sum(&shared),
        sum(&unshared)
    );
}
