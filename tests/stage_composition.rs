//! Stage-composition contract: the pipeline engine accepts alternate
//! optimize stages, and the pre-deployment analyzer gate still vets
//! whatever candidate they publish.
//!
//! The canonical engine's optimize stage is SLIMSTART's profile-guided
//! deferral; here it is swapped for the FaaSLight-style static strip stage
//! (`slimstart::stages::StripStage`) and the composed pipeline must still
//! run end to end, pass the pre-deployment gate, and never regress the
//! deployment.

use slimstart::appmodel::catalog::by_code;
use slimstart::platform::PlatformConfig;
use slimstart::stages::StripStage;
use slimstart_core::pipeline::{Pipeline, PipelineConfig};
use slimstart_core::stage::StageEngine;

fn config() -> PipelineConfig {
    PipelineConfig::default()
        .with_cold_starts(30)
        .with_seed(11)
        .with_platform(PlatformConfig::default().without_jitter())
}

#[test]
fn strip_stage_swaps_into_the_canonical_engine() {
    let entry = by_code("R-GB").expect("catalog entry");
    let built = entry.build(11).expect("builds");
    let config = config();
    let engine = StageEngine::canonical(&config).replace("optimize", StripStage);

    let out = Pipeline::new(config)
        .run_with_engine(&engine, &built.app, &entry.workload_weights())
        .expect("composed pipeline runs");

    // The strip stage publishes its candidate directly, without an
    // optimizer outcome.
    assert!(out.optimization.is_none());
    // The pre-deployment analyzer vetted the artifact that shipped: no
    // error-severity diagnostics survived (errors would have rolled the
    // deployment back to baseline).
    assert!(
        !out.pre_deploy.has_errors(),
        "strip candidate must pass the pre-deploy analyzer gate"
    );
    // Static stripping never regresses the deployment in this simulator:
    // removed packages were unreachable from every entry function.
    assert!(
        out.speedup.e2e >= 1.0 - 1e-9,
        "e2e speedup {} regressed",
        out.speedup.e2e
    );
}

#[test]
fn swapped_engine_diverges_from_profile_guided_outcome() {
    let entry = by_code("R-GB").expect("catalog entry");
    let built = entry.build(11).expect("builds");
    let config = config();

    let canonical = Pipeline::new(config.clone())
        .run(&built.app, &entry.workload_weights())
        .expect("canonical pipeline runs");
    let engine = StageEngine::canonical(&config).replace("optimize", StripStage);
    let stripped = Pipeline::new(config)
        .run_with_engine(&engine, &built.app, &entry.workload_weights())
        .expect("composed pipeline runs");

    // Profile-guided deferral sees the workload; static stripping cannot
    // (paper Observation 2) — so SLIMSTART's e2e win is at least as large.
    assert!(canonical.optimization.is_some());
    assert!(
        canonical.speedup.e2e >= stripped.speedup.e2e - 1e-9,
        "profile-guided {} vs static {}",
        canonical.speedup.e2e,
        stripped.speedup.e2e
    );
    // Both compositions share the measurement stages, so baselines agree.
    assert_eq!(
        canonical.baseline.mean_e2e_ms,
        stripped.baseline.mean_e2e_ms
    );
}

#[test]
fn engine_edits_compose_with_cross_crate_stages() {
    let config = config();
    let engine = StageEngine::canonical(&config)
        .replace("optimize", StripStage)
        .without("gate");
    let names = engine.stage_names();
    assert!(!names.contains(&"gate"));
    assert!(names.contains(&"optimize"));
}
