//! Case-study assertions: the paper's §VI narratives must hold end to end,
//! within bands, at evaluation scale.

use slimstart::appmodel::catalog::by_code;
use slimstart::core::detect::UsageClass;
use slimstart::core::pipeline::{Pipeline, PipelineConfig};
use slimstart::core::report::{import_path, render};

fn run(
    code: &str,
    cold_starts: usize,
) -> (
    slimstart::appmodel::Application,
    slimstart::core::pipeline::PipelineOutcome,
) {
    let entry = by_code(code).expect("catalog entry");
    let built = entry.build(2025).expect("builds");
    let outcome = Pipeline::new(
        PipelineConfig::default()
            .with_cold_starts(cold_starts)
            .with_seed(2025),
    )
    .run(&built.app, &entry.workload_weights())
    .expect("pipeline runs");
    (built.app, outcome)
}

#[test]
fn rsa_case_study_table_iv() {
    // Paper §VI-1: nltk dominates init; sem is unused; plugins-style
    // side-effectful code survives; 1.35x init / 1.33x e2e / 1.07x memory.
    let (app, out) = run("R-SA", 300);

    let nltk = out
        .report
        .libraries
        .iter()
        .find(|l| l.name == "nltk")
        .expect("nltk summarized");
    assert!(
        nltk.init_fraction > 0.60,
        "nltk should dominate init: {:.2}",
        nltk.init_fraction
    );

    let sem = out
        .report
        .findings
        .iter()
        .find(|f| f.package == "nltk.sem")
        .expect("nltk.sem flagged");
    assert_eq!(sem.class, UsageClass::Unused);
    assert_eq!(sem.utilization, 0.0);
    assert!(sem.deferrable);

    let opt = out.optimization.as_ref().expect("optimized");
    assert!(opt.deferred_packages.contains(&"nltk.sem".to_string()));

    // Band checks vs the published 1.35x / 1.33x / 1.07x.
    assert!(
        (1.25..=1.45).contains(&out.speedup.load),
        "{}",
        out.speedup.load
    );
    assert!(
        (1.22..=1.42).contains(&out.speedup.e2e),
        "{}",
        out.speedup.e2e
    );
    assert!(
        (1.02..=1.12).contains(&out.speedup.mem),
        "{}",
        out.speedup.mem
    );

    // The rendered report carries the call path into the flagged package.
    let text = render(&out.report, &app);
    assert!(text.contains("nltk.sem"));
    assert!(text.contains("handler.py:"));
}

#[test]
fn cve_case_study_table_v() {
    // Paper §VI-2: xmlschema at 0.78% utilization / 8.27% init overhead,
    // reached only via the SBOM branch; 1.27x / 1.20x / 1.21x results.
    let (app, out) = run("CVE", 500);

    let xml = out
        .report
        .findings
        .iter()
        .find(|f| f.package == "xmlschema")
        .expect("xmlschema flagged");
    assert_eq!(xml.class, UsageClass::RarelyUsed);
    assert!(
        xml.utilization > 0.0 && xml.utilization < 0.02,
        "utilization {:.4} outside the rare band",
        xml.utilization
    );
    assert!(
        (0.06..=0.11).contains(&xml.init_fraction),
        "init fraction {:.3} vs paper 0.0827",
        xml.init_fraction
    );

    // The import path mirrors Table V's handler.py → xmlschema chain.
    let handler_mod = app.module_by_name("handler").expect("handler");
    let hops = import_path(&app, handler_mod, "xmlschema").expect("reachable");
    assert_eq!(hops.first().map(|(f, _)| f.as_str()), Some("handler.py"));
    assert!(hops
        .last()
        .map(|(f, _)| f.as_str())
        .unwrap_or("")
        .starts_with("xmlschema/"));

    // Band checks vs the published 1.27x / 1.20x / 1.21x.
    assert!(
        (1.18..=1.36).contains(&out.speedup.load),
        "{}",
        out.speedup.load
    );
    assert!(
        (1.12..=1.28).contains(&out.speedup.e2e),
        "{}",
        out.speedup.e2e
    );
    assert!(
        (1.12..=1.30).contains(&out.speedup.mem),
        "{}",
        out.speedup.mem
    );
}

#[test]
fn graph_bfs_motivation_table_i() {
    // Paper §II-A: the drawing subtree is a significant share of igraph's
    // init and disabling the non-essential subtrees gives ~1.65x library
    // init.
    let entry = by_code("R-GB").expect("catalog entry");
    let built = entry.build(2025).expect("builds");
    let app = &built.app;

    let igraph = &built.libraries["igraph"];
    let drawing = &igraph.subpackages["drawing"];
    let lib_init: f64 = app
        .library(igraph.id)
        .modules()
        .iter()
        .map(|m| app.module(*m).init_cost().as_millis_f64())
        .sum();
    let drawing_init: f64 = drawing
        .modules
        .iter()
        .map(|m| app.module(*m).init_cost().as_millis_f64())
        .sum();
    let share = drawing_init / lib_init;
    assert!(
        (0.18..=0.40).contains(&share),
        "drawing share {share:.2} vs paper ~0.37"
    );

    let (_, out) = run("R-GB", 200);
    // Library-loading improvement ~1.65x-1.71x.
    assert!(
        (1.55..=1.85).contains(&out.speedup.load),
        "load speedup {:.2}",
        out.speedup.load
    );
}

#[test]
fn seventeen_of_twenty_two_with_inefficiencies() {
    // The paper's headline detection count, at a reduced scale for test
    // time: the gate decision is scale-independent.
    let mut detected = 0;
    for entry in slimstart::appmodel::catalog::catalog() {
        let built = entry.build(2025).expect("builds");
        let out = Pipeline::new(
            PipelineConfig::default()
                .with_cold_starts(8)
                .with_seed(2025),
        )
        .run(&built.app, &entry.workload_weights())
        .expect("runs");
        if out.report.gate_passed && !out.report.findings.is_empty() {
            detected += 1;
        }
    }
    assert_eq!(detected, 17);
}
