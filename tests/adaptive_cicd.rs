//! The adaptive CI/CD loop: drift detection drives re-optimization
//! (paper §IV-C).

use slimstart::appmodel::catalog::by_code;
use slimstart::core::adaptive::{AdaptiveDecision, AdaptiveMonitor};
use slimstart::core::pipeline::{Pipeline, PipelineConfig};
use slimstart::platform::PlatformConfig;
use slimstart::prelude::*;
use slimstart::workload::drift::DriftSchedule;

fn config() -> PipelineConfig {
    PipelineConfig::default()
        .with_cold_starts(40)
        .with_platform(PlatformConfig::default().without_jitter())
}

#[test]
fn drift_triggers_and_reoptimization_revives_needed_packages() {
    let entry = by_code("R-GB").expect("exists");
    let built = entry.build(61).expect("builds");
    let pipeline = Pipeline::new(config());

    // Round 1: admin dead.
    let mix1 = vec![("handler".to_string(), 1.0), ("admin".to_string(), 0.0)];
    let round1 = pipeline.run(&built.app, &mix1).expect("runs");
    let deferred1 = round1
        .optimization
        .as_ref()
        .expect("optimized")
        .deferred_packages
        .clone();
    assert!(deferred1.iter().any(|p| p == "igraph.drawing"));

    // Drifted production stream monitored online.
    let monitor_cfg = AdaptiveConfig::default();
    let mut monitor = AdaptiveMonitor::new(monitor_cfg, built.app.handlers().len());
    let schedule = DriftSchedule::constant(
        vec!["handler".to_string(), "admin".to_string()],
        vec![1.0, 0.0],
    )
    .with_episode(SimTime::ZERO + SimDuration::from_hours(36), vec![0.6, 0.4]);
    let stream = schedule
        .generate(&built.app, 4_000, SimDuration::from_mins(1), 71)
        .expect("stream");
    let mut triggered = false;
    for inv in &stream {
        if let Some(AdaptiveDecision::TriggerProfiling { delta }) =
            monitor.record(inv.handler, inv.at)
        {
            assert!(delta > 0.002);
            triggered = true;
        }
    }
    if let Some(AdaptiveDecision::TriggerProfiling { .. }) = monitor.flush() {
        triggered = true;
    }
    assert!(triggered, "the drift must trip the adaptive mechanism");

    // Round 2 with the post-drift mix.
    let mix2 = vec![("handler".to_string(), 0.6), ("admin".to_string(), 0.4)];
    let round2 = pipeline.run(&built.app, &mix2).expect("runs");
    let deferred2 = round2
        .optimization
        .as_ref()
        .map(|o| o.deferred_packages.clone())
        .unwrap_or_default();
    assert!(
        !deferred2.iter().any(|p| p == "igraph.drawing"),
        "the now-hot drawing package must stay eager: {deferred2:?}"
    );
    // But genuinely dead packages remain deferred.
    assert!(
        deferred2.iter().any(|p| p == "igraph.compat"),
        "still-dead packages stay deferred: {deferred2:?}"
    );
}

#[test]
fn stable_workload_does_not_retrigger() {
    // A steady 90/10 mix (deterministic round-robin so the estimate is not
    // polluted by sampling noise: at production volumes the per-window
    // estimator concentrates, which is what makes eps = 0.002 usable).
    let entry = by_code("R-GB").expect("exists");
    let built = entry.build(67).expect("builds");
    let monitor_cfg = AdaptiveConfig::default();
    let mut monitor = AdaptiveMonitor::new(monitor_cfg, built.app.handlers().len());
    let main = built.app.handler_by_name("handler").expect("exists");
    let admin = built.app.handler_by_name("admin").expect("exists");
    for i in 0..20_000u64 {
        let h = if i % 10 == 0 { admin } else { main };
        let at = SimTime::ZERO + SimDuration::from_mins(i);
        assert_eq!(monitor.record(h, at), None, "stable mix must never trigger");
    }
    monitor.flush();
    assert_eq!(monitor.trigger_count(), 0);
    // Windows were actually evaluated.
    assert!(monitor.history().len() >= 10);
}

#[test]
fn low_volume_windows_are_noisy_below_epsilon_scale() {
    // Documented caveat: with only a few hundred requests per window the
    // p_i(t) estimator's sampling noise exceeds eps = 0.002, so a stochastic
    // 90/10 stream can trip the trigger spuriously. Operators either raise
    // eps or widen the window at low volume (the paper: "the parameters can
    // be dynamically adjusted based on observed workload characteristics").
    let entry = by_code("R-GB").expect("exists");
    let built = entry.build(67).expect("builds");
    let monitor_cfg = AdaptiveConfig::default();
    let mut monitor = AdaptiveMonitor::new(monitor_cfg, built.app.handlers().len());
    let schedule = DriftSchedule::constant(
        vec!["handler".to_string(), "admin".to_string()],
        vec![0.9, 0.1],
    );
    let stream = schedule
        .generate(&built.app, 20_000, SimDuration::from_mins(1), 73)
        .expect("stream");
    for inv in &stream {
        monitor.record(inv.handler, inv.at);
    }
    monitor.flush();
    let max_delta = monitor
        .history()
        .iter()
        .map(|w| w.delta)
        .fold(0.0_f64, f64::max);
    // Noise floor for ~720 requests/window is ~1e-2: well above eps.
    assert!(max_delta > 0.002 && max_delta < 0.1, "noise = {max_delta}");
}

#[test]
fn stale_optimization_misses_newly_dead_packages() {
    // The forward direction of drift: a package that was hot at
    // deployment time (admin = 40% of traffic) later goes dead
    // (admin = 0%). The stale optimization keeps loading it eagerly on
    // every cold start; re-profiling defers it and wins.
    use slimstart::platform::metrics::AppMetrics;
    use slimstart::platform::platform::Platform;
    use slimstart::workload::generator::generate;
    use slimstart::workload::spec::WorkloadSpec;
    use std::sync::Arc;

    let entry = by_code("R-GB").expect("exists");
    let built = entry.build(79).expect("builds");
    let pipeline = Pipeline::new(config());

    // Deployment-time mix: admin is busy, drawing is hot → kept eager.
    let mix_then = vec![("handler".to_string(), 0.6), ("admin".to_string(), 0.4)];
    let round1 = pipeline.run(&built.app, &mix_then).expect("runs");
    let deferred_then = round1
        .optimization
        .as_ref()
        .map(|o| o.deferred_packages.clone())
        .unwrap_or_default();
    assert!(
        !deferred_then.iter().any(|p| p == "igraph.drawing"),
        "hot drawing must stay eager at deployment time"
    );

    // Later: admin traffic vanishes; re-profile under the new mix.
    let mix_now = vec![("handler".to_string(), 1.0), ("admin".to_string(), 0.0)];
    let round2 = pipeline.run(&built.app, &mix_now).expect("runs");
    assert!(round2
        .optimization
        .as_ref()
        .expect("optimized")
        .deferred_packages
        .iter()
        .any(|p| p == "igraph.drawing"));

    // Under today's traffic, the stale deployment keeps paying drawing's
    // init on every cold start; the fresh one does not.
    let spec = WorkloadSpec::cold_starts_with_mix(&mix_now, 60);
    let run = |app: Arc<slimstart::appmodel::Application>| {
        let invs = generate(&spec, &app, 83).expect("workload");
        let mut p = Platform::new(app, PlatformConfig::default().without_jitter(), 83);
        AppMetrics::aggregate(p.run(&invs).expect("no faults"))
    };
    let stale = run(Arc::clone(&round1.final_app));
    let fresh = run(Arc::clone(&round2.final_app));
    assert!(
        fresh.mean_e2e_ms < stale.mean_e2e_ms * 0.9,
        "re-optimized {:.1}ms must clearly beat stale {:.1}ms",
        fresh.mean_e2e_ms,
        stale.mean_e2e_ms
    );
}
