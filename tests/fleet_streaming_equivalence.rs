//! Differential test: the streaming fleet path must be observationally
//! indistinguishable from the retained-everything oracle.
//!
//! [`FleetOrchestrator::run_population`] folds each finished app into a
//! constant-memory [`FleetAggregator`] as workers race over a stolen-work
//! queue. [`FleetSummary::from_records`] is the simple oracle: run every
//! app sequentially, keep the full `Vec<AppRecord>`, summarize at the
//! end. For every population the two must serialize to byte-identical
//! JSON — the streaming rewrite is only allowed to change *how much
//! memory the summary costs*, never a single byte of what it says.
//!
//! Populations are randomized (sizes, thread counts, chaos on/off) from a
//! fixed sweep seed, plus the degenerate cells a randomized sweep can
//! miss: the empty fleet, the 1-app fleet, the first fleet big enough to
//! truncate the detail window, and a real-catalog chaos cell.

use slimstart::appmodel::catalog::{fleet_population, light_population, CatalogApp};
use slimstart::fleet::{FleetConfig, FleetOrchestrator, FleetReport, FleetSummary};
use slimstart::platform::chaos::ChaosConfig;
use slimstart::platform::PlatformConfig;
use slimstart::simcore::SimRng;
use slimstart_core::pipeline::PipelineConfig;

fn config(apps: usize, threads: usize, seed: u64) -> FleetConfig {
    FleetConfig::default()
        .with_apps(apps)
        .with_threads(threads)
        .with_seed(seed)
        .with_cold_starts(2)
        .with_pipeline(
            PipelineConfig::default().with_platform(PlatformConfig::default().without_jitter()),
        )
}

/// Runs the same configuration through both paths and asserts the JSON
/// (and the rendered text table, which shares the detail window) agree
/// byte for byte.
fn assert_paths_agree(config: FleetConfig, population: &[CatalogApp]) -> FleetReport {
    let orchestrator = FleetOrchestrator::new(config.clone());
    let (streamed, _) = orchestrator
        .run_population(population)
        .expect("streaming fleet runs");
    let records = orchestrator.run_records(population).expect("oracle runs");
    let oracle = FleetSummary::from_records(config.seed, config.cold_starts, config.runs, records);
    assert_eq!(
        streamed.to_json(),
        oracle.to_json(),
        "streaming JSON diverged from the retained oracle ({} apps, {} threads)",
        population.len(),
        config.threads
    );
    assert_eq!(streamed.render_text(), oracle.render_text());
    streamed
}

#[test]
fn randomized_populations_match_the_retained_oracle() {
    let mut sweep = SimRng::seed_from(0xD1FF_E2E2);
    for trial in 0..6u64 {
        let apps = 1 + sweep.next_below(120);
        let threads = 1 + sweep.next_below(8);
        let seed = sweep.split_seed();
        let mut cfg = config(apps, threads, seed);
        // Alternate chaos on/off so both aggregation shapes are swept.
        if trial % 2 == 1 {
            cfg = cfg.with_chaos(ChaosConfig::uniform(0.2));
        }
        let report = assert_paths_agree(cfg, &light_population(apps));
        assert_eq!(report.fleet_size, apps, "trial {trial}");
    }
}

#[test]
fn empty_fleet_matches_the_retained_oracle() {
    let report = assert_paths_agree(config(0, 4, 2025), &[]);
    assert_eq!(report.fleet_size, 0);
    assert!(!report.detail_truncated);
    assert!(report.detail.is_empty());
    // Degenerate distributions serialize as zeros, not NaN/null garbage.
    assert!(!report.to_json().contains("NaN"));
}

#[test]
fn single_app_fleet_matches_the_retained_oracle() {
    let report = assert_paths_agree(config(1, 8, 2025), &light_population(1));
    assert_eq!(report.fleet_size, 1);
    assert_eq!(report.detail.len(), 1);
    // With one sample every quantile collapses onto the one observation,
    // exactly as the oracle's histogram reports it.
    let init = &report.init_speedup;
    assert_eq!(init.min, init.max);
    assert_eq!(init.median, init.min);
}

#[test]
fn detail_truncating_fleet_matches_the_retained_oracle() {
    // First size past the detail window: the streaming path must cap its
    // detail rows at the same boundary the oracle does.
    let report = assert_paths_agree(config(33, 3, 2025), &light_population(33));
    assert!(report.detail_truncated);
    assert_eq!(report.detail.len(), 32);
}

#[test]
fn catalog_population_with_chaos_matches_the_retained_oracle() {
    // The real catalog entries (not the light fixtures) exercise the full
    // pipeline — profiling deployments, analyzer findings, rollback
    // ladders — under fault injection.
    let cfg = config(5, 4, 2025).with_chaos(ChaosConfig::uniform(0.2));
    let report = assert_paths_agree(cfg, &fleet_population(5));
    assert!(
        report.chaos.is_some(),
        "chaos summary must survive both paths"
    );
}
