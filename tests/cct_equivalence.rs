//! Differential testing: the arena [`Cct`] must be observably equal to the
//! retained pre-arena [`ReferenceCct`] on every seeded sample stream —
//! same shape, same per-context attribution, same escalation totals, same
//! merge results. The arena changes the data layout and the merge
//! algorithm (O(paths) `insert_weighted` vs one re-insert per sample), so
//! this is the oracle that says "faster, not different".

use std::collections::HashMap;

use slimstart::appmodel::{FunctionId, ModuleId};
use slimstart::core::cct::reference::ReferenceCct;
use slimstart::core::cct::{Cct, CctKey};
use slimstart::pyrt::stack::{Frame, FrameKind};
use slimstart::simcore::SimRng;

fn synth_paths(n: usize, seed: u64) -> Vec<(Vec<Frame>, bool)> {
    let mut rng = SimRng::seed_from(seed);
    (0..n)
        .map(|_| {
            let depth = 1 + rng.next_below(8);
            let path: Vec<Frame> = (0..depth)
                .map(|d| {
                    if d == 0 && rng.chance(0.25) {
                        Frame {
                            kind: FrameKind::ModuleInit(ModuleId::from_index(rng.next_below(12))),
                            line: 1 + rng.next_below(40) as u32,
                        }
                    } else {
                        Frame {
                            kind: FrameKind::Call(FunctionId::from_index(rng.next_below(24))),
                            line: 1 + rng.next_below(40) as u32,
                        }
                    }
                })
                .collect();
            (path, rng.chance(0.3))
        })
        .collect()
}

/// Canonical view of a tree: full root-to-node key path → (self samples,
/// self init samples), for populated and interior nodes alike.
type Attribution = HashMap<Vec<CctKey>, (u64, u64)>;

fn arena_attribution(cct: &Cct) -> Attribution {
    (1..cct.len())
        .map(|i| {
            let path: Vec<CctKey> = cct.path_to(i).iter().map(|n| n.key).collect();
            let node = cct.node(i);
            (path, (node.self_samples, node.self_init_samples))
        })
        .collect()
}

fn reference_attribution(cct: &ReferenceCct) -> Attribution {
    (1..cct.nodes().len())
        .map(|i| {
            let path: Vec<CctKey> = cct
                .path_of(i)
                .iter()
                .map(|f| CctKey {
                    kind: f.kind,
                    line: f.line,
                })
                .collect();
            let node = &cct.nodes()[i];
            (path, (node.self_samples, node.self_init_samples))
        })
        .collect()
}

fn build_both(paths: &[(Vec<Frame>, bool)]) -> (Cct, ReferenceCct) {
    let mut arena = Cct::new();
    let mut reference = ReferenceCct::new();
    for (path, is_init) in paths {
        arena.insert(path, *is_init);
        reference.insert(path, *is_init);
    }
    (arena, reference)
}

/// Inclusive counts keyed by canonical path, so the comparison is
/// index-free.
fn inclusive_by_path(inclusive: &[u64], paths: &[Vec<CctKey>]) -> HashMap<Vec<CctKey>, u64> {
    paths
        .iter()
        .cloned()
        .zip(inclusive.iter().skip(1).copied())
        .collect()
}

#[test]
fn seeded_streams_build_identical_trees() {
    for seed in [1u64, 7, 42, 2025, 0xdead] {
        let paths = synth_paths(2_000, seed);
        let (arena, reference) = build_both(&paths);

        assert_eq!(
            arena.len(),
            reference.nodes().len(),
            "seed {seed}: node count"
        );
        assert_eq!(
            arena.total_samples(),
            reference.total_samples(),
            "seed {seed}: total samples"
        );
        assert_eq!(
            arena_attribution(&arena),
            reference_attribution(&reference),
            "seed {seed}: per-context attribution"
        );
    }
}

#[test]
fn escalation_totals_agree() {
    let paths = synth_paths(3_000, 99);
    let (arena, reference) = build_both(&paths);

    let arena_paths: Vec<Vec<CctKey>> = (1..arena.len())
        .map(|i| arena.path_to(i).iter().map(|n| n.key).collect())
        .collect();
    let ref_paths: Vec<Vec<CctKey>> = (1..reference.nodes().len())
        .map(|i| {
            reference
                .path_of(i)
                .iter()
                .map(|f| CctKey {
                    kind: f.kind,
                    line: f.line,
                })
                .collect()
        })
        .collect();

    let arena_inclusive = inclusive_by_path(&arena.inclusive(), &arena_paths);
    let ref_inclusive = inclusive_by_path(&reference.inclusive(), &ref_paths);
    assert_eq!(arena_inclusive, ref_inclusive);

    // The roots see every sample either way.
    assert_eq!(arena.inclusive()[0], reference.inclusive()[0]);
}

#[test]
fn merge_is_equivalent_across_implementations() {
    for (seed_a, seed_b) in [(1u64, 2u64), (2025, 31), (7, 7)] {
        let left = synth_paths(1_500, seed_a);
        let right = synth_paths(1_500, seed_b);
        let (mut arena, mut reference) = build_both(&left);
        let (arena_other, reference_other) = build_both(&right);

        arena.merge(&arena_other);
        reference.merge(&reference_other);

        assert_eq!(
            arena.total_samples(),
            reference.total_samples(),
            "seeds {seed_a}/{seed_b}: merged totals"
        );
        assert_eq!(
            arena_attribution(&arena),
            reference_attribution(&reference),
            "seeds {seed_a}/{seed_b}: merged attribution"
        );
    }
}

#[test]
fn children_iteration_matches_reference_order() {
    // Both implementations create child nodes in first-encounter order; the
    // arena must reproduce that order through its sibling chain.
    let paths = synth_paths(800, 1234);
    let (arena, reference) = build_both(&paths);
    for i in 0..arena.len() {
        let arena_children: Vec<CctKey> = arena.children(i).map(|c| arena.node(c).key).collect();
        let ref_children: Vec<CctKey> = reference.nodes()[i]
            .children
            .iter()
            .map(|&c| reference.nodes()[c].key)
            .collect();
        assert_eq!(arena_children, ref_children, "node {i} child order");
    }
}

#[test]
fn weighted_insert_collapses_repeated_samples() {
    // insert_weighted(path, n, k) must equal n repeated inserts with k of
    // them flagged init — the identity the O(paths) merge relies on.
    let paths = synth_paths(60, 5);
    let mut weighted = Cct::new();
    let mut repeated = ReferenceCct::new();
    for (path, _) in &paths {
        weighted.insert_weighted(path, 5, 2);
        for _ in 0..3 {
            repeated.insert(path, false);
        }
        for _ in 0..2 {
            repeated.insert(path, true);
        }
    }
    assert_eq!(
        arena_attribution(&weighted),
        reference_attribution(&repeated)
    );
}
