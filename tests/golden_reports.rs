//! Golden-file conformance for every serialized report surface.
//!
//! With chaos disabled, nothing in this PR-stream may perturb a single
//! byte of the paper-facing artifacts: the fleet text table (Table 2
//! style), the FaaSLight comparison outcome (Table 3 style), the fleet
//! JSON, and the per-app pipeline JSON. Each test renders the artifact at
//! a pinned (seed, cold-starts) configuration and diffs it against a
//! committed golden under `tests/golden/`.
//!
//! Regenerate intentionally with:
//!
//! ```text
//! SLIMSTART_BLESS=1 cargo test --test golden_reports
//! ```
//!
//! and review the resulting diff like any other code change.

use std::fs;
use std::path::PathBuf;

use slimstart::appmodel::catalog::by_code;
use slimstart::core::export::outcome_to_json;
use slimstart::core::pipeline::{Pipeline, PipelineConfig, PipelineOutcome};
use slimstart::core::stage::StageEngine;
use slimstart::fleet::{FleetConfig, FleetOrchestrator};
use slimstart::platform::chaos::ChaosConfig;
use slimstart::platform::PlatformConfig;
use slimstart::stages::StripStage;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Diffs `actual` against the committed golden, or rewrites the golden
/// when `SLIMSTART_BLESS=1` is set.
fn check_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var("SLIMSTART_BLESS").as_deref() == Ok("1") {
        fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir golden");
        fs::write(&path, actual).expect("write golden");
        return;
    }
    let expected = fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden `{name}` — regenerate with \
             SLIMSTART_BLESS=1 cargo test --test golden_reports"
        )
    });
    assert_eq!(
        expected, actual,
        "`{name}` drifted from its golden; if the change is intentional, \
         re-bless with SLIMSTART_BLESS=1 and review the diff"
    );
}

fn pinned_pipeline_config(seed: u64) -> PipelineConfig {
    PipelineConfig::default()
        .with_cold_starts(25)
        .with_platform(PlatformConfig::default().without_jitter())
        .with_seed(seed)
}

fn run_rgb(config: PipelineConfig) -> PipelineOutcome {
    let entry = by_code("R-GB").expect("catalog entry");
    let built = entry.build(2025).expect("builds");
    Pipeline::new(config)
        .run(&built.app, &entry.workload_weights())
        .expect("pipeline runs")
}

#[test]
fn fleet_text_table_matches_golden() {
    // Table 2 style: the per-app fleet summary table.
    let config = FleetConfig::default()
        .with_apps(3)
        .with_threads(2)
        .with_seed(2025)
        .with_cold_starts(25)
        .with_pipeline(
            PipelineConfig::default().with_platform(PlatformConfig::default().without_jitter()),
        );
    let (report, _) = FleetOrchestrator::new(config).run().expect("fleet runs");
    check_golden("table2_fleet.txt", &report.render_text());
}

#[test]
fn fleet_json_matches_golden() {
    let config = FleetConfig::default()
        .with_apps(4)
        .with_threads(2)
        .with_seed(2025)
        .with_cold_starts(10)
        .with_pipeline(
            PipelineConfig::default().with_platform(PlatformConfig::default().without_jitter()),
        );
    let (report, _) = FleetOrchestrator::new(config).run().expect("fleet runs");
    check_golden("fleet_report.json", &report.to_json());
}

#[test]
fn pipeline_outcome_json_matches_golden() {
    let outcome = run_rgb(pinned_pipeline_config(2025));
    check_golden("pipeline_rgb.json", &outcome_to_json(&outcome));
}

#[test]
fn faaslight_comparison_outcome_matches_golden() {
    // Table 3 style: the same pipeline with FaaSLight's static strip pass
    // swapped in as the optimize stage.
    let entry = by_code("R-GB").expect("catalog entry");
    let built = entry.build(2025).expect("builds");
    let config = pinned_pipeline_config(2025);
    let engine = StageEngine::canonical(&config).replace("optimize", StripStage);
    let outcome = Pipeline::new(config)
        .run_with_engine(&engine, &built.app, &entry.workload_weights())
        .expect("strip pipeline runs");
    check_golden("table3_faaslight.json", &outcome_to_json(&outcome));
}

#[test]
fn disabled_chaos_is_byte_identical_to_no_chaos() {
    // The passthrough contract, proven at the serialization layer: a
    // pipeline built with an explicit all-zero chaos config produces the
    // same bytes as one that never heard of chaos — which is itself the
    // golden above.
    let plain = outcome_to_json(&run_rgb(pinned_pipeline_config(2025)));
    let zeroed = outcome_to_json(&run_rgb(
        pinned_pipeline_config(2025).with_chaos(ChaosConfig::DISABLED),
    ));
    let uniform_zero = outcome_to_json(&run_rgb(
        pinned_pipeline_config(2025).with_chaos(ChaosConfig::uniform(0.0)),
    ));
    assert_eq!(plain, zeroed);
    assert_eq!(plain, uniform_zero);
    assert!(!plain.contains("resilience"));
    check_golden("pipeline_rgb.json", &plain);
}
