//! # slimstart
//!
//! A complete reproduction of **"Efficient Serverless Cold Start: Reducing
//! Library Loading Overhead by Profile-guided Optimization"** (SLIMSTART,
//! ICDCS 2025) as a Rust workspace, built on a deterministic serverless
//! simulation substrate.
//!
//! This facade crate re-exports the member crates:
//!
//! * [`simcore`] — virtual time, seeded RNG, distributions, statistics;
//! * [`appmodel`] — applications, libraries, modules, imports, the
//!   22-application catalog;
//! * [`pyrt`] — the Python-like module loader + interpreter;
//! * [`platform`] — the serverless platform (containers, keep-alive,
//!   cold/warm starts, metrics);
//! * [`workload`] — invocation streams, drift, production-trace synthesis;
//! * [`core`] — SLIMSTART itself (profiler, CCT, detector, optimizer,
//!   adaptive mechanism, CI/CD pipeline);
//! * [`faaslight`] — the static-analysis baseline;
//! * [`analyzer`] — the static-analysis pass framework (deferral-safety
//!   verifier, import lints, over-approximation auditor);
//! * [`fleet`] — the parallel fleet orchestrator (deterministic fan-out of
//!   N applications across a worker pool, aggregated [`FleetReport`]);
//! * [`bench`] — the experiment harness (paper tables/figures and the
//!   `slimstart bench` hot-path micro-benchmarks).
//!
//! The CI/CD pipeline itself is a composition of [`Stage`]s over a shared
//! [`PipelineCtx`](slimstart_core::stage::PipelineCtx); see [`stages`] for
//! cross-crate adapters such as the FaaSLight strip stage.
//!
//! [`FleetReport`]: slimstart_fleet::FleetReport
//! [`Stage`]: slimstart_core::stage::Stage
//!
//! # Quickstart
//!
//! ```
//! use slimstart::prelude::*;
//!
//! // Pick a benchmark application from the paper's catalog…
//! let entry = slimstart::appmodel::catalog::by_code("R-GB").expect("exists");
//! let built = entry.build(7)?;
//!
//! // …and run the full profile → detect → optimize → re-measure cycle.
//! let mut config = PipelineConfig::default();
//! config.cold_starts = 25;
//! let outcome = Pipeline::new(config).run(&built.app, &entry.workload_weights())?;
//! assert!(outcome.speedup.init > 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use slimstart_analyzer as analyzer;
pub use slimstart_appmodel as appmodel;
pub use slimstart_bench as bench;
pub use slimstart_core as core;
pub use slimstart_faaslight as faaslight;
pub use slimstart_fleet as fleet;
pub use slimstart_platform as platform;
pub use slimstart_pyrt as pyrt;
pub use slimstart_simcore as simcore;
pub use slimstart_workload as workload;

pub mod stages;

/// The most commonly used items, for `use slimstart::prelude::*`.
pub mod prelude {
    pub use slimstart_analyzer::{AnalysisReport, Analyzer, Severity};
    pub use slimstart_appmodel::{AppBuilder, Application, ImportMode};
    pub use slimstart_core::pipeline::{Pipeline, PipelineConfig, PipelineOutcome};
    pub use slimstart_core::{AdaptiveConfig, AdaptiveMonitor, Cct, DetectorConfig, SamplerConfig};
    pub use slimstart_core::{Stage, StageEngine, StageStatus};
    pub use slimstart_fleet::{FleetConfig, FleetOrchestrator, FleetReport};
    pub use slimstart_platform::{AppMetrics, Platform, PlatformConfig};
    pub use slimstart_simcore::{SimDuration, SimRng, SimTime};
    pub use slimstart_workload::{ProductionTrace, TraceConfig, WorkloadSpec};
}
