//! Cross-crate [`Stage`] adapters.
//!
//! The stage engine lives in `slimstart-core`; the FaaSLight baseline lives
//! in `slimstart-faaslight`, which `slimstart-analyzer` (and therefore
//! `slimstart-core`) depends on. Adapters that plug baseline techniques
//! into the engine therefore live here, in the facade crate that sees both
//! sides, rather than forcing a dependency cycle lower in the stack.

use std::sync::Arc;

use slimstart_core::pipeline::PipelineError;
use slimstart_core::stage::{PipelineCtx, Stage, StageStatus};
use slimstart_faaslight::strip_unreachable;

/// A FaaSLight-style alternate *optimize* stage.
///
/// Replaces SLIMSTART's profile-guided deferral with static call-graph
/// stripping: packages unreachable from every entry function are removed
/// outright. Swap it into the canonical engine with
/// [`StageEngine::replace`](slimstart_core::stage::StageEngine::replace):
///
/// ```
/// use slimstart::stages::StripStage;
/// use slimstart_core::stage::StageEngine;
/// use slimstart_core::pipeline::PipelineConfig;
///
/// let config = PipelineConfig::default();
/// let engine = StageEngine::canonical(&config).replace("optimize", StripStage);
/// assert!(engine.stage_names().contains(&"optimize"));
/// ```
///
/// The stage produces no [`OptimizationOutcome`]
/// (`outcome.optimization` stays `None`) — it publishes its candidate
/// application directly, and the pre-deployment analyzer gate still vets
/// it before the redeploy measurement.
///
/// [`OptimizationOutcome`]: slimstart_core::optimizer::OptimizationOutcome
#[derive(Debug, Clone, Copy, Default)]
pub struct StripStage;

impl Stage for StripStage {
    fn name(&self) -> &'static str {
        "optimize"
    }

    fn run(&self, ctx: &mut PipelineCtx) -> Result<StageStatus, PipelineError> {
        let stripped = strip_unreachable(&ctx.app);
        if !stripped.stripped_packages.is_empty() {
            ctx.candidate = Some(Arc::new(stripped.app));
            ctx.redeploy = true;
        }
        Ok(StageStatus::Continue)
    }
}
