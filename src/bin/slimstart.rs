//! The `slimstart` command-line tool.
//!
//! ```text
//! slimstart catalog                         list the paper's 22 applications
//! slimstart run <CODE> [options]            full pipeline on one catalog app
//!     --cold-starts <N>                     cold starts per run (default 500)
//!     --seed <S>                            experiment seed (default 2025)
//!     --json                                machine-readable output
//!     --iterate <ROUNDS>                    iterative CI/CD rounds
//!     --async-collector                     ship profiles over the channel
//! slimstart lint <CODE> [--json]            static-analysis diagnostics
//!     --seed <S> / --cold-starts <N>        profiling run parameters
//!     --runtime <python|nodejs|java>        cost profile used to rank the
//!                                           anti-pattern lints (default:
//!                                           python)
//!     --deny warnings                       exit 1 on warnings, not just
//!                                           errors
//!     --fix                                 apply verifier-approved fixes
//!                                           through the pipeline's auto-fix
//!                                           stage and report the measured
//!                                           cold-start delta
//! slimstart lint --passes                   list analysis passes + lint ids
//! slimstart lint --explain <LINT-ID>        rationale, detection rule and
//!                                           suggested refactoring of a lint
//! slimstart source <CODE> <MODULE>          rendered source of a module
//! slimstart graph <CODE> [--optimized]      import graph as Graphviz DOT
//! slimstart trace [--seed <S>]              production-trace statistics
//! slimstart fleet [options]                 optimize a fleet of N apps
//!     --apps <N>                            fleet size (default 22)
//!     --threads <T>                         worker threads (default: cores)
//!     --runs <R>                            averaged runs per app (default 1)
//!     --seed <S> / --cold-starts <N>        experiment parameters
//!     --light                               cycle the 5 lightweight fixture
//!                                           apps instead of the full catalog
//!                                           (sub-ms each; use for 10k+ runs)
//!     --chunk <C>                           population indices per
//!                                           work-stealing chunk (default 32)
//!     --stall-us <U>                        per-app stall workers overlap
//!                                           (modeled collector/deploy
//!                                           round-trip; default 0)
//!     --snapshot-budget <BYTES>             enable the node snapshot pool
//!                                           with this per-node byte budget
//!                                           (`64m`-style suffixes allowed;
//!                                           `0`/`unlimited` = pool with no
//!                                           byte limit; default: the
//!                                           $SLIMSTART_SNAPSHOT_BUDGET env
//!                                           var, else no pool). Restores
//!                                           replay only the recorded
//!                                           working set unless
//!                                           $SLIMSTART_NO_LAZY_RESTORE=1.
//!     --node-size <N>                       apps packed per modeled node
//!                                           (default 8; needs a node pool:
//!                                           --snapshot-budget or --zygotes)
//!     --zygotes <Z>                         enable the node zygote pool:
//!                                           Z pre-warmed processes per node
//!                                           holding the node's hottest
//!                                           library closure; cold starts
//!                                           fork from the best match
//!                                           (default: the $SLIMSTART_ZYGOTES
//!                                           env var, else no pool; 0
//!                                           disables)
//!     --fork-cost-us <U>                    cost of acquiring one
//!                                           zygote-resident module at fork
//!                                           in µs (default 100; needs
//!                                           --zygotes)
//!     --json                                machine-readable output
//! slimstart chaos [options]                 fleet run under fault injection
//!     --fault-rate <P>                      per-event fault probability
//!                                           (default: $SLIMSTART_FAULT_RATE
//!                                           or 0.1)
//!     --apps/--threads/--runs/--seed/--cold-starts/--light/--chunk/
//!     --stall-us/--snapshot-budget/--node-size/--zygotes/--fork-cost-us/
//!     --json as for `fleet`
//! slimstart bench [options]                 hot-path micro-benchmarks
//!     --smoke                               tiny iteration counts (CI)
//!     --seed <S>                            bench seed (default 2025)
//!     --threads <T>                         fleet sweep max threads
//!     --fleet-apps <N>                      override the fleet sweep size
//!                                           (default 10000; 240 in smoke)
//!     --out <PATH>                          also write the JSON report here
//!     --check                               fail if any current path runs
//!                                           >3x slower than its in-run
//!                                           legacy baseline, the fleet
//!                                           report is not byte-identical
//!                                           across thread counts, or the
//!                                           sweep shows no parallel scaling
//!                                           (CI perf gate)
//! slimstart help                            this text
//! ```
//!
//! `fleet` output is byte-identical for any `--threads` value at the same
//! seed — the worker pool decides when an application runs, never with
//! which randomness. The same holds for `chaos`: injected faults draw from
//! dedicated per-app streams split up front, so `slimstart chaos --seed N
//! --json` reproduces byte-for-byte across runs and thread counts.
//!
//! `lint` exits 1 when any error-severity diagnostic is reported and 0
//! otherwise (warnings and infos alone do not fail the build). With
//! `--deny warnings` the warning threshold also fails the build — CI runs
//! this over the catalog's clean fixture apps to keep them lint-free. With
//! `--fix`, the exit code reflects the *post-fix* analysis.

use std::process::ExitCode;

use slimstart::analyzer::{
    lint_catalog, lint_info, AnalysisReport, Analyzer, AntipatternConfig, RuntimeProfile,
};
use slimstart::appmodel::catalog::{by_code, catalog, CatalogApp};
use slimstart::appmodel::source::render_module;
use slimstart::appmodel::Application;
use slimstart::core::export::outcome_to_json;
use slimstart::core::pipeline::{Pipeline, PipelineConfig};
use slimstart::core::report::render;
use slimstart::core::{AutoFixStage, StageEngine};
use slimstart::fleet::{
    parse_budget, FleetConfig, FleetOrchestrator, NodeSnapshotPool, NodeZygotePool,
    DEFAULT_NODE_SIZE,
};
use slimstart::platform::chaos::ChaosConfig;
use slimstart::pyrt::zygote::DEFAULT_FORK_COST;
use slimstart::simcore::SimDuration;
use slimstart::workload::trace::{ProductionTrace, TraceConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    let result = match command {
        "catalog" => cmd_catalog(),
        "run" => cmd_run(&args[1..]),
        // `lint` owns its exit code: 1 on error-severity findings, 0 when
        // the report is clean or carries only warnings/infos.
        "lint" => {
            return match cmd_lint(&args[1..]) {
                Ok(code) => code,
                Err(message) => {
                    eprintln!("error: {message}");
                    ExitCode::FAILURE
                }
            }
        }
        "source" => cmd_source(&args[1..]),
        "graph" => cmd_graph(&args[1..]),
        "trace" => cmd_trace(&args[1..]),
        "fleet" => cmd_fleet(&args[1..]),
        "chaos" => cmd_chaos(&args[1..]),
        "bench" => cmd_bench(&args[1..]),
        "help" | "--help" | "-h" => {
            print_help();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `slimstart help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn print_help() {
    println!(
        "slimstart — profile-guided serverless cold-start optimization (ICDCS'25 reproduction)

USAGE:
    slimstart catalog
    slimstart run <CODE> [--cold-starts N] [--seed S] [--json] [--iterate R] [--async-collector]
    slimstart lint <CODE> [--json] [--seed S] [--cold-starts N] [--runtime R] [--deny warnings] [--fix]
    slimstart lint --passes
    slimstart lint --explain <LINT-ID>
    slimstart source <CODE> <MODULE>
    slimstart graph <CODE> [--optimized] [--seed S]
    slimstart trace [--seed S]
    slimstart fleet [--apps N] [--threads T] [--runs R] [--seed S] [--cold-starts N] [--light] [--chunk C] [--stall-us U] [--snapshot-budget B] [--node-size N] [--zygotes Z] [--fork-cost-us U] [--json]
    slimstart chaos [--fault-rate P] [--apps N] [--threads T] [--runs R] [--seed S] [--cold-starts N] [--light] [--chunk C] [--stall-us U] [--snapshot-budget B] [--node-size N] [--zygotes Z] [--fork-cost-us U] [--json]
    slimstart bench [--smoke] [--seed S] [--threads T] [--fleet-apps N] [--out PATH] [--check]
    slimstart help

Run `cargo bench -p slimstart-bench` to regenerate every paper table/figure."
    );
}

fn flag_value(args: &[String], flag: &str) -> Result<Option<u64>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse()
            .map(Some)
            .map_err(|_| format!("{flag} needs an integer value")),
    }
}

fn flag_value_str(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{flag} needs a value")),
    }
}

fn flag_value_f64(args: &[String], flag: &str) -> Result<Option<f64>, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse()
            .map(Some)
            .map_err(|_| format!("{flag} needs a numeric value")),
    }
}

fn cmd_catalog() -> Result<(), String> {
    println!(
        "{:<9} {:<26} {:<15} {:<14} {:>6} {:>6} {:>8}",
        "CODE", "NAME", "SUITE", "LIBRARY", "#LIBS", "#MODS", "GATE"
    );
    for app in catalog() {
        println!(
            "{:<9} {:<26} {:<15} {:<14} {:>6} {:>6} {:>8}",
            app.code,
            app.name,
            app.suite.label(),
            app.main_library,
            app.n_libs,
            app.n_modules,
            if app.above_gate() { "above" } else { "below" }
        );
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let code = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("usage: slimstart run <CODE> [options]")?;
    let entry = by_code(code).ok_or_else(|| format!("unknown catalog code `{code}`"))?;
    let cold_starts = flag_value(args, "--cold-starts")?.unwrap_or(500) as usize;
    let seed = flag_value(args, "--seed")?.unwrap_or(2025);
    let json = args.iter().any(|a| a == "--json");
    let rounds = flag_value(args, "--iterate")?.unwrap_or(1) as usize;
    let async_collector = args.iter().any(|a| a == "--async-collector");

    let built = entry.build(seed).map_err(|e| e.to_string())?;
    let config = PipelineConfig::default()
        .with_cold_starts(cold_starts)
        .with_seed(seed)
        .with_async_collector(async_collector);
    let pipeline = Pipeline::new(config);
    let outcomes = pipeline
        .run_iterative(&built.app, &entry.workload_weights(), rounds.max(1))
        .map_err(|e| e.to_string())?;
    let outcome = outcomes.last().expect("at least one round");

    if json {
        println!("{}", outcome_to_json(outcome));
        return Ok(());
    }

    println!("{}", render(&outcome.report, &built.app));
    if rounds > 1 {
        println!("CI/CD rounds executed: {}", outcomes.len());
    }
    if let Some(opt) = &outcome.optimization {
        if !opt.deferred_packages.is_empty() {
            println!("lazy-loaded: {:?}", opt.deferred_packages);
        }
        if !opt.skipped.is_empty() {
            println!("kept eager:  {:?}", opt.skipped);
        }
    }
    let first = outcomes.first().expect("at least one round");
    println!(
        "\nbaseline : init {:>8.1} ms   e2e {:>8.1} ms   mem {:>6.1} MB",
        first.baseline.mean_init_ms, first.baseline.mean_e2e_ms, first.baseline.peak_mem_mb
    );
    println!(
        "optimized: init {:>8.1} ms   e2e {:>8.1} ms   mem {:>6.1} MB",
        outcome.optimized.mean_init_ms,
        outcome.optimized.mean_e2e_ms,
        outcome.optimized.peak_mem_mb
    );
    // Cumulative speedup: round-1 baseline vs last round's deployment.
    let speedup =
        slimstart::platform::metrics::Speedup::between(&first.baseline, &outcome.optimized);
    println!(
        "speedup  : lib-load {:.2}x | cold-init {:.2}x | e2e {:.2}x | p99 e2e {:.2}x | mem {:.2}x",
        speedup.load, speedup.init, speedup.e2e, speedup.p99_e2e, speedup.mem
    );
    println!(
        "paper    : init {:.2}x | e2e {:.2}x | mem {:.2}x",
        entry.paper.init_speedup, entry.paper.e2e_speedup, entry.paper.mem_reduction
    );
    println!(
        "profiler overhead: {:.2}%",
        (outcome.profiler_overhead() - 1.0) * 100.0
    );
    Ok(())
}

fn cmd_lint(args: &[String]) -> Result<ExitCode, String> {
    if args.iter().any(|a| a == "--passes") {
        println!("{:<28} {:<28} {:<8}", "LINT ID", "PASS", "DEFAULT");
        for lint in lint_catalog() {
            println!(
                "{:<28} {:<28} {:<8}",
                lint.id, lint.pass, lint.default_severity
            );
        }
        return Ok(ExitCode::SUCCESS);
    }
    if let Some(id) = flag_value_str(args, "--explain")? {
        let info = lint_info(&id).ok_or_else(|| {
            format!("unknown lint id `{id}` (list them with `slimstart lint --passes`)")
        })?;
        println!(
            "{}  (pass: {}, default severity: {})",
            info.id, info.pass, info.default_severity
        );
        println!("\nwhy it hurts cold starts:\n  {}", info.rationale);
        println!("\nhow it is detected:\n  {}", info.detection);
        println!("\nsuggested refactoring:\n  {}", info.refactoring);
        return Ok(ExitCode::SUCCESS);
    }

    let code = args.first().filter(|a| !a.starts_with("--")).ok_or(
        "usage: slimstart lint <CODE> [--fix] [--deny warnings] [--json] \
         | --passes | --explain <LINT-ID>",
    )?;
    let entry = by_code(code).ok_or_else(|| format!("unknown catalog code `{code}`"))?;
    let seed = flag_value(args, "--seed")?.unwrap_or(2025);
    let cold_starts = flag_value(args, "--cold-starts")?.unwrap_or(500) as usize;
    let json = args.iter().any(|a| a == "--json");
    let deny_warnings = match flag_value_str(args, "--deny")? {
        None => false,
        Some(v) if v == "warnings" => true,
        Some(v) => return Err(format!("--deny supports only `warnings`, got `{v}`")),
    };
    let runtime = match flag_value_str(args, "--runtime")? {
        None => RuntimeProfile::python(),
        Some(name) => RuntimeProfile::by_name(&name)
            .ok_or_else(|| format!("unknown runtime `{name}` (python, nodejs, java)"))?,
    };
    let lint_config = AntipatternConfig::default().with_runtime(runtime);

    let built = entry.build(seed).map_err(|e| e.to_string())?;
    let config = PipelineConfig::default()
        .with_cold_starts(cold_starts)
        .with_seed(seed);

    if args.iter().any(|a| a == "--fix") {
        if json {
            return Err("--fix prints a human-readable fix journal; drop --json".to_string());
        }
        return cmd_lint_fix(&entry, &built.app, config, lint_config, deny_warnings);
    }

    // One profiling deployment gives the usage-driven passes (the
    // over-approximation auditor, hot-import detection) their observed view;
    // the other passes are purely static.
    let utilization = Pipeline::new(config)
        .profile_usage(&built.app, &entry.workload_weights())
        .map_err(|e| e.to_string())?;
    let observed = utilization.to_observed();
    let report =
        Analyzer::with_antipattern_passes(lint_config).analyze(&built.app, Some(&observed));

    if json {
        println!("{}", report.render_json());
    } else {
        print!("{}", report.render_text());
    }
    Ok(lint_exit(&report, deny_warnings))
}

fn lint_exit(report: &AnalysisReport, deny_warnings: bool) -> ExitCode {
    if report.has_errors() || (deny_warnings && report.warning_count() > 0) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// `slimstart lint <CODE> --fix`: run the full pipeline with the
/// verifier-gated [`AutoFixStage`] in the optimize slot, report what was
/// applied/refused with the measured cold-start delta, then re-lint the
/// deployed application to show the fixed lints are gone.
fn cmd_lint_fix(
    entry: &CatalogApp,
    app: &Application,
    config: PipelineConfig,
    lint_config: AntipatternConfig,
    deny_warnings: bool,
) -> Result<ExitCode, String> {
    let engine = StageEngine::canonical(&config)
        .replace("optimize", AutoFixStage::with_config(lint_config.clone()));
    let outcome = Pipeline::new(config)
        .run_with_engine(&engine, app, &entry.workload_weights())
        .map_err(|e| e.to_string())?;
    let autofix = outcome
        .autofix
        .as_ref()
        .ok_or("the auto-fix stage recorded no outcome")?;
    let report = &autofix.report;

    println!(
        "auto-fix: {} applied, {} rejected in {} round(s){}",
        report.applied.len(),
        report.rejected.len(),
        report.rounds,
        if report.converged {
            ""
        } else {
            " (round budget exhausted)"
        }
    );
    for fix in &report.applied {
        println!(
            "  fixed {:<26} {}  (modeled -{:.1} ms)",
            fix.lint_id, fix.subject, fix.estimated_saving_ms
        );
    }
    for fix in &report.rejected {
        println!(
            "  kept  {:<26} {}  ({})",
            fix.lint_id, fix.subject, fix.reason
        );
    }
    if autofix.rolled_back {
        println!("cold-start regression in the measurement run — all fixes rolled back");
    } else if let (Some(before), Some(after), Some(speedup)) =
        (&autofix.before, &autofix.after, &autofix.speedup)
    {
        println!(
            "measured : init {:.1} -> {:.1} ms | e2e {:.1} -> {:.1} ms | speedup init {:.2}x e2e {:.2}x",
            before.mean_init_ms,
            after.mean_init_ms,
            before.mean_e2e_ms,
            after.mean_e2e_ms,
            speedup.init,
            speedup.e2e
        );
    }

    let post = Analyzer::with_antipattern_passes(lint_config).analyze(&outcome.final_app, None);
    println!("\npost-fix analysis:");
    print!("{}", post.render_text());
    Ok(lint_exit(&post, deny_warnings))
}

fn cmd_source(args: &[String]) -> Result<(), String> {
    let code = args
        .first()
        .ok_or("usage: slimstart source <CODE> <MODULE>")?;
    let module_name = args
        .get(1)
        .ok_or("usage: slimstart source <CODE> <MODULE>")?;
    let entry = by_code(code).ok_or_else(|| format!("unknown catalog code `{code}`"))?;
    let seed = flag_value(args, "--seed")?.unwrap_or(2025);
    let built = entry.build(seed).map_err(|e| e.to_string())?;
    let module = built
        .app
        .module_by_name(module_name)
        .ok_or_else(|| format!("no module `{module_name}` in {code}"))?;
    print!("{}", render_module(&built.app, module));
    Ok(())
}

fn cmd_graph(args: &[String]) -> Result<(), String> {
    let code = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("usage: slimstart graph <CODE> [--optimized]")?;
    let entry = by_code(code).ok_or_else(|| format!("unknown catalog code `{code}`"))?;
    let seed = flag_value(args, "--seed")?.unwrap_or(2025);
    let built = entry.build(seed).map_err(|e| e.to_string())?;
    if args.iter().any(|a| a == "--optimized") {
        let config = PipelineConfig::default()
            .with_cold_starts(100)
            .with_seed(seed);
        let outcome = Pipeline::new(config)
            .run(&built.app, &entry.workload_weights())
            .map_err(|e| e.to_string())?;
        print!(
            "{}",
            slimstart::appmodel::dot::import_graph_dot(&outcome.final_app)
        );
    } else {
        print!("{}", slimstart::appmodel::dot::import_graph_dot(&built.app));
    }
    Ok(())
}

/// Parses the flags `fleet` and `chaos` share into a [`FleetConfig`] plus
/// the `--light` population switch.
fn parse_fleet_config(args: &[String]) -> Result<(FleetConfig, bool), String> {
    let apps = flag_value(args, "--apps")?.unwrap_or(22) as usize;
    let threads = match flag_value(args, "--threads")? {
        Some(t) => t as usize,
        None => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    };
    let seed = flag_value(args, "--seed")?.unwrap_or(2025);
    let cold_starts = flag_value(args, "--cold-starts")?.unwrap_or(500) as usize;
    let runs = flag_value(args, "--runs")?.unwrap_or(1) as usize;
    let chunk = flag_value(args, "--chunk")?.unwrap_or(32) as usize;
    let stall_us = flag_value(args, "--stall-us")?.unwrap_or(0);
    let light = args.iter().any(|a| a == "--light");
    if apps == 0 {
        return Err("--apps must be at least 1".to_string());
    }
    if chunk == 0 {
        return Err("--chunk must be at least 1".to_string());
    }
    let mut config = FleetConfig::default()
        .with_apps(apps)
        .with_threads(threads.max(1))
        .with_seed(seed)
        .with_cold_starts(cold_starts)
        .with_runs(runs.max(1))
        .with_chunk(chunk)
        .with_stall_micros(stall_us);
    let node_size = match flag_value(args, "--node-size")? {
        Some(0) => return Err("--node-size must be at least 1".to_string()),
        Some(n) => Some(n as usize),
        None => None,
    };
    let snapshot_pool = parse_snapshot_pool(args, node_size)?;
    let zygote_pool = parse_zygote_pool(args, node_size)?;
    if node_size.is_some() && snapshot_pool.is_none() && zygote_pool.is_none() {
        return Err(
            "--node-size needs a node pool (pass --snapshot-budget or --zygotes)".to_string(),
        );
    }
    if let Some(pool) = snapshot_pool {
        config = config.with_snapshot_pool(pool);
    }
    if let Some(pool) = zygote_pool {
        config = config.with_zygote_pool(pool);
    }
    Ok((config, light))
}

/// Resolves the node snapshot pool for `fleet`/`chaos`: the
/// `--snapshot-budget` flag, falling back to `SLIMSTART_SNAPSHOT_BUDGET`;
/// no pool when neither is set. `SLIMSTART_NO_LAZY_RESTORE=1` switches
/// restores back to PR 5 full-stream replay.
fn parse_snapshot_pool(
    args: &[String],
    node_size: Option<usize>,
) -> Result<Option<NodeSnapshotPool>, String> {
    let budget = match flag_value_str(args, "--snapshot-budget")? {
        Some(v) => v,
        None => match std::env::var("SLIMSTART_SNAPSHOT_BUDGET") {
            Ok(v) if !v.is_empty() => v,
            _ => return Ok(None),
        },
    };
    let node_budget = parse_budget(&budget)?;
    let lazy = std::env::var("SLIMSTART_NO_LAZY_RESTORE").map_or(true, |v| v != "1");
    Ok(Some(NodeSnapshotPool::new(
        node_budget,
        node_size.unwrap_or(DEFAULT_NODE_SIZE),
        lazy,
    )))
}

/// Resolves the node zygote pool for `fleet`/`chaos`: the `--zygotes`
/// flag, falling back to `SLIMSTART_ZYGOTES`; no pool when neither is
/// set (or either is `0`). `--fork-cost-us` prices the acquisition of a
/// zygote-resident module at fork time (default 100 µs).
fn parse_zygote_pool(
    args: &[String],
    node_size: Option<usize>,
) -> Result<Option<NodeZygotePool>, String> {
    let zygotes = match flag_value(args, "--zygotes")? {
        Some(n) => n,
        None => match std::env::var("SLIMSTART_ZYGOTES") {
            Ok(v) if !v.is_empty() => v
                .parse()
                .map_err(|_| "SLIMSTART_ZYGOTES must be an integer".to_string())?,
            _ => 0,
        },
    };
    if zygotes == 0 {
        if flag_value(args, "--fork-cost-us")?.is_some() {
            return Err("--fork-cost-us needs the zygote pool (pass --zygotes)".to_string());
        }
        return Ok(None);
    }
    let fork_cost = flag_value(args, "--fork-cost-us")?
        .map(SimDuration::from_micros)
        .unwrap_or(DEFAULT_FORK_COST);
    Ok(Some(NodeZygotePool::new(
        zygotes as usize,
        node_size.unwrap_or(DEFAULT_NODE_SIZE),
        fork_cost,
    )))
}

fn run_fleet(config: FleetConfig, light: bool, json: bool) -> Result<(), String> {
    let orchestrator = FleetOrchestrator::new(config);
    let result = if light {
        let population = slimstart::appmodel::catalog::light_population(orchestrator.config().apps);
        orchestrator.run_population(&population)
    } else {
        orchestrator.run()
    };
    let (report, stats) = result.map_err(|e| e.to_string())?;

    if json {
        // Wall-clock stats stay on stderr: stdout is the deterministic,
        // thread-count-independent report.
        println!("{}", report.to_json());
        eprintln!("{stats}");
    } else {
        print!("{}", report.render_text());
        println!("{stats}");
    }
    Ok(())
}

fn cmd_fleet(args: &[String]) -> Result<(), String> {
    let json = args.iter().any(|a| a == "--json");
    let (config, light) = parse_fleet_config(args)?;
    run_fleet(config, light, json)
}

fn cmd_chaos(args: &[String]) -> Result<(), String> {
    let json = args.iter().any(|a| a == "--json");
    let rate = match flag_value_f64(args, "--fault-rate")? {
        Some(r) => r,
        None => match std::env::var("SLIMSTART_FAULT_RATE") {
            Ok(v) => v
                .parse()
                .map_err(|_| "SLIMSTART_FAULT_RATE must be numeric".to_string())?,
            Err(_) => 0.1,
        },
    };
    if !(0.0..=1.0).contains(&rate) {
        return Err("--fault-rate must be within [0, 1]".to_string());
    }
    let (config, light) = parse_fleet_config(args)?;
    run_fleet(config.with_chaos(ChaosConfig::uniform(rate)), light, json)
}

fn cmd_bench(args: &[String]) -> Result<(), String> {
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = flag_value(args, "--seed")?.unwrap_or(2025);
    let threads = match flag_value(args, "--threads")? {
        Some(t) => (t as usize).max(1),
        None => std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    };
    let fleet_apps = flag_value(args, "--fleet-apps")?.map(|n| n as usize);
    let config = slimstart::bench::BenchConfig {
        smoke,
        seed,
        threads,
        fleet_apps,
    };
    let report = slimstart::bench::hotpath::run(&config);
    print!("{}", report.render_text());
    let json = report.to_json();
    // The harness validates its own output so a writer regression fails
    // `slimstart bench --smoke` in CI rather than corrupting BENCH_*.json.
    slimstart::bench::validate_json(&json)
        .map_err(|e| format!("bench report JSON is malformed: {e}"))?;
    if let Some(path) = flag_value_str(args, "--out")? {
        std::fs::write(&path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
    }
    if args.iter().any(|a| a == "--check") {
        report.check_regressions()?;
        println!(
            "perf gate: every current path within 3x of its in-run baseline; \
             fleet reports byte-identical across the thread sweep"
        );
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), String> {
    let seed = flag_value(args, "--seed")?.unwrap_or(2025);
    let trace = ProductionTrace::generate(TraceConfig::default(), seed);
    println!(
        "apps: {}   windows: {} x {:.0}h   multi-handler: {:.1}%",
        trace.apps().len(),
        trace.window_count(),
        trace.config().window.as_secs_f64() / 3600.0,
        trace.multi_handler_fraction() * 100.0
    );
    let cdf = trace.invocation_cdf_by_rank();
    println!(
        "invocation share: top-1 {:.1}%  top-3 {:.1}%",
        cdf.first().copied().unwrap_or(1.0) * 100.0,
        cdf.get(2).copied().unwrap_or(1.0) * 100.0
    );
    println!("\nhour  mean-dp   apps>eps");
    for (w, (mean, frac)) in trace.delta_p_timeline(0.002).iter().enumerate() {
        println!("{:>4}  {:.5}   {:>5.1}%", w * 12, mean, frac * 100.0);
    }
    Ok(())
}
