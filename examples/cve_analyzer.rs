//! Case study: CVE Binary Analyzer (paper §VI-2, Table V).
//!
//! The `xmlschema` library is only needed when a request carries an SBOM
//! XML (< 1 % of requests) yet its eager import costs ~8 % of every cold
//! start. SlimStart detects the mismatch and lazy-loads it.
//!
//! ```sh
//! cargo run --release --example cve_analyzer
//! ```

use slimstart::appmodel::catalog::by_code;
use slimstart::appmodel::source::render_module;
use slimstart::core::report::render;
use slimstart::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entry = by_code("CVE").expect("CVE is in the catalog");
    let built = entry.build(7)?;

    println!("== Case study: CVE binary analyzer ==\n");

    let config = PipelineConfig::default().with_cold_starts(500);
    let outcome = Pipeline::new(config).run(&built.app, &entry.workload_weights())?;

    println!("{}", render(&outcome.report, &built.app));

    if let Some(xml) = outcome
        .report
        .findings
        .iter()
        .find(|f| f.package == "xmlschema")
    {
        println!(
            "xmlschema: {:.2}% utilization, {:.2}% of initialization latency",
            xml.utilization * 100.0,
            xml.init_fraction * 100.0
        );
        println!("(paper: 0.78% utilization, 8.27% of initialization latency)\n");
    }

    // Show handler.py before/after: the import moves behind the SBOM branch.
    println!("--- handler.py (after SlimStart) ---");
    let handler_mod = outcome
        .final_app
        .module_by_name("handler")
        .expect("handler module");
    for line in render_module(&outcome.final_app, handler_mod)
        .lines()
        .filter(|l| l.contains("import") || l.contains("request_condition"))
    {
        println!("  {line}");
    }

    println!(
        "\ninitialization {:.2}x (paper 1.27x) | end-to-end {:.2}x (paper 1.20x) | memory {:.2}x (paper 1.21x)",
        outcome.speedup.load, outcome.speedup.e2e, outcome.speedup.mem
    );
    Ok(())
}
