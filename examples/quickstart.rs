//! Quickstart: build a small serverless application, profile it, let
//! SlimStart optimize it, and compare cold-start latency.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use slimstart::appmodel::app::AppBuilder;
use slimstart::appmodel::function::{Stmt, StmtKind};
use slimstart::appmodel::ImportMode;
use slimstart::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // 1. Model a serverless application.
    //
    // handler.py imports `mlkit`; mlkit's __init__ eagerly imports a hot
    // inference module and a heavy, rarely needed visualization module —
    // the igraph pattern from the paper's Table I.
    // ------------------------------------------------------------------
    let mut b = AppBuilder::new("quickstart");
    let lib = b.add_library("mlkit");
    let handler_mod = b.add_app_module("handler", SimDuration::from_millis(2), 512);
    let root = b.add_library_module("mlkit", SimDuration::from_millis(5), 1_024, false, lib);
    let infer = b.add_library_module(
        "mlkit.infer",
        SimDuration::from_millis(120),
        20_480,
        false,
        lib,
    );
    let viz = b.add_library_module(
        "mlkit.viz",
        SimDuration::from_millis(380),
        61_440,
        false,
        lib,
    );
    b.add_import(handler_mod, root, 2, ImportMode::Global)?;
    b.add_import(root, infer, 2, ImportMode::Global)?;
    b.add_import(root, viz, 3, ImportMode::Global)?;

    let predict = b.add_function(
        "predict",
        infer,
        10,
        vec![Stmt {
            line: 11,
            kind: StmtKind::Work(SimDuration::from_millis(35)),
        }],
    );
    let plot = b.add_function(
        "plot",
        viz,
        10,
        vec![Stmt {
            line: 11,
            kind: StmtKind::Work(SimDuration::from_millis(60)),
        }],
    );
    let serve = b.add_function(
        "serve",
        handler_mod,
        4,
        vec![
            Stmt {
                line: 5,
                kind: StmtKind::call(predict),
            },
            // Only 1 in 200 requests asks for a rendered chart.
            Stmt {
                line: 6,
                kind: StmtKind::Branch {
                    probability: 0.005,
                    body: vec![Stmt {
                        line: 7,
                        kind: StmtKind::call(plot),
                    }],
                },
            },
        ],
    );
    b.add_handler("serve", serve);
    let app = b.finish()?;

    // ------------------------------------------------------------------
    // 2. Run the full SlimStart pipeline:
    //    baseline -> gate -> profile -> detect -> optimize -> re-measure.
    // ------------------------------------------------------------------
    let config = PipelineConfig::default().with_cold_starts(300);
    let outcome = Pipeline::new(config).run(&app, &[("serve".to_string(), 1.0)])?;

    println!("== SlimStart quickstart ==\n");
    println!(
        "baseline : init {:>7.1} ms   e2e {:>7.1} ms   peak mem {:>6.1} MB",
        outcome.baseline.mean_init_ms, outcome.baseline.mean_e2e_ms, outcome.baseline.peak_mem_mb
    );
    println!(
        "optimized: init {:>7.1} ms   e2e {:>7.1} ms   peak mem {:>6.1} MB",
        outcome.optimized.mean_init_ms,
        outcome.optimized.mean_e2e_ms,
        outcome.optimized.peak_mem_mb
    );
    println!(
        "speedup  : init {:.2}x   e2e {:.2}x   memory {:.2}x\n",
        outcome.speedup.init, outcome.speedup.e2e, outcome.speedup.mem
    );

    println!("what the profiler found:");
    for f in &outcome.report.findings {
        println!(
            "  {:<12} utilization {:>5.2}%   init overhead {:>5.1}%   {:?}",
            f.package,
            f.utilization * 100.0,
            f.init_fraction * 100.0,
            f.class
        );
    }

    println!("\ncode edits applied:");
    if let Some(opt) = &outcome.optimization {
        for edit in &opt.edits {
            println!("{edit}\n");
        }
    }

    println!(
        "profiler overhead during the profiling window: {:.2}%",
        (outcome.profiler_overhead() - 1.0) * 100.0
    );
    Ok(())
}
