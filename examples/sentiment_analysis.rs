//! Case study: RainbowCake sentiment analysis (paper §VI-1, Table IV).
//!
//! Deploys the R-SA replica, profiles it under the evaluation workload,
//! prints the SlimStart inefficiency report (nltk's unused `sem` subtree),
//! applies the optimization and reports the improvement.
//!
//! ```sh
//! cargo run --release --example sentiment_analysis
//! ```

use slimstart::appmodel::catalog::by_code;
use slimstart::core::report::render;
use slimstart::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entry = by_code("R-SA").expect("R-SA is in the catalog");
    let built = entry.build(7)?;

    println!("== Case study: sentiment analysis (R-SA) ==");
    println!(
        "app: {} | main library: {} | {} modules, avg depth {:.2}\n",
        entry.name,
        entry.main_library,
        entry.n_modules,
        built.app.avg_module_depth()
    );

    let config = PipelineConfig::default().with_cold_starts(300);
    let outcome = Pipeline::new(config).run(&built.app, &entry.workload_weights())?;

    // The paper's Table IV report.
    println!("{}", render(&outcome.report, &built.app));

    // nltk headline numbers.
    if let Some(nltk) = outcome.report.libraries.iter().find(|l| l.name == "nltk") {
        println!(
            "nltk: {:.2}% utilization, {:.2}% of initialization latency",
            nltk.utilization * 100.0,
            nltk.init_fraction * 100.0
        );
        println!("(paper: 5.33% utilization, 69.93% of initialization latency)\n");
    }

    if let Some(opt) = &outcome.optimization {
        println!("lazy-loaded packages: {:?}", opt.deferred_packages);
        println!("kept for safety:      {:?}\n", opt.skipped);
    }

    println!(
        "initialization {:.2}x (paper 1.35x) | end-to-end {:.2}x (paper 1.33x) | memory {:.2}x (paper 1.07x)",
        outcome.speedup.load, outcome.speedup.e2e, outcome.speedup.mem
    );
    Ok(())
}
