//! CI/CD with adaptive re-optimization (paper §IV-C).
//!
//! A workload shift makes yesterday's optimization stale: the `admin` entry
//! point — dead at deployment time, so its libraries were lazy-loaded —
//! suddenly takes 30 % of traffic. The adaptive monitor notices the change
//! in invocation probabilities (Σ|Δp| > ε) and re-triggers profiling; the
//! second optimization round keeps the now-hot package eager again.
//!
//! ```sh
//! cargo run --release --example cicd_adaptive
//! ```

use slimstart::appmodel::catalog::by_code;
use slimstart::appmodel::HandlerId;
use slimstart::core::adaptive::AdaptiveDecision;
use slimstart::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let entry = by_code("R-GB").expect("graph-bfs in catalog");
    let built = entry.build(7)?;
    let app = built.app;

    println!("== CI/CD loop with adaptive re-profiling ==\n");

    // ---------------- Round 1: optimize for the deployment-time workload.
    let config = PipelineConfig::default().with_cold_starts(200);
    let pipeline = Pipeline::new(config.clone());
    let day_one_mix = vec![("handler".to_string(), 1.0), ("admin".to_string(), 0.0)];
    let round1 = pipeline.run(&app, &day_one_mix)?;
    println!("round 1 (admin handler unused):");
    println!(
        "  deferred: {:?}",
        round1
            .optimization
            .as_ref()
            .map(|o| o.deferred_packages.clone())
            .unwrap_or_default()
    );
    println!("  init speedup {:.2}x\n", round1.speedup.init);

    // ---------------- Production: the workload drifts.
    // Four 12 h windows at the old mix, then admin jumps to 30 %.
    let monitor_cfg = AdaptiveConfig::default();
    let mut monitor = AdaptiveMonitor::new(monitor_cfg, app.handlers().len());
    let handler_id = app.handler_by_name("handler").expect("exists");
    let admin_id = app.handler_by_name("admin").expect("exists");
    let mut decision = None;
    for window in 0..6u64 {
        let at = SimTime::ZERO + monitor_cfg.window * window;
        let admin_share = if window < 4 { 0 } else { 30 };
        for i in 0..100 {
            let h: HandlerId = if i < admin_share {
                admin_id
            } else {
                handler_id
            };
            if let Some(d) = monitor.record(h, at) {
                decision = Some((window, d));
            }
        }
    }
    monitor.flush();
    for w in monitor.history() {
        println!(
            "  window @ {:>5.0} h: dp = {:.3} {}",
            w.start.as_secs_f64() / 3600.0,
            w.delta,
            if w.triggered {
                "<- TRIGGER profiling"
            } else {
                ""
            }
        );
    }
    let (at_window, AdaptiveDecision::TriggerProfiling { delta }) = decision
        .or_else(|| {
            monitor
                .history()
                .iter()
                .enumerate()
                .find(|(_, w)| w.triggered)
                .map(|(i, w)| {
                    (
                        i as u64,
                        AdaptiveDecision::TriggerProfiling { delta: w.delta },
                    )
                })
        })
        .expect("the drift must trigger");
    println!("\nadaptive mechanism fired at window {at_window} (dp = {delta:.3} > eps = 0.002)\n");

    // ---------------- Round 2: re-profile under the new mix.
    let drifted_mix = vec![("handler".to_string(), 0.7), ("admin".to_string(), 0.3)];
    let round2 = pipeline.run(&app, &drifted_mix)?;
    println!("round 2 (admin now 30% of traffic):");
    println!(
        "  deferred: {:?}",
        round2
            .optimization
            .as_ref()
            .map(|o| o.deferred_packages.clone())
            .unwrap_or_default()
    );
    println!("  init speedup {:.2}x", round2.speedup.init);

    let r1 = round1
        .optimization
        .as_ref()
        .map(|o| o.deferred_packages.clone())
        .unwrap_or_default();
    let r2 = round2
        .optimization
        .as_ref()
        .map(|o| o.deferred_packages.clone())
        .unwrap_or_default();
    let revived: Vec<&String> = r1.iter().filter(|p| !r2.contains(p)).collect();
    println!("\npackages re-warmed because the drifted workload now uses them: {revived:?}");
    println!("(stale optimizations would have paid their load cost on 30% of requests)");
    Ok(())
}
