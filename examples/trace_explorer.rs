//! Explore the synthetic production trace behind the paper's §II-C study.
//!
//! Prints the Fig. 3 distributions (handler-count PDF, invocation CDF) and
//! the Fig. 10 drift timeline, then zooms into a few individual traced
//! applications.
//!
//! ```sh
//! cargo run --release --example trace_explorer
//! ```

use slimstart::prelude::*;

fn main() {
    let trace = ProductionTrace::generate(TraceConfig::default(), 2026);
    println!("== Production-trace explorer ==");
    println!(
        "{} apps, {} windows of {:.0} h\n",
        trace.apps().len(),
        trace.window_count(),
        trace.config().window.as_secs_f64() / 3600.0
    );

    println!("handler-count PDF (Fig. 3-1):");
    for (count, frac) in trace.handler_count_pdf() {
        println!(
            "  {count:>2} handlers: {:>5.1}%  {}",
            frac * 100.0,
            "#".repeat((frac * 80.0).round() as usize)
        );
    }
    println!(
        "\n{:.1}% of apps have more than one entry function (paper: 54%)\n",
        trace.multi_handler_fraction() * 100.0
    );

    println!("invocation CDF by handler rank (Fig. 3-2):");
    for (rank, share) in trace.invocation_cdf_by_rank().iter().take(6).enumerate() {
        println!(
            "  top-{:<2}: {:>5.1}% of invocations",
            rank + 1,
            share * 100.0
        );
    }

    println!("\ndrift timeline (Fig. 10, eps = 0.002):");
    for (w, (mean, frac)) in trace.delta_p_timeline(0.002).iter().enumerate() {
        if *frac > 0.05 || w % 4 == 0 {
            println!(
                "  hour {:>3}: mean dp {:.5}, {:>5.1}% of apps above eps {}",
                w * 12,
                mean,
                frac * 100.0,
                if *frac > 0.10 { "<- shift episode" } else { "" }
            );
        }
    }

    // Zoom: the most skewed multi-handler app.
    let app = trace
        .apps()
        .iter()
        .filter(|a| a.handler_count >= 3)
        .max_by(|a, b| {
            let skew = |t: &slimstart::workload::trace::TraceApp| {
                let totals = t.totals();
                let max = *totals.iter().max().unwrap_or(&0) as f64;
                let sum: u64 = totals.iter().sum();
                if sum == 0 {
                    0.0
                } else {
                    max / sum as f64
                }
            };
            skew(a).partial_cmp(&skew(b)).expect("finite")
        })
        .expect("multi-handler app exists");
    println!(
        "\nmost skewed app: {} handlers, per-handler totals {:?}",
        app.handler_count,
        app.totals()
    );
    println!("-> its cold libraries are workload-dependent: exactly what SlimStart defers.");
}
