//! Offline stand-in for `crossbeam`, covering only `crossbeam::channel`.
//!
//! `std::sync::mpsc` provides the exact semantics the workspace needs
//! from an unbounded crossbeam channel: cloneable senders, blocking
//! receiver iteration that ends when every sender drops, and
//! `send() -> Result`.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn fifo_and_clone() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn receiver_ends_when_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        let worker = std::thread::spawn(move || rx.into_iter().count());
        for _ in 0..10 {
            tx.send(0).unwrap();
        }
        drop(tx);
        assert_eq!(worker.join().unwrap(), 10);
    }
}
