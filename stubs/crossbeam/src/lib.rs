//! Offline stand-in for `crossbeam`, covering `crossbeam::channel` and
//! `crossbeam::deque`.
//!
//! `std::sync::mpsc` provides the exact semantics the workspace needs
//! from an unbounded crossbeam channel: cloneable senders, blocking
//! receiver iteration that ends when every sender drops, and
//! `send() -> Result`.
//!
//! The `deque` module mirrors crossbeam-deque's work-stealing API
//! surface (`Injector`/`Worker`/`Stealer`/`Steal`) over locked
//! `VecDeque`s. The fleet orchestrator schedules *chunks* of dozens of
//! applications per queue item, so queue operations are micro-rare next
//! to the work they hand out and lock-based queues lose nothing
//! measurable to the real Chase–Lev deque — while keeping the stub
//! dependency-free and obviously correct.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvError, SendError, Sender, TryRecvError};

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

pub mod deque {
    //! Work-stealing queues: a global [`Injector`], per-worker
    //! [`Worker`] deques, and cloneable [`Stealer`] handles.
    //!
    //! Semantics match crossbeam-deque where the workspace relies on
    //! them: the owning worker pushes at the back and pops FIFO at the
    //! front, stealers take from the opposite (back) end, and
    //! [`Injector::steal_batch_and_pop`] moves a batch into the worker
    //! atomically (an observer never sees the batch "in flight"
    //! belonging to neither queue).

    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    /// Items an [`Injector::steal_batch_and_pop`] call moves into the
    /// destination worker beyond the one it returns.
    const BATCH: usize = 3;

    /// The outcome of a steal attempt.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Steal<T> {
        /// The queue was observed empty.
        Empty,
        /// One task was stolen.
        Success(T),
        /// The attempt lost a race; retry may succeed. The lock-based
        /// stub never loses races, but callers written against the real
        /// crossbeam API must still handle it.
        Retry,
    }

    impl<T> Steal<T> {
        /// The stolen task, if any.
        pub fn success(self) -> Option<T> {
            match self {
                Steal::Success(task) => Some(task),
                _ => None,
            }
        }
    }

    fn lock<T>(queue: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A global FIFO queue every worker can steal from.
    #[derive(Debug, Default)]
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Injector<T> {
        /// Creates an empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Appends a task at the back.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// Steals one task from the front.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.queue).pop_front() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Steals a batch of tasks, moving all but the returned one into
        /// `dest`. Both queues are locked for the move, so no observer
        /// can catch the batch in neither queue.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            let mut queue = lock(&self.queue);
            let Some(task) = queue.pop_front() else {
                return Steal::Empty;
            };
            let mut local = lock(&dest.inner);
            for _ in 0..BATCH.min(queue.len()) {
                if let Some(extra) = queue.pop_front() {
                    local.push_back(extra);
                }
            }
            Steal::Success(task)
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }
    }

    /// A worker's own deque: the owner pushes at the back and pops at
    /// the front, stealers take from the back.
    #[derive(Debug)]
    pub struct Worker<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates an empty FIFO worker queue.
        pub fn new_fifo() -> Self {
            Worker {
                inner: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            lock(&self.inner).push_back(task);
        }

        /// Pops a task from the owner's end (FIFO order, matching
        /// `new_fifo`: oldest local task first).
        pub fn pop(&self) -> Option<T> {
            lock(&self.inner).pop_front()
        }

        /// A handle other workers use to steal from this queue.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }

        /// Whether the queue was observed empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.inner).is_empty()
        }

        /// Observed queue length.
        pub fn len(&self) -> usize {
            lock(&self.inner).len()
        }
    }

    impl<T> Default for Worker<T> {
        fn default() -> Self {
            Worker::new_fifo()
        }
    }

    /// A cloneable handle that steals from the far end of a [`Worker`].
    #[derive(Debug)]
    pub struct Stealer<T> {
        inner: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Stealer<T> {
        /// Steals one task from the back of the victim's queue.
        pub fn steal(&self) -> Steal<T> {
            match lock(&self.inner).pop_back() {
                Some(task) => Steal::Success(task),
                None => Steal::Empty,
            }
        }

        /// Whether the victim's queue was observed empty.
        pub fn is_empty(&self) -> bool {
            lock(&self.inner).is_empty()
        }
    }
}

#[cfg(test)]
mod deque_tests {
    use super::deque::{Injector, Steal, Worker};

    #[test]
    fn batch_steal_moves_extras_into_the_worker() {
        let injector = Injector::new();
        for i in 0..10 {
            injector.push(i);
        }
        let worker = Worker::new_fifo();
        assert_eq!(injector.steal_batch_and_pop(&worker), Steal::Success(0));
        // One returned, BATCH moved locally.
        assert_eq!(worker.len(), 3);
        assert_eq!(worker.pop(), Some(1));
        assert_eq!(worker.pop(), Some(2));
        assert_eq!(worker.pop(), Some(3));
        assert_eq!(worker.pop(), None);
        assert!(!injector.is_empty());
    }

    #[test]
    fn stealer_takes_from_the_opposite_end() {
        let worker = Worker::new_fifo();
        worker.push(1);
        worker.push(2);
        worker.push(3);
        let stealer = worker.stealer();
        assert_eq!(stealer.steal(), Steal::Success(3));
        assert_eq!(worker.pop(), Some(1));
        assert_eq!(stealer.clone().steal(), Steal::Success(2));
        assert_eq!(stealer.steal(), Steal::Empty);
        assert!(worker.is_empty() && stealer.is_empty());
    }

    #[test]
    fn every_task_is_taken_exactly_once_across_racing_stealers() {
        let injector = std::sync::Arc::new(Injector::new());
        for i in 0..1000u32 {
            injector.push(i);
        }
        let mut handles = Vec::new();
        for _ in 0..4 {
            let injector = std::sync::Arc::clone(&injector);
            handles.push(std::thread::spawn(move || {
                let worker = Worker::new_fifo();
                let mut got = Vec::new();
                loop {
                    if let Some(task) = worker.pop() {
                        got.push(task);
                        continue;
                    }
                    match injector.steal_batch_and_pop(&worker) {
                        Steal::Success(task) => got.push(task),
                        Steal::Retry => continue,
                        Steal::Empty => break,
                    }
                }
                got
            }));
        }
        let mut all: Vec<u32> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("stealer thread completes"))
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..1000).collect::<Vec<_>>());
    }
}

#[cfg(test)]
mod tests {
    use super::channel::unbounded;

    #[test]
    fn fifo_and_clone() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        drop((tx, tx2));
        let got: Vec<i32> = rx.into_iter().collect();
        assert_eq!(got, vec![1, 2]);
    }

    #[test]
    fn receiver_ends_when_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        let worker = std::thread::spawn(move || rx.into_iter().count());
        for _ in 0..10 {
            tx.send(0).unwrap();
        }
        drop(tx);
        assert_eq!(worker.join().unwrap(), 10);
    }
}
