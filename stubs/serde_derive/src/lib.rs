//! No-op `Serialize`/`Deserialize` derives.
//!
//! Nothing in the workspace is generic over serde's traits, so expanding
//! to an empty token stream is sufficient: the `#[derive(...)]`
//! annotations stay valid without generating impls.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
