//! Offline stand-in for the `bytes` crate.
//!
//! Implements the slice of the `bytes` 1.x API that
//! `slimstart-core/src/wire.rs` and the async collector use: an
//! immutable, cheaply cloneable [`Bytes`] view with little-endian
//! cursor reads, and a growable [`BytesMut`] writer that freezes into
//! one. Reads past the end panic, as upstream does — `wire.rs` always
//! checks `remaining()` first.

use std::ops::{Bound, RangeBounds};
use std::sync::Arc;

/// Cursor-read interface over a byte buffer.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn get_u16_le(&mut self) -> u16;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }
}

/// Append-write interface over a byte buffer.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u16_le(&mut self, v: u16);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_slice(&mut self, src: &[u8]);
}

/// An immutable, reference-counted byte buffer with an internal read
/// cursor (advanced by the [`Buf`] methods).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(Vec::new()),
            start: 0,
            end: 0,
        }
    }

    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Returns a view of a sub-range of the *remaining* bytes, sharing
    /// the underlying allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "read past end of Bytes");
        let at = self.start;
        self.start += n;
        &self.data[at..at + n]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Bytes {
            data: Arc::from(v),
            start: 0,
            end,
        }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take(2).try_into().expect("2 bytes"))
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take(4).try_into().expect("4 bytes"))
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take(8).try_into().expect("8 bytes"))
    }
}

/// A growable byte buffer for building wire messages.
#[derive(Clone, Debug, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut::default()
    }

    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut, Bytes, BytesMut};

    #[test]
    fn roundtrip_le() {
        let mut w = BytesMut::with_capacity(15);
        w.put_u8(0xAB);
        w.put_u16_le(0xBEEF);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(0x0123_4567_89AB_CDEF);
        let mut r = w.freeze();
        assert_eq!(r.remaining(), 15);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 0x0123_4567_89AB_CDEF);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.slice(..3);
        assert_eq!(head.as_slice(), &[1, 2, 3]);
        let mid = b.slice(1..4);
        assert_eq!(mid.as_slice(), &[2, 3, 4]);
        assert_eq!(b.len(), 5, "source unaffected");
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn read_past_end_panics() {
        let mut b = Bytes::from(vec![1]);
        let _ = b.get_u32_le();
    }

    #[test]
    fn sentinel_is_empty() {
        assert!(Bytes::new().is_empty());
        assert!(!Bytes::from_static(b"garbage").is_empty());
    }
}
