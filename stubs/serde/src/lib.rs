//! Offline stand-in for `serde`.
//!
//! The workspace only ever writes `#[derive(Serialize, Deserialize)]` on
//! plain data types — all actual JSON in the repo is hand-rolled
//! (`slimstart-core/src/export.rs`, `slimstart-fleet/src/report.rs`) so no
//! code is generic over these traits. The derives expand to nothing and
//! the traits are inert markers, which keeps the annotated sources
//! compatible with real serde should the registry ever become reachable.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}
