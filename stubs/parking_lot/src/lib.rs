//! Offline stand-in for `parking_lot`, backed by `std::sync::Mutex`.
//!
//! Matches the pieces of parking_lot's API the workspace relies on:
//! `lock()` returns the guard directly (no `Result`) and a poisoned
//! mutex is transparently recovered — parking_lot has no poisoning, so
//! recovering is the faithful translation.

use std::fmt;
use std::sync::PoisonError;

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Arc::new(Mutex::new(0usize));
        {
            *m.lock() += 5;
        }
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0usize));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 400);
    }
}
