//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the thin slice of `rand` 0.8 it actually touches
//! (see `slimstart-simcore/src/rng.rs`): `StdRng::seed_from_u64`, the
//! [`RngCore`] raw-word interface, and `Rng::{gen::<f64>, gen_range}`
//! over `usize`/`f64` ranges.
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — a different
//! stream than upstream's ChaCha12, but the repo's determinism contract
//! is "same seed → same results for *this* build", never "matches
//! upstream rand", and no test encodes golden RNG values.

/// The raw-word generator interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from the "standard" distribution (`rng.gen::<T>()`).
pub trait StandardSample {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` from the top 53 bits, matching upstream's
    /// `Standard` distribution construction for `f64`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<usize> for core::ops::Range<usize> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = (self.end - self.start) as u64;
        // Debiased multiply-shift (Lemire); span is tiny relative to 2^64
        // so the rejection loop virtually never spins.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return self.start + (v % span) as usize;
            }
        }
    }
}

impl SampleRange<u64> for core::ops::Range<u64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end - self.start;
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = rng.next_u64();
            if v <= zone {
                return self.start + v % span;
            }
        }
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = f64::sample(rng);
        self.start + unit * (self.end - self.start)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; state is
    /// expanded from the `u64` seed with SplitMix64 per the authors'
    /// recommendation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let i = rng.gen_range(0usize..10);
            seen[i] = true;
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }
}
