//! Offline stand-in for the `fxhash` crate.
//!
//! Implements the rustc "FxHash" multiply-rotate hash: a seedless,
//! deterministic, non-cryptographic hasher. The same bytes hash to the
//! same value on every run, on every thread, on every platform with the
//! same pointer width — which is exactly what slimstart's determinism
//! contract needs from its hot-path hash maps (the std `RandomState`
//! hasher is per-process randomized and an order of magnitude slower for
//! the small fixed-width keys the CCT and interner use).
//!
//! Only the surface the workspace uses is provided: [`FxHasher`],
//! [`FxBuildHasher`], the [`FxHashMap`]/[`FxHashSet`] aliases, and the
//! [`hash64`] convenience function.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// Multiplicative constant from the rustc implementation (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;
/// Builds [`FxHasher`]s; zero-sized and `Default`, so maps need no seed.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The rustc FxHash state: one word, mixed by rotate-xor-multiply.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let mut word = [0u8; 8];
            word.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(word));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add_to_hash(n as u64);
        self.add_to_hash((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_i8(&mut self, n: i8) {
        self.add_to_hash(n as u8 as u64);
    }

    #[inline]
    fn write_i16(&mut self, n: i16) {
        self.add_to_hash(n as u16 as u64);
    }

    #[inline]
    fn write_i32(&mut self, n: i32) {
        self.add_to_hash(n as u32 as u64);
    }

    #[inline]
    fn write_i64(&mut self, n: i64) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_isize(&mut self, n: isize) {
        self.add_to_hash(n as usize as u64);
    }
}

/// Hashes `value` with a fresh [`FxHasher`] — a deterministic one-shot hash.
#[inline]
pub fn hash64<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_inputs_hash_identically() {
        assert_eq!(hash64("slimstart"), hash64("slimstart"));
        assert_eq!(hash64(&42u64), hash64(&42u64));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(hash64("a"), hash64("b"));
        assert_ne!(hash64(&1u64), hash64(&2u64));
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        // BuildHasherDefault carries no per-instance state, so two maps
        // agree on bucket placement — the property the interner relies on.
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        "module.name".hash(&mut a);
        "module.name".hash(&mut b);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn unaligned_tail_contributes() {
        assert_ne!(hash64("12345678"), hash64("123456789"));
        assert_ne!(hash64("123456789"), hash64("12345678A"));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("x", 1);
        assert_eq!(m.get("x"), Some(&1));
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
