//! Static call-graph reachability from all entry points.

use std::collections::VecDeque;

use slimstart_appmodel::{Application, CallKind, FunctionId, LibraryId};

/// The result of static reachability analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticAnalysis {
    /// Whether each function (by index) is reachable from some handler.
    pub reachable_functions: Vec<bool>,
    /// Libraries pinned wholesale because an indirect call site targets
    /// them (conservative treatment of dynamic dispatch).
    pub pinned_libraries: Vec<bool>,
}

impl StaticAnalysis {
    /// Runs the analysis over `app`, rooting at every handler — static
    /// analysis cannot know which entry points the workload actually uses
    /// (the paper's central observation).
    pub fn analyze(app: &Application) -> StaticAnalysis {
        let roots: Vec<FunctionId> = app.handlers().iter().map(|h| h.function()).collect();
        StaticAnalysis::analyze_from(app, &roots)
    }

    /// Runs the analysis rooted at a single entry function — the
    /// per-handler view the anti-pattern lints need to ask "does *this*
    /// entry point reach that package?", which the all-handlers union
    /// cannot answer.
    pub fn analyze_entry(app: &Application, entry: FunctionId) -> StaticAnalysis {
        StaticAnalysis::analyze_from(app, &[entry])
    }

    /// Runs the analysis from an explicit set of entry functions.
    pub fn analyze_from(app: &Application, roots: &[FunctionId]) -> StaticAnalysis {
        let call_graph = app.static_call_graph();
        let mut reachable = vec![false; app.functions().len()];
        let mut pinned = vec![false; app.libraries().len()];
        let mut queue: VecDeque<FunctionId> = VecDeque::new();

        for &f in roots {
            if !reachable[f.index()] {
                reachable[f.index()] = true;
                queue.push_back(f);
            }
        }

        // BFS over the precomputed adjacency.
        while let Some(f) = queue.pop_front() {
            for &t in &call_graph[f.index()] {
                if !reachable[t.index()] {
                    reachable[t.index()] = true;
                    queue.push_back(t);
                }
            }
        }

        // Indirect sites in *reachable* functions pin the callee's whole
        // library (conservative treatment of dynamic dispatch).
        for (i, is_reachable) in reachable.iter().enumerate() {
            if !is_reachable {
                continue;
            }
            for site in app.function(FunctionId::from_index(i)).call_sites() {
                if site.kind == CallKind::Indirect {
                    let callee_module = app.function(site.target).module();
                    if let Some(lib) = app.module(callee_module).library() {
                        pinned[lib.index()] = true;
                    }
                }
            }
        }

        StaticAnalysis {
            reachable_functions: reachable,
            pinned_libraries: pinned,
        }
    }

    /// Whether function `f` is reachable from some entry point.
    pub fn is_reachable(&self, f: FunctionId) -> bool {
        self.reachable_functions[f.index()]
    }

    /// Whether `lib` was pinned wholesale by an indirect call.
    pub fn is_pinned(&self, lib: LibraryId) -> bool {
        self.pinned_libraries[lib.index()]
    }

    /// Number of reachable functions.
    pub fn reachable_count(&self) -> usize {
        self.reachable_functions.iter().filter(|r| **r).count()
    }

    /// Whether any reachable function is defined in — or touches a module
    /// of — the dotted `package` subtree. Combined with
    /// [`StaticAnalysis::analyze_entry`] this answers the init-in-handler
    /// question: an entry point that statically uses a deferred package
    /// will pay its lazy load inside the request on every fresh container.
    pub fn uses_package(&self, app: &Application, package: &str) -> bool {
        self.reachable_functions
            .iter()
            .enumerate()
            .filter(|(_, r)| **r)
            .any(|(i, _)| {
                let f = app.function(FunctionId::from_index(i));
                app.module(f.module()).in_package(package)
                    || f.touched_modules()
                        .iter()
                        .any(|m| app.module(*m).in_package(package))
            })
    }
}

/// How many of `app`'s handlers statically reach the dotted `package` —
/// the call-graph query behind the init-in-handler lint (all handlers
/// reaching a deferred package means its lazy load is on every cold path).
pub fn handlers_reaching_package(app: &Application, package: &str) -> usize {
    app.handlers()
        .iter()
        .filter(|h| StaticAnalysis::analyze_entry(app, h.function()).uses_package(app, package))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::app::AppBuilder;
    use slimstart_appmodel::function::{Stmt, StmtKind};
    use slimstart_simcore::time::SimDuration;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    /// handler calls hot directly; admin handler calls wdead; nothing calls
    /// sdead; an indirect call targets ext.
    fn app() -> Application {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let ext = b.add_library("ext");
        let h = b.add_app_module("handler", ms(1), 0);
        let hot = b.add_library_module("lib.hot", ms(1), 0, false, lib);
        let wdead = b.add_library_module("lib.wdead", ms(1), 0, false, lib);
        let sdead = b.add_library_module("lib.sdead", ms(1), 0, false, lib);
        let extm = b.add_library_module("ext", ms(1), 0, false, ext);
        let f_hot = b.add_function("hot_fn", hot, 5, vec![]);
        let f_wdead = b.add_function("wdead_fn", wdead, 5, vec![]);
        let _f_sdead = b.add_function("sdead_fn", sdead, 5, vec![]);
        let f_ext = b.add_function("ext_fn", extm, 5, vec![]);
        let f_main = b.add_function(
            "main",
            h,
            4,
            vec![
                Stmt {
                    line: 5,
                    kind: StmtKind::call(f_hot),
                },
                Stmt {
                    line: 6,
                    kind: StmtKind::Branch {
                        probability: 0.001,
                        body: vec![Stmt {
                            line: 7,
                            kind: StmtKind::indirect_call(f_ext),
                        }],
                    },
                },
            ],
        );
        let f_admin = b.add_function(
            "admin",
            h,
            20,
            vec![Stmt {
                line: 21,
                kind: StmtKind::call(f_wdead),
            }],
        );
        b.add_handler("main", f_main);
        b.add_handler("admin", f_admin);
        b.finish().unwrap()
    }

    #[test]
    fn all_handlers_are_roots() {
        let app = app();
        let a = StaticAnalysis::analyze(&app);
        // Every function except sdead_fn is reachable: main, admin, hot_fn,
        // wdead_fn (via the never-invoked admin handler!), ext_fn.
        assert_eq!(a.reachable_count(), app.functions().len() - 1);
        let sdead_fn = (0..app.functions().len())
            .map(FunctionId::from_index)
            .find(|f| app.function(*f).name() == "sdead_fn")
            .unwrap();
        assert!(!a.is_reachable(sdead_fn));
    }

    #[test]
    fn branches_are_statically_taken() {
        let app = app();
        let a = StaticAnalysis::analyze(&app);
        let ext_fn = (0..app.functions().len())
            .map(FunctionId::from_index)
            .find(|f| app.function(*f).name() == "ext_fn")
            .unwrap();
        // The 0.1 %-probability branch still counts.
        assert!(a.is_reachable(ext_fn));
    }

    #[test]
    fn indirect_calls_pin_their_library() {
        let app = app();
        let a = StaticAnalysis::analyze(&app);
        assert!(a.is_pinned(LibraryId::from_index(1))); // ext
        assert!(!a.is_pinned(LibraryId::from_index(0))); // lib (direct calls only)
    }

    #[test]
    fn per_entry_analysis_sees_only_that_handlers_world() {
        let app = app();
        let main = app.handlers()[0].function();
        let admin = app.handlers()[1].function();
        let from_main = StaticAnalysis::analyze_entry(&app, main);
        let from_admin = StaticAnalysis::analyze_entry(&app, admin);
        assert!(from_main.uses_package(&app, "lib.hot"));
        assert!(!from_main.uses_package(&app, "lib.wdead"));
        assert!(from_admin.uses_package(&app, "lib.wdead"));
        assert!(!from_admin.uses_package(&app, "ext"));
        // The union (analyze) reaches both.
        let union = StaticAnalysis::analyze(&app);
        assert!(union.uses_package(&app, "lib.hot"));
        assert!(union.uses_package(&app, "lib.wdead"));
        assert!(!union.uses_package(&app, "lib.sdead"));
    }

    #[test]
    fn handlers_reaching_package_counts_entries() {
        let app = app();
        assert_eq!(handlers_reaching_package(&app, "lib.hot"), 1);
        assert_eq!(handlers_reaching_package(&app, "lib.wdead"), 1);
        assert_eq!(handlers_reaching_package(&app, "lib"), 2);
        assert_eq!(handlers_reaching_package(&app, "lib.sdead"), 0);
    }
}
