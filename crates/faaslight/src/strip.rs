//! Package stripping: FaaSLight's unreachable-code elimination.
//!
//! A library (or one of its depth-2 sub-packages) is removed from the
//! deployment package when **no** function in its subtree is statically
//! reachable, it is not pinned by an indirect call, and it contains no
//! side-effectful module. Removed modules are marked *stripped*: the loader
//! skips them entirely (no init cost, no memory), and any runtime call into
//! them faults — which is why the analysis must stay conservative.

use slimstart_appmodel::{Application, FunctionId, LibraryId};
use slimstart_simcore::time::SimDuration;

use crate::reachability::StaticAnalysis;

/// The result of static slimming.
#[derive(Debug, Clone)]
pub struct StrippedApp {
    /// The slimmed application (input left untouched).
    pub app: Application,
    /// Dotted paths of removed packages.
    pub stripped_packages: Vec<String>,
    /// Total initialization cost removed from the eager path.
    pub removed_init: SimDuration,
    /// Total memory removed, KiB.
    pub removed_mem_kb: u64,
}

impl StrippedApp {
    /// Number of modules removed.
    pub fn stripped_module_count(&self) -> usize {
        self.app.modules().iter().filter(|m| m.stripped()).count()
    }
}

/// Applies FaaSLight-style slimming to a copy of `app`.
///
/// # Example
///
/// Static analysis removes the truly unreachable package but must keep the
/// workload-dead one (it is reachable from the never-invoked admin
/// handler) — the gap SlimStart closes:
///
/// ```
/// use slimstart_appmodel::catalog::by_code;
/// use slimstart_faaslight::strip_unreachable;
///
/// let built = by_code("R-GB").expect("catalog entry").build(7)?;
/// let out = strip_unreachable(&built.app);
/// assert!(out.stripped_packages.iter().any(|p| p == "igraph.compat"));
/// assert!(!out.stripped_packages.iter().any(|p| p.contains("drawing")));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn strip_unreachable(app: &Application) -> StrippedApp {
    let analysis = StaticAnalysis::analyze(app);
    let tree = app.package_tree();
    let by_module = app.functions_by_module();

    // Modules touched (attribute access) by any statically reachable
    // function must survive: stripping them would break `lib.CONSTANT`.
    let mut touched = vec![false; app.modules().len()];
    for (i, f) in app.functions().iter().enumerate() {
        if analysis.is_reachable(slimstart_appmodel::FunctionId::from_index(i)) {
            for m in f.touched_modules() {
                touched[m.index()] = true;
            }
        }
    }

    let mut slimmed = app.clone();
    let mut stripped_packages = Vec::new();
    let mut removed_init = SimDuration::ZERO;
    let mut removed_mem_kb = 0u64;

    let subtree_strippable = |package: &str, library: LibraryId| -> bool {
        if analysis.is_pinned(library) {
            return false;
        }
        let modules = tree.modules_under(package);
        if modules.is_empty() {
            return false;
        }
        for m in &modules {
            if app.module(*m).side_effectful() || touched[m.index()] {
                return false;
            }
            for f in &by_module[m.index()] {
                if analysis.is_reachable(*f) {
                    return false;
                }
            }
        }
        true
    };

    for (i, lib) in app.libraries().iter().enumerate() {
        let id = LibraryId::from_index(i);
        let candidates: Vec<String> = if subtree_strippable(lib.name(), id) {
            vec![lib.name().to_string()]
        } else {
            tree.node(lib.name())
                .map(|node| {
                    node.children
                        .iter()
                        .filter(|child| subtree_strippable(child, id))
                        .cloned()
                        .collect()
                })
                .unwrap_or_default()
        };
        for package in candidates {
            for m in tree.modules_under(&package) {
                let module = slimmed.module_mut(m);
                if !module.stripped() {
                    removed_init += module.init_cost();
                    removed_mem_kb += module.mem_kb();
                    module.set_stripped(true);
                }
            }
            stripped_packages.push(package);
        }
    }

    StrippedApp {
        app: slimmed,
        stripped_packages,
        removed_init,
        removed_mem_kb,
    }
}

/// Convenience: the set of functions defined in stripped modules (used by
/// safety tests).
pub fn functions_in_stripped(app: &Application) -> Vec<FunctionId> {
    app.functions()
        .iter()
        .enumerate()
        .filter(|(_, f)| app.module(f.module()).stripped())
        .map(|(i, _)| FunctionId::from_index(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::app::AppBuilder;
    use slimstart_appmodel::catalog::by_code;
    use slimstart_appmodel::function::{Stmt, StmtKind};
    use slimstart_appmodel::imports::ImportMode;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    fn app() -> Application {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 10);
        let root = b.add_library_module("lib", ms(1), 10, false, lib);
        let hot = b.add_library_module("lib.hot", ms(10), 100, false, lib);
        let sdead = b.add_library_module("lib.sdead", ms(50), 500, false, lib);
        let sdead_leaf = b.add_library_module("lib.sdead.leaf", ms(5), 50, false, lib);
        let sfx = b.add_library_module("lib.sfx", ms(20), 200, true, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        b.add_import(root, hot, 2, ImportMode::Global).unwrap();
        b.add_import(root, sdead, 3, ImportMode::Global).unwrap();
        b.add_import(sdead, sdead_leaf, 2, ImportMode::Global)
            .unwrap();
        b.add_import(root, sfx, 4, ImportMode::Global).unwrap();
        let f_hot = b.add_function("hot_fn", hot, 5, vec![]);
        let _f_dead = b.add_function("dead_fn", sdead, 5, vec![]);
        let f = b.add_function(
            "main",
            h,
            4,
            vec![Stmt {
                line: 5,
                kind: StmtKind::call(f_hot),
            }],
        );
        b.add_handler("main", f);
        b.finish().unwrap()
    }

    #[test]
    fn strips_unreachable_subpackage_with_costs() {
        let app = app();
        let out = strip_unreachable(&app);
        assert_eq!(out.stripped_packages, vec!["lib.sdead".to_string()]);
        assert_eq!(out.stripped_module_count(), 2); // sdead + leaf
        assert_eq!(out.removed_init, ms(55));
        assert_eq!(out.removed_mem_kb, 550);
    }

    #[test]
    fn side_effectful_package_is_never_stripped() {
        let app = app();
        let out = strip_unreachable(&app);
        let sfx = out.app.module_by_name("lib.sfx").unwrap();
        assert!(!out.app.module(sfx).stripped());
    }

    #[test]
    fn eager_init_drops_by_removed_amount() {
        let app = app();
        let h = app.module_by_name("handler").unwrap();
        let before = app.eager_init_cost(h);
        let out = strip_unreachable(&app);
        let after = out.app.eager_init_cost(h);
        assert_eq!(before - after, out.removed_init);
    }

    #[test]
    fn stripped_app_runs_without_faults() {
        use slimstart_pyrt::process::Process;
        use slimstart_simcore::rng::SimRng;
        use std::sync::Arc;

        let app = app();
        let out = strip_unreachable(&app);
        let arc = Arc::new(out.app);
        let mut p = Process::new(Arc::clone(&arc), 1.0);
        let root = arc.module_by_name("handler").unwrap();
        p.cold_start(root).unwrap();
        let h = arc.handler_by_name("main").unwrap();
        assert!(p.invoke(h, &mut SimRng::seed_from(1)).is_ok());
    }

    #[test]
    fn original_app_is_untouched() {
        let app = app();
        let _ = strip_unreachable(&app);
        assert!(app.modules().iter().all(|m| !m.stripped()));
    }

    #[test]
    fn catalog_apps_strip_their_static_dead_share() {
        // R-GB declares 12 % of init as statically dead; FaaSLight should
        // remove roughly that share and nothing that the workload needs.
        let entry = by_code("R-GB").unwrap();
        let built = entry.build(11).unwrap();
        let h = built.app.module_by_name("handler").unwrap();
        let before = built.app.eager_init_cost(h);
        let out = strip_unreachable(&built.app);
        let frac = out.removed_init.ratio(before);
        assert!(
            (0.08..0.18).contains(&frac),
            "stripped fraction = {frac:.3}"
        );
        assert!(out.stripped_packages.iter().any(|p| p == "igraph.compat"));
        // Workload-dead and rare packages must survive static analysis.
        assert!(!out.stripped_packages.iter().any(|p| p.contains("drawing")));
        assert!(!out.stripped_packages.iter().any(|p| p.contains("xmlio")));
    }

    #[test]
    fn touched_modules_survive_stripping() {
        // A package with no reachable *functions* but whose constants are
        // read by the handler must be kept.
        use slimstart_appmodel::function::{Stmt, StmtKind};
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 0);
        let root = b.add_library_module("lib", ms(1), 0, false, lib);
        let consts = b.add_library_module("lib.consts", ms(30), 0, false, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        b.add_import(root, consts, 2, ImportMode::Global).unwrap();
        let f = b.add_function(
            "main",
            h,
            4,
            vec![Stmt {
                line: 5,
                kind: StmtKind::Touch(consts),
            }],
        );
        b.add_handler("main", f);
        let app = b.finish().unwrap();
        let out = strip_unreachable(&app);
        assert!(out.stripped_packages.is_empty());
        assert!(!out.app.module(consts).stripped());
    }

    #[test]
    fn functions_in_stripped_reports_dead_functions() {
        let app = app();
        let out = strip_unreachable(&app);
        let dead = functions_in_stripped(&out.app);
        assert_eq!(dead.len(), 1);
        assert_eq!(out.app.function(dead[0]).name(), "dead_fn");
    }
}
