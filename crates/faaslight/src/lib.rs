//! # slimstart-faaslight
//!
//! A FaaSLight-style **static analysis** baseline (Liu et al., TOSEM 2023 —
//! the paper's reference 13).
//!
//! FaaSLight builds a static call graph from *every* entry function and
//! removes code that is unreachable from any of them. Because it cannot see
//! the workload, it must keep anything *some* entry point might need — which
//! is exactly the gap SlimStart exploits (paper Observation 2): libraries
//! reachable only from rarely- or never-invoked handlers, or behind
//! low-probability branches, survive static slimming and keep inflating cold
//! starts.
//!
//! The analysis here is conservative in the same ways:
//!
//! * branches are assumed taken (statically *possible* calls count);
//! * indirect call sites (dispatch tables, callbacks) retain the *entire*
//!   target library, since the precise callee set is undecidable;
//! * side-effectful modules are never stripped;
//! * stripping is package-granular: a sub-package is removed only when no
//!   function in its subtree is reachable.

pub mod reachability;
pub mod strip;

pub use reachability::{handlers_reaching_package, StaticAnalysis};
pub use strip::{strip_unreachable, StrippedApp};
