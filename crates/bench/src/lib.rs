//! # slimstart-bench
//!
//! Shared support for the experiment harness. Each `benches/*.rs` target
//! regenerates one table or figure of the paper; this library holds the
//! common runners and text-table rendering they share.
//!
//! Environment knobs (all optional):
//!
//! * `SLIMSTART_COLD_STARTS` — cold starts per measurement run
//!   (default 500, the paper's methodology);
//! * `SLIMSTART_SEED` — experiment seed (default 2025);
//! * `SLIMSTART_RUNS` — measurement runs averaged per application
//!   (default 1; the paper averages five);
//! * `SLIMSTART_THREADS` — fleet worker threads (default: available
//!   parallelism; never changes results, only wall-clock).

pub mod hotpath;
pub mod runner;
pub mod table;

pub use hotpath::{validate_json, BenchConfig, BenchReport};
pub use runner::{
    cold_starts, run_catalog_app, run_catalog_app_averaged, run_fleet, runs, seed, threads,
    ExperimentRun,
};
pub use table::TextTable;
