//! Minimal fixed-width text tables for experiment output.

/// A simple left-padded text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != header arity {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as the paper's `1.71x` style.
pub fn times(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["App", "Speedup"]);
        t.row(vec!["R-DV", "2.30x"]);
        t.row(vec!["graph-bfs", "1.71x"]);
        let s = t.render();
        assert!(s.contains("App        Speedup"));
        assert!(s.contains("graph-bfs  1.71x"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        TextTable::new(vec!["a", "b"]).row(vec!["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(times(1.714), "1.71x");
        assert_eq!(pct(0.123), "12.3%");
    }
}
