//! Shared experiment runners.

use slimstart_appmodel::catalog::CatalogApp;
use slimstart_core::pipeline::{Pipeline, PipelineConfig, PipelineOutcome};
use slimstart_fleet::{FleetConfig, FleetOrchestrator, FleetReport, FleetRunStats};
use slimstart_platform::metrics::Speedup;

/// Cold starts per measurement run (`SLIMSTART_COLD_STARTS`, default 500 —
/// the paper's methodology).
pub fn cold_starts() -> usize {
    std::env::var("SLIMSTART_COLD_STARTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500)
}

/// Experiment seed (`SLIMSTART_SEED`, default 2025).
pub fn seed() -> u64 {
    std::env::var("SLIMSTART_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2025)
}

/// Iterative measurement runs to average (`SLIMSTART_RUNS`, default 1;
/// the paper's methodology averages five).
pub fn runs() -> usize {
    std::env::var("SLIMSTART_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|n| *n > 0)
        .unwrap_or(1)
}

/// Fleet worker threads (`SLIMSTART_THREADS`, default: the machine's
/// available parallelism). Thread count never changes results — only how
/// fast they arrive.
pub fn threads() -> usize {
    std::env::var("SLIMSTART_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|n| *n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Runs the fleet orchestrator over `apps` applications with every
/// `SLIMSTART_*` environment knob honored (`SLIMSTART_COLD_STARTS`,
/// `SLIMSTART_SEED`, `SLIMSTART_RUNS`, `SLIMSTART_THREADS`).
///
/// # Panics
///
/// Panics on blueprint or pipeline failure — experiment harnesses treat
/// those as fatal.
pub fn run_fleet(apps: usize) -> (FleetReport, FleetRunStats) {
    let config = FleetConfig::default()
        .with_apps(apps)
        .with_threads(threads())
        .with_seed(seed())
        .with_cold_starts(cold_starts())
        .with_runs(runs());
    FleetOrchestrator::new(config)
        .run()
        .unwrap_or_else(|e| panic!("fleet run failed: {e}"))
}

/// One catalog app's pipeline outcome plus its identity.
#[derive(Debug)]
pub struct ExperimentRun {
    /// The catalog entry.
    pub entry: CatalogApp,
    /// The full pipeline outcome.
    pub outcome: PipelineOutcome,
}

/// Runs the full SlimStart pipeline for one catalog application.
///
/// # Panics
///
/// Panics on workload errors or runtime faults — experiment harnesses treat
/// those as fatal.
pub fn run_catalog_app(entry: &CatalogApp, cold_starts: usize, seed: u64) -> ExperimentRun {
    let built = entry
        .build(seed)
        .unwrap_or_else(|e| panic!("{}: blueprint failed: {e}", entry.code));
    let config = PipelineConfig {
        cold_starts,
        seed,
        ..PipelineConfig::default()
    };
    let outcome = Pipeline::new(config)
        .run(&built.app, &entry.workload_weights())
        .unwrap_or_else(|e| panic!("{}: pipeline failed: {e}", entry.code));
    ExperimentRun {
        entry: entry.clone(),
        outcome,
    }
}

/// Runs the pipeline `runs` times with derived seeds and returns the last
/// run plus the field-wise mean speedup — the paper's "results are averaged
/// over five iterative runs" methodology.
///
/// # Panics
///
/// Panics if `runs` is zero, or on pipeline failure.
pub fn run_catalog_app_averaged(
    entry: &CatalogApp,
    cold_starts: usize,
    base_seed: u64,
    runs: usize,
) -> (ExperimentRun, Speedup) {
    assert!(runs > 0, "need at least one run");
    let mut speedups: Vec<Speedup> = Vec::with_capacity(runs);
    let mut last = None;
    for i in 0..runs {
        let run = run_catalog_app(entry, cold_starts, base_seed.wrapping_add(i as u64 * 7919));
        speedups.push(run.outcome.speedup);
        last = Some(run);
    }
    let n = runs as f64;
    let mean = Speedup {
        init: speedups.iter().map(|s| s.init).sum::<f64>() / n,
        load: speedups.iter().map(|s| s.load).sum::<f64>() / n,
        e2e: speedups.iter().map(|s| s.e2e).sum::<f64>() / n,
        p99_init: speedups.iter().map(|s| s.p99_init).sum::<f64>() / n,
        p99_load: speedups.iter().map(|s| s.p99_load).sum::<f64>() / n,
        p99_e2e: speedups.iter().map(|s| s.p99_e2e).sum::<f64>() / n,
        mem: speedups.iter().map(|s| s.mem).sum::<f64>() / n,
    };
    (last.expect("runs > 0"), mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::catalog::by_code;

    #[test]
    fn env_defaults() {
        // Not set in the test environment.
        assert_eq!(cold_starts(), 500);
        assert_eq!(seed(), 2025);
    }

    #[test]
    fn runs_a_catalog_entry() {
        let entry = by_code("R-GB").unwrap();
        let run = run_catalog_app(&entry, 20, 1);
        assert_eq!(run.entry.code, "R-GB");
        assert!(run.outcome.speedup.init > 1.0);
    }

    #[test]
    fn averaging_across_runs() {
        let entry = by_code("R-GB").unwrap();
        let (last, mean) = run_catalog_app_averaged(&entry, 15, 1, 2);
        assert_eq!(last.entry.code, "R-GB");
        assert!(mean.load > 1.0);
        assert!(mean.e2e > 1.0);
    }
}
