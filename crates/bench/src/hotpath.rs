//! The `slimstart bench` hot-path harness.
//!
//! Wall-clock micro-benchmarks for the profiler's hot paths, each measuring
//! the **legacy** implementation (retained in-tree precisely so it can be
//! raced) against the **current** one *in the same process and run*:
//!
//! * **sampler** — per-sample stack capture: the legacy `Vec<Frame>` clone
//!   ([`CallStack::snapshot`]) vs the fingerprint-gated
//!   [`CaptureCache`](slimstart_core::sampler::CaptureCache) that reuses one
//!   `Arc<[Frame]>` allocation across identical stacks.
//! * **cct_merge** — merging one calling-context tree into another: the
//!   retained [`ReferenceCct`](slimstart_core::cct::reference::ReferenceCct)
//!   (per-sample re-insertion through a `HashMap` index) vs the arena
//!   [`Cct`](slimstart_core::Cct) (`insert_weighted` per node, fast-hash
//!   child index).
//! * **cold_start** — a full process cold start: building the import-closure
//!   [`LoaderPlan`](slimstart_pyrt::loader::LoaderPlan) per process
//!   ([`Process::new`]) vs sharing one prebuilt plan across processes
//!   ([`Process::with_plan`]), as the platform does per deployment.
//! * **fleet** — end-to-end throughput: a small fleet run reporting
//!   applications optimized per wall-clock second.
//!
//! The numbers land in a hand-rolled JSON document (same writer idiom as the
//! fleet report) that `ci.sh` round-trips through [`validate_json`] in
//! `--smoke` mode. Wall-clock timing is inherently machine-dependent; the
//! per-op ratios are the stable signal.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use slimstart_appmodel::catalog::by_code;
use slimstart_appmodel::Application;
use slimstart_core::cct::reference::ReferenceCct;
use slimstart_core::profile::SampleRecord;
use slimstart_core::sampler::CaptureCache;
use slimstart_core::Cct;
use slimstart_fleet::{FleetConfig, FleetOrchestrator};
use slimstart_pyrt::loader::LoaderPlan;
use slimstart_pyrt::process::Process;
use slimstart_pyrt::stack::{CallStack, Frame, FrameKind};
use slimstart_simcore::rng::SimRng;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Smoke mode: tiny iteration counts, suitable for CI (validates that
    /// the harness runs and emits well-formed JSON, not that numbers are
    /// stable).
    pub smoke: bool,
    /// Seed for the synthetic sample streams and the fleet run.
    pub seed: u64,
    /// Fleet worker threads.
    pub threads: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            smoke: false,
            seed: 2025,
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

/// One legacy-vs-current comparison.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// Mean ns/op of the legacy implementation.
    pub legacy_ns: f64,
    /// Mean ns/op of the current implementation.
    pub current_ns: f64,
    /// Iterations measured per variant.
    pub iters: u64,
}

impl Comparison {
    /// legacy / current — how many times faster the current path is.
    pub fn speedup(&self) -> f64 {
        if self.current_ns > 0.0 {
            self.legacy_ns / self.current_ns
        } else {
            f64::INFINITY
        }
    }
}

/// The harness result.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Config echo: smoke mode.
    pub smoke: bool,
    /// Config echo: seed.
    pub seed: u64,
    /// Per-sample stack capture.
    pub sampler: Comparison,
    /// CCT merge.
    pub cct_merge: Comparison,
    /// Process cold start (per-process plan vs shared plan).
    pub cold_start: Comparison,
    /// Fleet apps optimized per wall-clock second.
    pub fleet_apps_per_second: f64,
    /// Fleet size used for the throughput figure.
    pub fleet_apps: usize,
    /// Fleet worker threads used.
    pub fleet_threads: usize,
}

/// Times `op` over `iters` iterations (after one warm-up call) and returns
/// the mean ns/op.
fn time_ns<T>(iters: u64, mut op: impl FnMut() -> T) -> f64 {
    black_box(op());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(op());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// A plausibly-deep production stack: module init at the bottom, a chain of
/// calls above, as the sampler sees during a sampled cold start.
fn bench_stack() -> CallStack {
    let mut stack = CallStack::new();
    stack.push(
        FrameKind::ModuleInit(slimstart_appmodel::ModuleId::from_index(0)),
        1,
    );
    for i in 0..11 {
        stack.push(
            FrameKind::Call(slimstart_appmodel::FunctionId::from_index(i)),
            10 + i as u32,
        );
    }
    stack
}

fn bench_sampler(iters: u64) -> Comparison {
    let stack = bench_stack();
    // Legacy: every sample cloned the live stack into a fresh Vec.
    let legacy_ns = time_ns(iters, || {
        let path: Arc<[Frame]> = stack.snapshot().into();
        path
    });
    // Current: identical stacks hit the fingerprint fast path and share one
    // allocation.
    let mut cache = CaptureCache::new();
    let current_ns = time_ns(iters, || cache.capture(&stack));
    Comparison {
        legacy_ns,
        current_ns,
        iters,
    }
}

/// Synthesizes a sample stream shaped like a real profile: few distinct
/// call sites, moderate depth, heavy repetition.
fn synth_samples(n: usize, seed: u64) -> Vec<SampleRecord> {
    let mut rng = SimRng::seed_from(seed);
    let sites: Vec<Frame> = (0..48)
        .map(|i| Frame {
            kind: FrameKind::Call(slimstart_appmodel::FunctionId::from_index(i)),
            line: 10 + (i % 5) as u32,
        })
        .collect();
    (0..n)
        .map(|_| {
            let depth = 3 + rng.next_below(6);
            let path: Vec<Frame> = (0..depth)
                .map(|d| sites[(d * 5 + rng.next_below(6)) % sites.len()])
                .collect();
            SampleRecord {
                path: path.into(),
                is_init: rng.chance(0.3),
            }
        })
        .collect()
}

fn bench_cct_merge(samples: usize, iters: u64, seed: u64) -> Comparison {
    let left = synth_samples(samples, seed);
    let right = synth_samples(samples, seed ^ 0x5eed);

    let mut ref_a = ReferenceCct::new();
    let mut ref_b = ReferenceCct::new();
    let mut cur_a = Cct::new();
    let mut cur_b = Cct::new();
    for s in &left {
        ref_a.insert(&s.path, s.is_init);
        cur_a.insert(&s.path, s.is_init);
    }
    for s in &right {
        ref_b.insert(&s.path, s.is_init);
        cur_b.insert(&s.path, s.is_init);
    }

    let legacy_ns = time_ns(iters, || {
        let mut merged = ref_a.clone();
        merged.merge(&ref_b);
        merged.total_samples()
    });
    let current_ns = time_ns(iters, || {
        let mut merged = cur_a.clone();
        merged.merge(&cur_b);
        merged.total_samples()
    });
    Comparison {
        legacy_ns,
        current_ns,
        iters,
    }
}

fn bench_cold_start(iters: u64, seed: u64) -> Comparison {
    let built = by_code("R-GB")
        .expect("catalog entry R-GB exists")
        .build(seed)
        .expect("catalog app builds");
    let app: Arc<Application> = Arc::new(built.app);
    let root = built.app_module;

    // Legacy: every process analyzed the import graph afresh.
    let legacy_app = Arc::clone(&app);
    let legacy_ns = time_ns(iters, move || {
        let mut proc = Process::new(Arc::clone(&legacy_app), 1.0);
        proc.cold_start(root).expect("cold start succeeds")
    });

    // Current: the platform builds one plan per deployment and every
    // container's process shares it.
    let plan = Arc::new(LoaderPlan::build(&app));
    let current_ns = time_ns(iters, move || {
        let mut proc = Process::with_plan(Arc::clone(&app), Arc::clone(&plan), 1.0);
        proc.cold_start(root).expect("cold start succeeds")
    });
    Comparison {
        legacy_ns,
        current_ns,
        iters,
    }
}

fn bench_fleet(config: &BenchConfig) -> (f64, usize, usize) {
    let (apps, cold_starts) = if config.smoke { (2, 10) } else { (8, 120) };
    let fleet = FleetConfig::default()
        .with_apps(apps)
        .with_threads(config.threads)
        .with_seed(config.seed)
        .with_cold_starts(cold_starts);
    let (_, stats) = FleetOrchestrator::new(fleet)
        .run()
        .expect("fleet run succeeds");
    (stats.apps_per_second, apps, stats.threads)
}

/// Runs every measurement and assembles the report.
pub fn run(config: &BenchConfig) -> BenchReport {
    let (sampler_iters, merge_samples, merge_iters, cold_iters) = if config.smoke {
        (10_000, 1_000, 3, 3)
    } else {
        (400_000, 20_000, 40, 120)
    };
    let sampler = bench_sampler(sampler_iters);
    let cct_merge = bench_cct_merge(merge_samples, merge_iters, config.seed);
    let cold_start = bench_cold_start(cold_iters, config.seed);
    let (fleet_apps_per_second, fleet_apps, fleet_threads) = bench_fleet(config);
    BenchReport {
        smoke: config.smoke,
        seed: config.seed,
        sampler,
        cct_merge,
        cold_start,
        fleet_apps_per_second,
        fleet_apps,
        fleet_threads,
    }
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}")
    } else {
        "null".to_string()
    }
}

fn comparison_json(out: &mut String, key: &str, c: &Comparison) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "  \"{key}\": {{\n    \"legacy_ns_per_op\": {},\n    \"current_ns_per_op\": {},\n    \"speedup\": {},\n    \"iters\": {}\n  }}",
        num(c.legacy_ns),
        num(c.current_ns),
        num(c.speedup()),
        c.iters
    );
}

impl BenchReport {
    /// Serializes the report. Stable key order; no external serializer.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"slimstart-bench-hotpath/v1\",");
        let _ = writeln!(out, "  \"smoke\": {},", self.smoke);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        comparison_json(&mut out, "sampler", &self.sampler);
        out.push_str(",\n");
        comparison_json(&mut out, "cct_merge", &self.cct_merge);
        out.push_str(",\n");
        comparison_json(&mut out, "cold_start", &self.cold_start);
        out.push_str(",\n");
        let _ = write!(
            out,
            "  \"fleet\": {{\n    \"apps\": {},\n    \"threads\": {},\n    \"apps_per_second\": {}\n  }}\n",
            self.fleet_apps,
            self.fleet_threads,
            num(self.fleet_apps_per_second)
        );
        out.push_str("}\n");
        out
    }

    /// Human-readable summary for the terminal.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "hot-path bench (seed {}{})",
            self.seed,
            if self.smoke { ", smoke" } else { "" }
        );
        for (name, c) in [
            ("sampler capture", &self.sampler),
            ("cct merge", &self.cct_merge),
            ("cold start", &self.cold_start),
        ] {
            let _ = writeln!(
                out,
                "  {name:<16} legacy {:>10.1} ns/op   current {:>10.1} ns/op   {:>6.2}x",
                c.legacy_ns,
                c.current_ns,
                c.speedup()
            );
        }
        let _ = writeln!(
            out,
            "  {:<16} {} apps on {} thread(s): {:.2} apps/s",
            "fleet", self.fleet_apps, self.fleet_threads, self.fleet_apps_per_second
        );
        out
    }
}

/// A minimal JSON well-formedness checker (objects, arrays, strings,
/// numbers, booleans, null). `ci.sh` runs the smoke bench through this so a
/// writer regression fails the build without pulling in a JSON dependency.
///
/// # Errors
///
/// Returns a byte offset and message for the first syntax error.
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, "true"),
        Some(b'f') => parse_literal(bytes, pos, "false"),
        Some(b'n') => parse_literal(bytes, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 2; // escape plus escaped byte
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut saw_digit = false;
    while let Some(&c) = bytes.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
            saw_digit |= c.is_ascii_digit();
            *pos += 1;
        } else {
            break;
        }
    }
    if saw_digit {
        Ok(())
    } else {
        Err(format!("malformed number at byte {start}"))
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("malformed literal at byte {pos}", pos = *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_well_formed_json() {
        let config = BenchConfig {
            smoke: true,
            seed: 7,
            threads: 2,
        };
        let report = run(&config);
        validate_json(&report.to_json()).expect("report JSON is well-formed");
        assert!(report.sampler.legacy_ns > 0.0);
        assert!(report.cct_merge.current_ns > 0.0);
        assert!(report.fleet_apps_per_second > 0.0);
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate_json("{\"a\": [1, -2.5e3, true, null, \"s\\\"t\"]}").unwrap();
        validate_json("  {} ").unwrap();
        assert!(validate_json("{").is_err());
        assert!(validate_json("{\"a\": }").is_err());
        assert!(validate_json("[1, 2").is_err());
        assert!(validate_json("{} trailing").is_err());
        assert!(validate_json("nul").is_err());
        assert!(validate_json("\"open").is_err());
    }

    #[test]
    fn comparison_speedup_ratio() {
        let c = Comparison {
            legacy_ns: 100.0,
            current_ns: 25.0,
            iters: 10,
        };
        assert!((c.speedup() - 4.0).abs() < 1e-9);
    }
}
