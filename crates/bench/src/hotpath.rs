//! The `slimstart bench` hot-path harness.
//!
//! Wall-clock micro-benchmarks for the profiler's hot paths, each measuring
//! the **legacy** implementation (retained in-tree precisely so it can be
//! raced) against the **current** one *in the same process and run*:
//!
//! * **sampler** — per-sample stack capture: the legacy `Vec<Frame>` clone
//!   ([`CallStack::snapshot`]) vs the fingerprint-gated
//!   [`CaptureCache`](slimstart_core::sampler::CaptureCache) that reuses one
//!   `Arc<[Frame]>` allocation across identical stacks.
//! * **cct_merge** — merging one calling-context tree into another: the
//!   retained [`ReferenceCct`](slimstart_core::cct::reference::ReferenceCct)
//!   (per-sample re-insertion through a `HashMap` index) vs the arena
//!   [`Cct`](slimstart_core::Cct) (`insert_weighted` per node, fast-hash
//!   child index).
//! * **cold_start** — a full process cold start: building the import-closure
//!   [`LoaderPlan`](slimstart_pyrt::loader::LoaderPlan) per process
//!   ([`Process::new`]) vs sharing one prebuilt plan across processes
//!   ([`Process::with_plan`]), as the platform does per deployment.
//! * **snapshot_cold_start** — repeated same-deployment cold starts: the
//!   loader-plan replay vs restoring a memoized
//!   [`Snapshot`](slimstart_pyrt::snapshot::Snapshot), as the platform does
//!   for the second and later cold starts of a deployment.
//! * **event_queue** — a platform-shaped schedule/drain workload on the
//!   retained [`ReferenceEventQueue`](slimstart_simcore::event::reference::ReferenceEventQueue)
//!   binary heap vs the hierarchical timing-wheel
//!   [`EventQueue`](slimstart_simcore::event::EventQueue).
//! * **fleet** — end-to-end throughput: a 10k-app lightweight fleet
//!   (240 apps in smoke mode) swept over ascending worker-thread counts,
//!   reporting applications optimized per wall-clock second, the peak
//!   resident aggregate size of the streaming report path, the parallel
//!   scaling ratio, and whether the serialized `FleetReport` stayed
//!   byte-identical across every swept thread count — chaos off and on.
//!   Each app pays a recorded per-app stall (`stall_us`, the modeled
//!   collector/deploy round-trip) that workers overlap, so the sweep
//!   measures scheduler scaling honestly even on a single-core host.
//! * **dependency_sharing** — a Table-3-style grid over the heavy
//!   catalog: cold-start init latency under no optimization (baseline),
//!   import deferral alone (the optimizer's shipped deployment), zygote
//!   dependency sharing alone, and both combined. Latencies are virtual
//!   (deterministic), so this section is a modeled-cost comparison, not
//!   a wall-clock race; the gate requires sharing+deferral to beat
//!   deferral alone on both mean and p99.
//!
//! The numbers land in a hand-rolled JSON document (same writer idiom as the
//! fleet report) that `ci.sh` round-trips through [`validate_json`] in
//! `--smoke` mode. Wall-clock timing is inherently machine-dependent; the
//! per-op ratios are the stable signal.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use slimstart_appmodel::app::AppBuilder;
use slimstart_appmodel::catalog::{by_code, fleet_population, light_population};
use slimstart_appmodel::function::{Stmt, StmtKind};
use slimstart_appmodel::imports::ImportMode;
use slimstart_appmodel::Application;
use slimstart_core::cct::reference::ReferenceCct;
use slimstart_core::pipeline::{Pipeline, PipelineConfig};
use slimstart_core::profile::SampleRecord;
use slimstart_core::sampler::CaptureCache;
use slimstart_core::Cct;
use slimstart_fleet::{
    FleetConfig, FleetOrchestrator, NodeSnapshotPool, NodeZygotePool, ZygotePlan,
};
use slimstart_platform::chaos::ChaosConfig;
use slimstart_platform::{Invocation, Platform, PlatformConfig};
use slimstart_pyrt::loader::LoaderPlan;
use slimstart_pyrt::process::Process;
use slimstart_pyrt::stack::{CallStack, Frame, FrameKind};
use slimstart_pyrt::zygote::{ZygoteCounters, ZygoteImage};
use slimstart_simcore::event::reference::ReferenceEventQueue;
use slimstart_simcore::event::EventQueue;
use slimstart_simcore::rng::SimRng;
use slimstart_simcore::time::{SimDuration, SimTime};

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Smoke mode: tiny iteration counts, suitable for CI (validates that
    /// the harness runs and emits well-formed JSON, not that numbers are
    /// stable).
    pub smoke: bool,
    /// Seed for the synthetic sample streams and the fleet run.
    pub seed: u64,
    /// Fleet worker threads (the sweep always starts at 1 and ends at
    /// the larger of this and the built-in sweep ceiling).
    pub threads: usize,
    /// Overrides the fleet size (`--fleet-apps`); `None` uses the mode
    /// default — 10,000 apps full, 240 in smoke.
    pub fleet_apps: Option<usize>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            smoke: false,
            seed: 2025,
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            fleet_apps: None,
        }
    }
}

/// One legacy-vs-current comparison.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// Mean ns/op of the legacy implementation.
    pub legacy_ns: f64,
    /// Mean ns/op of the current implementation.
    pub current_ns: f64,
    /// Iterations measured per variant.
    pub iters: u64,
}

impl Comparison {
    /// legacy / current — how many times faster the current path is.
    pub fn speedup(&self) -> f64 {
        if self.current_ns > 0.0 {
            self.legacy_ns / self.current_ns
        } else {
            f64::INFINITY
        }
    }
}

/// One point of the fleet thread sweep.
#[derive(Debug, Clone, Copy)]
pub struct FleetPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Applications optimized per wall-clock second.
    pub apps_per_second: f64,
    /// Wall-clock of the run, seconds.
    pub wall_s: f64,
    /// Peak resident size of the streaming aggregation state, bytes.
    pub aggregate_peak_bytes: usize,
}

/// The fleet section of the report: a thread sweep over the
/// work-stealing orchestrator plus its determinism proof.
#[derive(Debug, Clone)]
pub struct FleetBench {
    /// Fleet size per sweep point.
    pub apps: usize,
    /// Cold starts per measurement run.
    pub cold_starts: usize,
    /// Per-app stall the workers overlap (the modeled collector/deploy
    /// round-trip), microseconds. Recorded so the sweep's scaling claim
    /// is honest about what the threads are overlapping.
    pub stall_us: u64,
    /// Throughput at each swept thread count, ascending.
    pub sweep: Vec<FleetPoint>,
    /// Whether the serialized `FleetReport` was byte-identical across
    /// every swept thread count.
    pub reports_identical: bool,
    /// Same check with fault injection enabled (run at the sweep's
    /// extremes, stall-free).
    pub chaos_reports_identical: bool,
}

/// One budget point of the snapshot memory-pressure sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PressurePoint {
    /// Modeled node memory budget for snapshots; `None` is unlimited.
    pub node_budget_bytes: Option<u64>,
    /// Snapshot restores across every app on the node.
    pub hits: u64,
    /// Cold starts that replayed the full loader stream.
    pub misses: u64,
    /// Entries evicted under budget pressure (plus redeploy invalidation,
    /// which this sweep never triggers).
    pub evictions: u64,
    /// Modules faulted in lazily after a working-set restore.
    pub faulted_loads: u64,
    /// Bytes resident across the node's snapshot shards at end of run.
    pub resident_bytes: u64,
    /// p99 of cold-start init latency across all apps, microseconds.
    pub p99_cold_us: u64,
    /// Mean cold-start init latency, microseconds.
    pub mean_cold_us: u64,
}

impl PressurePoint {
    /// Snapshot hit rate in `[0, 1]`; 0.0 when nothing was consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The snapshot-pressure section: a node of apps sharing a
/// [`NodeSnapshotPool`], swept across shrinking memory budgets. The first
/// point is always unlimited (the calibration baseline); constrained
/// budgets are fractions of the *measured* unlimited resident bytes, so
/// the sweep stays meaningful if the synthetic population changes.
#[derive(Debug, Clone)]
pub struct SnapshotPressureBench {
    /// Apps packed on the modeled node.
    pub node_size: usize,
    /// Handlers (distinct snapshot roots) per app.
    pub handlers_per_app: usize,
    /// Invocations per app, spaced past keep-alive so each is a cold start.
    pub cold_starts_per_app: usize,
    /// Resident bytes measured at the unlimited point — the base the
    /// constrained budgets are derived from.
    pub unlimited_resident_bytes: u64,
    /// Sweep results, unlimited first, then descending budgets.
    pub points: Vec<PressurePoint>,
    /// Whether re-running the sweep's extremes with the same seed
    /// reproduced identical counters and latencies.
    pub rerun_identical: bool,
}

/// One cell of the dependency-sharing comparison grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharingCell {
    /// Mean cold-start init latency across every app, microseconds.
    pub mean_cold_us: u64,
    /// p99 cold-start init latency, microseconds.
    pub p99_cold_us: u64,
    /// Cold starts that forked from a zygote (0 for unshared cells).
    pub forks: u64,
    /// Module loads acquired at fork cost (0 for unshared cells).
    pub forked_loads: u64,
}

/// The dependency-sharing section: the paper's Table-3-style comparison
/// over the heavy catalog. Each app's cold-start init latency is
/// measured in four configurations — baseline (no optimization),
/// deferral-only (the pipeline's shipped deployment), sharing-only
/// (zygote forks of the unoptimized app), and both combined. All
/// latencies are virtual-clock, so the cells are exactly reproducible;
/// both grid extremes are re-run with the same seed to prove it.
#[derive(Debug, Clone)]
pub struct DependencySharingBench {
    /// Catalog apps measured (cycling the 22-entry heavy catalog).
    pub apps: usize,
    /// Cold starts per app, spaced past keep-alive so each is cold.
    pub cold_starts_per_app: usize,
    /// Per-module fork acquisition cost used by the shared cells, µs.
    pub fork_cost_us: u64,
    /// No optimization.
    pub baseline: SharingCell,
    /// Import deferral alone.
    pub deferral: SharingCell,
    /// Zygote dependency sharing alone.
    pub sharing: SharingCell,
    /// Deferral and sharing combined.
    pub both: SharingCell,
    /// Whether re-running the grid's extremes with the same seed
    /// reproduced identical cells.
    pub rerun_identical: bool,
}

impl DependencySharingBench {
    /// The labeled cells, in report order.
    pub fn cells(&self) -> [(&'static str, &SharingCell); 4] {
        [
            ("baseline", &self.baseline),
            ("deferral", &self.deferral),
            ("sharing", &self.sharing),
            ("both", &self.both),
        ]
    }
}

/// The harness result.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Config echo: smoke mode.
    pub smoke: bool,
    /// Config echo: seed.
    pub seed: u64,
    /// Per-sample stack capture.
    pub sampler: Comparison,
    /// CCT merge.
    pub cct_merge: Comparison,
    /// Process cold start (per-process plan vs shared plan).
    pub cold_start: Comparison,
    /// Repeated same-deployment cold start (loader replay vs snapshot
    /// restore).
    pub snapshot_cold_start: Comparison,
    /// Event-queue schedule/drain workload (reference heap vs timing
    /// wheel).
    pub event_queue: Comparison,
    /// The fleet thread sweep and its byte-identity checks.
    pub fleet: FleetBench,
    /// The node snapshot-pool memory-budget sweep.
    pub snapshot_pressure: SnapshotPressureBench,
    /// The zygote dependency-sharing comparison grid.
    pub dependency_sharing: DependencySharingBench,
}

/// Times `op` over `iters` iterations (after one warm-up call) and returns
/// the mean ns/op.
fn time_ns<T>(iters: u64, mut op: impl FnMut() -> T) -> f64 {
    black_box(op());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(op());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// A plausibly-deep production stack: module init at the bottom, a chain of
/// calls above, as the sampler sees during a sampled cold start.
fn bench_stack() -> CallStack {
    let mut stack = CallStack::new();
    stack.push(
        FrameKind::ModuleInit(slimstart_appmodel::ModuleId::from_index(0)),
        1,
    );
    for i in 0..11 {
        stack.push(
            FrameKind::Call(slimstart_appmodel::FunctionId::from_index(i)),
            10 + i as u32,
        );
    }
    stack
}

fn bench_sampler(iters: u64) -> Comparison {
    let stack = bench_stack();
    // Legacy: every sample cloned the live stack into a fresh Vec.
    let legacy_ns = time_ns(iters, || {
        let path: Arc<[Frame]> = stack.snapshot().into();
        path
    });
    // Current: identical stacks hit the fingerprint fast path and share one
    // allocation.
    let mut cache = CaptureCache::new();
    let current_ns = time_ns(iters, || cache.capture(&stack));
    Comparison {
        legacy_ns,
        current_ns,
        iters,
    }
}

/// Synthesizes a sample stream shaped like a real profile: few distinct
/// call sites, moderate depth, heavy repetition.
fn synth_samples(n: usize, seed: u64) -> Vec<SampleRecord> {
    let mut rng = SimRng::seed_from(seed);
    let sites: Vec<Frame> = (0..48)
        .map(|i| Frame {
            kind: FrameKind::Call(slimstart_appmodel::FunctionId::from_index(i)),
            line: 10 + (i % 5) as u32,
        })
        .collect();
    (0..n)
        .map(|_| {
            let depth = 3 + rng.next_below(6);
            let path: Vec<Frame> = (0..depth)
                .map(|d| sites[(d * 5 + rng.next_below(6)) % sites.len()])
                .collect();
            SampleRecord {
                path: path.into(),
                is_init: rng.chance(0.3),
            }
        })
        .collect()
}

fn bench_cct_merge(samples: usize, iters: u64, seed: u64) -> Comparison {
    let left = synth_samples(samples, seed);
    let right = synth_samples(samples, seed ^ 0x5eed);

    let mut ref_a = ReferenceCct::new();
    let mut ref_b = ReferenceCct::new();
    let mut cur_a = Cct::new();
    let mut cur_b = Cct::new();
    for s in &left {
        ref_a.insert(&s.path, s.is_init);
        cur_a.insert(&s.path, s.is_init);
    }
    for s in &right {
        ref_b.insert(&s.path, s.is_init);
        cur_b.insert(&s.path, s.is_init);
    }

    let legacy_ns = time_ns(iters, || {
        let mut merged = ref_a.clone();
        merged.merge(&ref_b);
        merged.total_samples()
    });
    let current_ns = time_ns(iters, || {
        let mut merged = cur_a.clone();
        merged.merge(&cur_b);
        merged.total_samples()
    });
    Comparison {
        legacy_ns,
        current_ns,
        iters,
    }
}

fn bench_cold_start(iters: u64, seed: u64) -> Comparison {
    let built = by_code("R-GB")
        .expect("catalog entry R-GB exists")
        .build(seed)
        .expect("catalog app builds");
    let app: Arc<Application> = Arc::new(built.app);
    let root = built.app_module;

    // Legacy: every process analyzed the import graph afresh.
    let legacy_app = Arc::clone(&app);
    let legacy_ns = time_ns(iters, move || {
        let mut proc = Process::new(Arc::clone(&legacy_app), 1.0);
        proc.cold_start(root).expect("cold start succeeds")
    });

    // Current: the platform builds one plan per deployment and every
    // container's process shares it.
    let plan = Arc::new(LoaderPlan::build(&app));
    let current_ns = time_ns(iters, move || {
        let mut proc = Process::with_plan(Arc::clone(&app), Arc::clone(&plan), 1.0);
        proc.cold_start(root).expect("cold start succeeds")
    });
    Comparison {
        legacy_ns,
        current_ns,
        iters,
    }
}

fn bench_snapshot_cold_start(iters: u64, seed: u64) -> Comparison {
    let built = by_code("R-GB")
        .expect("catalog entry R-GB exists")
        .build(seed)
        .expect("catalog app builds");
    let app: Arc<Application> = Arc::new(built.app);
    let root = built.app_module;
    let plan = Arc::new(LoaderPlan::build(&app));

    // Legacy: every recurrent cold start of the deployment re-walks the
    // (shared) loader plan.
    let legacy_app = Arc::clone(&app);
    let legacy_plan = Arc::clone(&plan);
    let legacy_ns = time_ns(iters, move || {
        let mut proc = Process::with_plan(Arc::clone(&legacy_app), Arc::clone(&legacy_plan), 1.0);
        proc.cold_start(root).expect("cold start succeeds")
    });

    // Current: the platform memoizes the first replay and every later cold
    // start restores the snapshot.
    let snapshot = {
        let mut proc = Process::with_plan(Arc::clone(&app), Arc::clone(&plan), 1.0);
        proc.cold_start(root).expect("cold start succeeds");
        proc.capture_snapshot()
    };
    let current_ns = time_ns(iters, move || {
        let mut proc = Process::with_plan(Arc::clone(&app), Arc::clone(&plan), 1.0);
        proc.restore_snapshot(&snapshot)
    });
    Comparison {
        legacy_ns,
        current_ns,
        iters,
    }
}

/// A platform-shaped event trace: per step, an offset to schedule at
/// (mostly sub-second re-occupancies, a keep-alive tail minutes out) and a
/// virtual-time advance before draining what came due. Advances are bursty
/// — mostly sub-2 ms dispatch gaps with occasional idle stretches up to
/// 2 s — matching how the platform's reclamation queue sees time move.
fn event_workload(seed: u64, steps: usize) -> Vec<(u64, u64)> {
    let mut rng = SimRng::seed_from(seed);
    (0..steps)
        .map(|_| {
            let offset = match rng.next_below(20) {
                0..=13 => 1_000 + rng.next_below(999_000) as u64, // 1 ms – 1 s
                14..=18 => rng.next_below(60_000_000) as u64,     // up to 1 min
                _ => 600_000_000 + rng.next_below(600_000_000) as u64, // keep-alive tail
            };
            let advance = if rng.next_below(10) == 0 {
                rng.next_below(2_000_000) as u64 // idle gap, up to 2 s
            } else {
                rng.next_below(2_000) as u64 // busy dispatching
            };
            (offset, advance)
        })
        .collect()
}

fn bench_event_queue(iters: u64, seed: u64) -> Comparison {
    let trace = event_workload(seed, 16_384);

    // One op = pushing the whole trace through a fresh queue — schedule,
    // advance, drain-due — then draining the backlog, exactly the mix the
    // platform's expiry queue and the workload merger generate.
    let legacy_trace = trace.clone();
    let legacy_ns = time_ns(iters, move || {
        let mut q = ReferenceEventQueue::new();
        let mut buf: Vec<(SimTime, u64)> = Vec::new();
        let mut now = 0u64;
        let mut acc = 0u64;
        for &(offset, advance) in &legacy_trace {
            q.schedule(SimTime::from_micros(now + offset), offset);
            now += advance;
            q.pop_due_into(SimTime::from_micros(now), &mut buf);
            acc += buf.len() as u64;
        }
        q.pop_due_into(SimTime::MAX, &mut buf);
        for (t, _) in &buf {
            acc ^= t.as_micros();
        }
        acc
    });

    let current_ns = time_ns(iters, move || {
        let mut q = EventQueue::new();
        let mut buf: Vec<(SimTime, u64)> = Vec::new();
        let mut now = 0u64;
        let mut acc = 0u64;
        for &(offset, advance) in &trace {
            q.schedule(SimTime::from_micros(now + offset), offset);
            now += advance;
            q.pop_due_into(SimTime::from_micros(now), &mut buf);
            acc += buf.len() as u64;
        }
        q.pop_due_into(SimTime::MAX, &mut buf);
        for (t, _) in &buf {
            acc ^= t.as_micros();
        }
        acc
    });

    Comparison {
        legacy_ns,
        current_ns,
        iters,
    }
}

/// Sweeps the work-stealing fleet orchestrator over ascending thread
/// counts at scale, on the lightweight population (`light_population`) so
/// scheduling — not per-app simulation cost — dominates the signal.
///
/// Every app pays `stall_us` of real sleep (the modeled collector/deploy
/// round-trip); workers overlap those stalls, which is exactly the
/// concurrency a production fleet controller exploits, and the recorded
/// `stall_us` keeps the scaling claim honest. Alongside throughput, the
/// sweep proves the determinism contract: the serialized `FleetReport`
/// must be byte-identical at every thread count, and again with fault
/// injection enabled at the sweep's extremes.
fn bench_fleet(config: &BenchConfig) -> FleetBench {
    let (default_apps, cold_starts, stall_us): (usize, usize, u64) = if config.smoke {
        (240, 2, 200)
    } else {
        (10_000, 2, 4_000)
    };
    let thread_sweep: &[usize] = if config.smoke { &[1, 2] } else { &[1, 2, 4, 8] };
    let apps = config.fleet_apps.unwrap_or(default_apps);
    let population = light_population(apps);
    let base = FleetConfig::default()
        .with_apps(apps)
        .with_seed(config.seed)
        .with_cold_starts(cold_starts)
        .with_runs(1);

    let mut sweep = Vec::with_capacity(thread_sweep.len());
    let mut jsons: Vec<String> = Vec::with_capacity(thread_sweep.len());
    for &threads in thread_sweep {
        let fleet = base
            .clone()
            .with_threads(threads)
            .with_stall_micros(stall_us);
        let (report, stats) = FleetOrchestrator::new(fleet)
            .run_population(&population)
            .expect("fleet run succeeds");
        jsons.push(report.to_json());
        sweep.push(FleetPoint {
            threads: stats.threads,
            apps_per_second: stats.apps_per_second,
            wall_s: stats.wall_clock.as_secs_f64(),
            aggregate_peak_bytes: stats.aggregate_peak_bytes,
        });
    }
    let reports_identical = jsons.windows(2).all(|w| w[0] == w[1]);

    // Chaos byte-identity at the sweep's extremes. No stall: this pair
    // proves determinism, not throughput, so it runs at pure CPU speed.
    let lo = *thread_sweep.first().expect("sweep is non-empty");
    let hi = *thread_sweep.last().expect("sweep is non-empty");
    let chaos_json = |threads: usize| {
        let fleet = base
            .clone()
            .with_threads(threads)
            .with_chaos(ChaosConfig::uniform(0.2));
        let (report, _) = FleetOrchestrator::new(fleet)
            .run_population(&population)
            .expect("chaos fleet run succeeds");
        report.to_json()
    };
    let chaos_reports_identical = chaos_json(lo) == chaos_json(hi);

    FleetBench {
        apps,
        cold_starts,
        stall_us,
        sweep,
        reports_identical,
        chaos_reports_identical,
    }
}

/// Apps packed per modeled node in the pressure sweep.
const PRESSURE_NODE_SIZE: usize = 4;
/// Handlers — and hence snapshot roots — per pressure app.
const PRESSURE_HANDLERS: usize = 3;

/// Builds one synthetic pressure app. Each handler pulls a hot library
/// module (touched at runtime, so it stays in the working set) and a cold
/// transitive module that is loaded eagerly but — except for a rare
/// branch on handler 0 — never touched, so lazy restore omits it. Module
/// costs and footprints vary by `slot` so the node's apps compete for the
/// shared budget asymmetrically.
fn pressure_app(slot: usize) -> Arc<Application> {
    let mut b = AppBuilder::new(format!("pressure{slot}"));
    for h in 0..PRESSURE_HANDLERS {
        let lib = b.add_library(format!("lib{h}"));
        let entry_mod = b.add_app_module(format!("h{h}"), SimDuration::from_millis(1), 64);
        let hot = b.add_library_module(
            format!("lib{h}"),
            SimDuration::from_millis((20 + 10 * h + 5 * slot) as u64),
            (512 + 256 * h + 128 * slot) as u64,
            false,
            lib,
        );
        let cold = b.add_library_module(
            format!("lib{h}.cold"),
            SimDuration::from_millis((80 + 20 * h) as u64),
            96,
            false,
            lib,
        );
        b.add_import(entry_mod, hot, 2, ImportMode::Global)
            .expect("import is valid");
        b.add_import(hot, cold, 3, ImportMode::Global)
            .expect("import is valid");
        let mut body = vec![Stmt {
            line: 6,
            kind: StmtKind::Work(SimDuration::from_millis(2)),
        }];
        if h == 0 {
            // Rare cold-module access: exercises the lazy-restore fault
            // path (the module loads on first touch at real cost).
            body.push(Stmt {
                line: 7,
                kind: StmtKind::Branch {
                    probability: 0.02,
                    body: vec![Stmt {
                        line: 8,
                        kind: StmtKind::Touch(cold),
                    }],
                },
            });
        }
        let work = b.add_function(format!("work{h}"), hot, 5, body);
        let entry = b.add_function(
            format!("main{h}"),
            entry_mod,
            4,
            vec![Stmt {
                line: 5,
                kind: StmtKind::call(work),
            }],
        );
        b.add_handler(format!("main{h}"), entry);
    }
    Arc::new(b.finish().expect("pressure app builds"))
}

/// Runs the node once at `node_budget` and distills counters and cold-start
/// latency percentiles. Every invocation arrives past the keep-alive
/// window, so each is a cold start that consults the app's pool shard.
fn pressure_point(
    apps: &[Arc<Application>],
    node_budget: Option<u64>,
    seed: u64,
    cold_starts: usize,
) -> PressurePoint {
    let pool = NodeSnapshotPool::new(node_budget, PRESSURE_NODE_SIZE, true);
    let mut point = PressurePoint {
        node_budget_bytes: node_budget,
        hits: 0,
        misses: 0,
        evictions: 0,
        faulted_loads: 0,
        resident_bytes: 0,
        p99_cold_us: 0,
        mean_cold_us: 0,
    };
    let mut cold_us: Vec<u64> = Vec::with_capacity(apps.len() * cold_starts);
    for (i, app) in apps.iter().enumerate() {
        let store = pool.store_for(i);
        let cfg = PlatformConfig::default().with_snapshot_store(Arc::clone(&store));
        let app_seed = seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut platform = Platform::new(Arc::clone(app), cfg, app_seed);
        let handlers: Vec<_> = (0..PRESSURE_HANDLERS)
            .map(|h| {
                app.handler_by_name(&format!("main{h}"))
                    .expect("pressure handler exists")
            })
            .collect();
        let invocations: Vec<Invocation> = (0..cold_starts)
            .map(|k| Invocation {
                at: SimTime::from_millis(k as u64 * 11 * 60 * 1000),
                handler: handlers[k % PRESSURE_HANDLERS],
                seed: k as u64 + 1,
            })
            .collect();
        let records = platform
            .run(&invocations)
            .expect("pressure run is fault-free");
        cold_us.extend(
            records
                .iter()
                .filter(|r| r.cold)
                .map(|r| r.init_latency.as_micros()),
        );
        let stats = store.stats();
        point.hits += stats.hits;
        point.misses += stats.misses;
        point.evictions += stats.evictions;
        point.faulted_loads += stats.faulted_loads;
        point.resident_bytes += stats.resident_bytes;
    }
    cold_us.sort_unstable();
    if !cold_us.is_empty() {
        point.p99_cold_us = cold_us[(cold_us.len() - 1) * 99 / 100];
        point.mean_cold_us = cold_us.iter().sum::<u64>() / cold_us.len() as u64;
    }
    point
}

/// The snapshot memory-pressure sweep. The unlimited point runs first and
/// its measured resident bytes calibrate the constrained budgets (100%,
/// 50%, 25% of that total, fair-shared across the node's shards), so
/// pressure is guaranteed regardless of the synthetic apps' exact
/// footprints. Both sweep extremes are re-run with the same seed to prove
/// the counters and latency percentiles are deterministic.
fn bench_snapshot_pressure(config: &BenchConfig) -> SnapshotPressureBench {
    // Cold starts dominate sim time, not wall time: 400 invocations per
    // app keeps unlimited-point misses under 1% of samples, so the p99
    // contrast between budget points reflects steady state, not warm-up.
    let cold_starts = 400;
    let apps: Vec<Arc<Application>> = (0..PRESSURE_NODE_SIZE).map(pressure_app).collect();
    let unlimited = pressure_point(&apps, None, config.seed, cold_starts);
    let base = unlimited.resident_bytes;
    let mut points = vec![unlimited];
    for (num, den) in [(1u64, 1u64), (1, 2), (1, 4)] {
        let budget = Some((base * num / den).max(1));
        points.push(pressure_point(&apps, budget, config.seed, cold_starts));
    }
    let rerun_identical = pressure_point(&apps, None, config.seed, cold_starts) == points[0]
        && pressure_point(&apps, points[3].node_budget_bytes, config.seed, cold_starts)
            == points[3];
    SnapshotPressureBench {
        node_size: PRESSURE_NODE_SIZE,
        handlers_per_app: PRESSURE_HANDLERS,
        cold_starts_per_app: cold_starts,
        unlimited_resident_bytes: base,
        points,
        rerun_identical,
    }
}

/// Runs one cell of the sharing grid: every app gets its own platform
/// (snapshots and jitter off, so only load costs move the numbers),
/// optionally forking each cold start from its planned node zygote.
/// Returns the cell's aggregate cold-start latencies and fork counters.
fn sharing_cell(
    apps: &[(usize, Arc<Application>)],
    plan: Option<&ZygotePlan>,
    seed: u64,
    cold_starts: usize,
) -> SharingCell {
    let counters = Arc::new(ZygoteCounters::default());
    let mut cold_us: Vec<u64> = Vec::with_capacity(apps.len() * cold_starts);
    for &(index, ref app) in apps {
        let mut cfg = PlatformConfig::default()
            .without_jitter()
            .without_snapshots();
        if let Some(spec) = plan.and_then(|p| p.spec(index)) {
            cfg = cfg.with_zygote(Arc::new(ZygoteImage::for_app(
                app,
                &spec.ranked,
                spec.resident_prefix,
                plan.expect("spec implies plan").fork_cost(),
                Arc::clone(&counters),
            )));
        }
        let app_seed = seed ^ (index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut platform = Platform::new(Arc::clone(app), cfg, app_seed);
        let handler = app
            .handler_by_name("handler")
            .expect("catalog handler exists");
        let invocations: Vec<Invocation> = (0..cold_starts)
            .map(|k| Invocation {
                at: SimTime::from_millis(k as u64 * 11 * 60 * 1000),
                handler,
                seed: k as u64 + 1,
            })
            .collect();
        let records = platform
            .run(&invocations)
            .expect("sharing run is fault-free");
        cold_us.extend(
            records
                .iter()
                .filter(|r| r.cold)
                .map(|r| r.init_latency.as_micros()),
        );
    }
    cold_us.sort_unstable();
    let (mean_cold_us, p99_cold_us) = if cold_us.is_empty() {
        (0, 0)
    } else {
        (
            cold_us.iter().sum::<u64>() / cold_us.len() as u64,
            cold_us[(cold_us.len() - 1) * 99 / 100],
        )
    };
    SharingCell {
        mean_cold_us,
        p99_cold_us,
        forks: counters.forks(),
        forked_loads: counters.forked_loads(),
    }
}

/// The dependency-sharing grid. Each catalog app is built once, pushed
/// through the full pipeline once (its shipped deployment is the
/// "deferral" variant, its unoptimized input the "baseline"), and a
/// node zygote plan is drawn over the baseline population — then every
/// variant's cold starts are measured with and without forking.
fn bench_dependency_sharing(config: &BenchConfig) -> DependencySharingBench {
    let (apps_n, cold_starts) = if config.smoke { (8, 6) } else { (22, 40) };
    let population = fleet_population(apps_n);
    let mut baseline_owned: Vec<(usize, Application)> = Vec::with_capacity(apps_n);
    let mut deferral: Vec<(usize, Arc<Application>)> = Vec::with_capacity(apps_n);
    for (i, entry) in population.iter().enumerate() {
        let app_seed = config.seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let built = entry.build(app_seed).expect("catalog app builds");
        let pipeline_cfg = PipelineConfig::default()
            .with_seed(app_seed)
            .with_cold_starts(10)
            .with_platform(PlatformConfig::default().without_jitter());
        let outcome = Pipeline::new(pipeline_cfg)
            .run(&built.app, &entry.workload_weights())
            .expect("pipeline run succeeds");
        deferral.push((i, outcome.final_app));
        baseline_owned.push((i, built.app));
    }
    let plan = NodeZygotePool::default_geometry().plan(&baseline_owned);
    let baseline: Vec<(usize, Arc<Application>)> = baseline_owned
        .into_iter()
        .map(|(i, app)| (i, Arc::new(app)))
        .collect();

    let baseline_cell = sharing_cell(&baseline, None, config.seed, cold_starts);
    let deferral_cell = sharing_cell(&deferral, None, config.seed, cold_starts);
    let sharing = sharing_cell(&baseline, Some(&plan), config.seed, cold_starts);
    let both = sharing_cell(&deferral, Some(&plan), config.seed, cold_starts);
    let rerun_identical = sharing_cell(&baseline, None, config.seed, cold_starts) == baseline_cell
        && sharing_cell(&deferral, Some(&plan), config.seed, cold_starts) == both;
    DependencySharingBench {
        apps: apps_n,
        cold_starts_per_app: cold_starts,
        fork_cost_us: plan.fork_cost().as_micros(),
        baseline: baseline_cell,
        deferral: deferral_cell,
        sharing,
        both,
        rerun_identical,
    }
}

/// Runs every measurement and assembles the report.
pub fn run(config: &BenchConfig) -> BenchReport {
    let (sampler_iters, merge_samples, merge_iters, cold_iters, snap_iters, event_iters) =
        if config.smoke {
            (10_000, 1_000, 3, 3, 20, 3)
        } else {
            (400_000, 20_000, 40, 120, 5_000, 200)
        };
    let sampler = bench_sampler(sampler_iters);
    let cct_merge = bench_cct_merge(merge_samples, merge_iters, config.seed);
    let cold_start = bench_cold_start(cold_iters, config.seed);
    let snapshot_cold_start = bench_snapshot_cold_start(snap_iters, config.seed);
    let event_queue = bench_event_queue(event_iters, config.seed);
    let fleet = bench_fleet(config);
    let snapshot_pressure = bench_snapshot_pressure(config);
    let dependency_sharing = bench_dependency_sharing(config);
    BenchReport {
        smoke: config.smoke,
        seed: config.seed,
        sampler,
        cct_merge,
        cold_start,
        snapshot_cold_start,
        event_queue,
        fleet,
        snapshot_pressure,
        dependency_sharing,
    }
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}")
    } else {
        "null".to_string()
    }
}

fn comparison_json(out: &mut String, key: &str, c: &Comparison) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "  \"{key}\": {{\n    \"legacy_ns_per_op\": {},\n    \"current_ns_per_op\": {},\n    \"speedup\": {},\n    \"iters\": {}\n  }}",
        num(c.legacy_ns),
        num(c.current_ns),
        num(c.speedup()),
        c.iters
    );
}

impl BenchReport {
    /// The named legacy-vs-current comparisons, in report order.
    pub fn comparisons(&self) -> [(&'static str, &Comparison); 5] {
        [
            ("sampler", &self.sampler),
            ("cct_merge", &self.cct_merge),
            ("cold_start", &self.cold_start),
            ("snapshot_cold_start", &self.snapshot_cold_start),
            ("event_queue", &self.event_queue),
        ]
    }

    /// Parallel scaling ratio of the fleet sweep: throughput at the highest
    /// swept thread count over throughput at one thread (1.0 on a
    /// single-point sweep).
    pub fn fleet_scaling(&self) -> f64 {
        match (self.fleet.sweep.first(), self.fleet.sweep.last()) {
            (Some(first), Some(last)) if first.apps_per_second > 0.0 => {
                last.apps_per_second / first.apps_per_second
            }
            _ => 1.0,
        }
    }

    /// The CI perf gate, covering the micro-benchmarks and the fleet
    /// section:
    ///
    /// * every `current` implementation must stay within `3x` of its own
    ///   in-run legacy baseline — racing both variants in the same
    ///   process makes the gate immune to machine speed;
    /// * the fleet report must be byte-identical across every swept
    ///   thread count, chaos off and on — the determinism contract is a
    ///   hard failure, never noise;
    /// * the fleet sweep must show parallel scaling: at least 1.05x in
    ///   smoke mode (tiny fleets, noisy runners) and 2.0x at the full
    ///   sweep's 4+ threads.
    ///
    /// # Errors
    ///
    /// Returns a message naming every violated gate.
    pub fn check_regressions(&self) -> Result<(), String> {
        let mut offenders: Vec<String> = self
            .comparisons()
            .iter()
            .filter(|(_, c)| c.current_ns > 3.0 * c.legacy_ns)
            .map(|(name, c)| {
                format!(
                    "{name}: current {:.1} ns/op > 3x legacy {:.1} ns/op",
                    c.current_ns, c.legacy_ns
                )
            })
            .collect();
        if !self.fleet.reports_identical {
            offenders.push("fleet: report JSON differs across swept thread counts".to_string());
        }
        if !self.fleet.chaos_reports_identical {
            offenders.push("fleet: chaos report JSON differs across thread counts".to_string());
        }
        let scaling_floor = if self.smoke { 1.05 } else { 2.0 };
        let scaling = self.fleet_scaling();
        if self.fleet.sweep.len() > 1 && scaling < scaling_floor {
            offenders.push(format!(
                "fleet: scaling {scaling:.2}x below the {scaling_floor:.2}x floor"
            ));
        }
        let sp = &self.snapshot_pressure;
        if let (Some(first), Some(last)) = (sp.points.first(), sp.points.last()) {
            if first.node_budget_bytes.is_some() || first.evictions != 0 {
                offenders.push(
                    "snapshot_pressure: unlimited point missing or evicted entries".to_string(),
                );
            }
            if sp.points.iter().skip(1).map(|p| p.evictions).sum::<u64>() == 0 {
                offenders.push(
                    "snapshot_pressure: no constrained budget triggered eviction".to_string(),
                );
            }
            if last.hit_rate() >= first.hit_rate() {
                offenders.push(format!(
                    "snapshot_pressure: tightest budget hit rate {:.3} not below unlimited {:.3}",
                    last.hit_rate(),
                    first.hit_rate()
                ));
            }
            if last.p99_cold_us < first.p99_cold_us {
                offenders.push(format!(
                    "snapshot_pressure: tightest budget p99 {} us below unlimited {} us",
                    last.p99_cold_us, first.p99_cold_us
                ));
            }
        } else {
            offenders.push("snapshot_pressure: sweep is empty".to_string());
        }
        if !sp.rerun_identical {
            offenders.push("snapshot_pressure: rerun with the same seed diverged".to_string());
        }
        let ds = &self.dependency_sharing;
        if ds.deferral.mean_cold_us > ds.baseline.mean_cold_us {
            offenders.push(format!(
                "dependency_sharing: deferral mean {} us above baseline {} us",
                ds.deferral.mean_cold_us, ds.baseline.mean_cold_us
            ));
        }
        if ds.sharing.mean_cold_us >= ds.baseline.mean_cold_us {
            offenders.push(format!(
                "dependency_sharing: sharing mean {} us not below baseline {} us",
                ds.sharing.mean_cold_us, ds.baseline.mean_cold_us
            ));
        }
        if ds.both.mean_cold_us >= ds.deferral.mean_cold_us {
            offenders.push(format!(
                "dependency_sharing: combined mean {} us not below deferral-only {} us",
                ds.both.mean_cold_us, ds.deferral.mean_cold_us
            ));
        }
        if ds.both.p99_cold_us >= ds.deferral.p99_cold_us {
            offenders.push(format!(
                "dependency_sharing: combined p99 {} us not below deferral-only {} us",
                ds.both.p99_cold_us, ds.deferral.p99_cold_us
            ));
        }
        if ds.sharing.forks == 0 || ds.sharing.forked_loads == 0 {
            offenders.push("dependency_sharing: no cold start forked from a zygote".to_string());
        }
        if ds.baseline.forks != 0 || ds.deferral.forks != 0 {
            offenders.push("dependency_sharing: unshared cells recorded zygote forks".to_string());
        }
        if !ds.rerun_identical {
            offenders.push("dependency_sharing: rerun with the same seed diverged".to_string());
        }
        if offenders.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "perf regression gate failed: {}",
                offenders.join("; ")
            ))
        }
    }

    /// Serializes the report. Stable key order; no external serializer.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(2048);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"slimstart-bench-hotpath/v5\",");
        let _ = writeln!(out, "  \"smoke\": {},", self.smoke);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        for (key, c) in self.comparisons() {
            comparison_json(&mut out, key, c);
            out.push_str(",\n");
        }
        let _ = writeln!(
            out,
            "  \"fleet\": {{\n    \"apps\": {},\n    \"cold_starts\": {},\n    \"stall_us\": {},\n    \"sweep\": [",
            self.fleet.apps, self.fleet.cold_starts, self.fleet.stall_us
        );
        for (i, point) in self.fleet.sweep.iter().enumerate() {
            let _ = write!(
                out,
                "      {{\"threads\": {}, \"apps_per_second\": {}, \"wall_s\": {}, \"aggregate_peak_bytes\": {}}}{}",
                point.threads,
                num(point.apps_per_second),
                num(point.wall_s),
                point.aggregate_peak_bytes,
                if i + 1 < self.fleet.sweep.len() {
                    ",\n"
                } else {
                    "\n"
                }
            );
        }
        let _ = write!(
            out,
            "    ],\n    \"scaling\": {},\n    \"reports_identical\": {},\n    \"chaos_reports_identical\": {}\n  }},\n",
            num(self.fleet_scaling()),
            self.fleet.reports_identical,
            self.fleet.chaos_reports_identical
        );
        let sp = &self.snapshot_pressure;
        let _ = writeln!(
            out,
            "  \"snapshot_pressure\": {{\n    \"node_size\": {},\n    \"handlers_per_app\": {},\n    \"cold_starts_per_app\": {},\n    \"unlimited_resident_bytes\": {},\n    \"points\": [",
            sp.node_size, sp.handlers_per_app, sp.cold_starts_per_app, sp.unlimited_resident_bytes
        );
        for (i, p) in sp.points.iter().enumerate() {
            let budget = match p.node_budget_bytes {
                Some(b) => b.to_string(),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "      {{\"node_budget_bytes\": {budget}, \"hit_rate\": {}, \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"faulted_loads\": {}, \"resident_bytes\": {}, \"p99_cold_us\": {}, \"mean_cold_us\": {}}}{}",
                num(p.hit_rate()),
                p.hits,
                p.misses,
                p.evictions,
                p.faulted_loads,
                p.resident_bytes,
                p.p99_cold_us,
                p.mean_cold_us,
                if i + 1 < sp.points.len() { ",\n" } else { "\n" }
            );
        }
        let _ = write!(
            out,
            "    ],\n    \"rerun_identical\": {}\n  }},\n",
            sp.rerun_identical
        );
        let ds = &self.dependency_sharing;
        let _ = writeln!(
            out,
            "  \"dependency_sharing\": {{\n    \"apps\": {},\n    \"cold_starts_per_app\": {},\n    \"fork_cost_us\": {},\n    \"cells\": [",
            ds.apps, ds.cold_starts_per_app, ds.fork_cost_us
        );
        let cells = ds.cells();
        for (i, (label, c)) in cells.iter().enumerate() {
            let _ = write!(
                out,
                "      {{\"label\": \"{label}\", \"mean_cold_us\": {}, \"p99_cold_us\": {}, \"forks\": {}, \"forked_loads\": {}}}{}",
                c.mean_cold_us,
                c.p99_cold_us,
                c.forks,
                c.forked_loads,
                if i + 1 < cells.len() { ",\n" } else { "\n" }
            );
        }
        let _ = write!(
            out,
            "    ],\n    \"rerun_identical\": {}\n  }}\n",
            ds.rerun_identical
        );
        out.push_str("}\n");
        out
    }

    /// Human-readable summary for the terminal.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "hot-path bench (seed {}{})",
            self.seed,
            if self.smoke { ", smoke" } else { "" }
        );
        for (name, c) in [
            ("sampler capture", &self.sampler),
            ("cct merge", &self.cct_merge),
            ("cold start", &self.cold_start),
            ("snapshot restore", &self.snapshot_cold_start),
            ("event queue", &self.event_queue),
        ] {
            let _ = writeln!(
                out,
                "  {name:<16} legacy {:>10.1} ns/op   current {:>10.1} ns/op   {:>6.2}x",
                c.legacy_ns,
                c.current_ns,
                c.speedup()
            );
        }
        for point in &self.fleet.sweep {
            let _ = writeln!(
                out,
                "  {:<16} {} apps on {} thread(s): {:>8.2} apps/s ({:.2}s wall, peak aggregate {} B)",
                "fleet",
                self.fleet.apps,
                point.threads,
                point.apps_per_second,
                point.wall_s,
                point.aggregate_peak_bytes
            );
        }
        let _ = writeln!(
            out,
            "  {:<16} {:.2}x across the thread sweep ({} µs/app stall); reports identical: {}, chaos: {}",
            "fleet scaling",
            self.fleet_scaling(),
            self.fleet.stall_us,
            self.fleet.reports_identical,
            self.fleet.chaos_reports_identical
        );
        let sp = &self.snapshot_pressure;
        let _ = writeln!(
            out,
            "  snapshot pressure: node of {} apps x {} handlers, {} cold starts/app",
            sp.node_size, sp.handlers_per_app, sp.cold_starts_per_app
        );
        for p in &sp.points {
            let budget = match p.node_budget_bytes {
                Some(b) => format!("{:>9} KiB", b / 1024),
                None => "unlimited".to_string(),
            };
            let _ = writeln!(
                out,
                "    budget {budget:<13} {:>5.1}% hits   p99 cold {:>8} µs   {:>4} evictions   {:>3} faults   {:>7} KiB resident",
                p.hit_rate() * 100.0,
                p.p99_cold_us,
                p.evictions,
                p.faulted_loads,
                p.resident_bytes / 1024
            );
        }
        let _ = writeln!(out, "    rerun identical: {}", sp.rerun_identical);
        let ds = &self.dependency_sharing;
        let _ = writeln!(
            out,
            "  dependency sharing: {} catalog apps x {} cold starts, fork cost {} µs",
            ds.apps, ds.cold_starts_per_app, ds.fork_cost_us
        );
        for (label, c) in ds.cells() {
            let _ = writeln!(
                out,
                "    {label:<9} mean cold {:>8} µs   p99 {:>8} µs   {:>5} forks   {:>6} forked loads",
                c.mean_cold_us, c.p99_cold_us, c.forks, c.forked_loads
            );
        }
        let _ = writeln!(out, "    rerun identical: {}", ds.rerun_identical);
        out
    }
}

/// A minimal JSON well-formedness checker (objects, arrays, strings,
/// numbers, booleans, null). `ci.sh` runs the smoke bench through this so a
/// writer regression fails the build without pulling in a JSON dependency.
///
/// # Errors
///
/// Returns a byte offset and message for the first syntax error.
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, "true"),
        Some(b'f') => parse_literal(bytes, pos, "false"),
        Some(b'n') => parse_literal(bytes, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 2; // escape plus escaped byte
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut saw_digit = false;
    while let Some(&c) = bytes.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
            saw_digit |= c.is_ascii_digit();
            *pos += 1;
        } else {
            break;
        }
    }
    if saw_digit {
        Ok(())
    } else {
        Err(format!("malformed number at byte {start}"))
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("malformed literal at byte {pos}", pos = *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_config(threads: usize) -> BenchConfig {
        BenchConfig {
            smoke: true,
            seed: 7,
            threads,
            // Keep unit tests brisk: the CI smoke default of 240 apps
            // runs in the bench binary, not here.
            fleet_apps: Some(60),
        }
    }

    #[test]
    fn smoke_report_is_well_formed_json() {
        let report = run(&smoke_config(2));
        validate_json(&report.to_json()).expect("report JSON is well-formed");
        assert!(report.sampler.legacy_ns > 0.0);
        assert!(report.cct_merge.current_ns > 0.0);
        assert!(report.snapshot_cold_start.current_ns > 0.0);
        assert!(report.event_queue.current_ns > 0.0);
        assert!(!report.fleet.sweep.is_empty());
        assert!(report.fleet.sweep.iter().all(|p| p.apps_per_second > 0.0));
        assert!(report.fleet_scaling() > 0.0);
        assert!(report.fleet.reports_identical);
        assert!(report.fleet.chaos_reports_identical);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"slimstart-bench-hotpath/v5\""));
        assert!(json.contains("\"stall_us\": 200"));
        assert!(json.contains("\"reports_identical\": true"));
        assert!(json.contains("\"chaos_reports_identical\": true"));
        assert!(json.contains("\"aggregate_peak_bytes\": "));
        assert!(json.contains("\"snapshot_pressure\""));
        assert!(json.contains("\"node_budget_bytes\": null"));
        assert!(json.contains("\"rerun_identical\": true"));
        assert!(json.contains("\"dependency_sharing\""));
        assert!(json.contains("\"label\": \"both\""));
    }

    #[test]
    fn snapshot_pressure_sweep_shows_budget_pressure() {
        let sp = bench_snapshot_pressure(&smoke_config(1));
        assert_eq!(sp.points.len(), 4);
        let unlimited = &sp.points[0];
        let tightest = sp.points.last().expect("sweep has points");
        assert_eq!(unlimited.node_budget_bytes, None);
        assert_eq!(unlimited.evictions, 0);
        assert!(unlimited.hit_rate() > 0.9, "{:?}", unlimited);
        assert!(
            sp.points.iter().skip(1).any(|p| p.evictions > 0),
            "constrained budgets must evict: {:?}",
            sp.points
        );
        assert!(tightest.hit_rate() < unlimited.hit_rate());
        assert!(tightest.p99_cold_us >= unlimited.p99_cold_us);
        // Budgets were honored: each constrained point's resident bytes
        // stay within its node budget.
        for p in sp.points.iter().skip(1) {
            let budget = p.node_budget_bytes.expect("constrained point");
            assert!(
                p.resident_bytes <= budget,
                "resident {} exceeds budget {}",
                p.resident_bytes,
                budget
            );
        }
        assert!(sp.rerun_identical);
    }

    /// A hand-built report that passes every gate, without racing real
    /// timers — keeps the gate-tripping tests deterministic and cheap.
    fn synthetic_report() -> BenchReport {
        let ok = Comparison {
            legacy_ns: 100.0,
            current_ns: 50.0,
            iters: 1,
        };
        BenchReport {
            smoke: true,
            seed: 7,
            sampler: ok,
            cct_merge: ok,
            cold_start: ok,
            snapshot_cold_start: ok,
            event_queue: ok,
            fleet: FleetBench {
                apps: 1,
                cold_starts: 1,
                stall_us: 0,
                sweep: Vec::new(),
                reports_identical: true,
                chaos_reports_identical: true,
            },
            snapshot_pressure: SnapshotPressureBench {
                node_size: 4,
                handlers_per_app: 3,
                cold_starts_per_app: 4,
                unlimited_resident_bytes: 1_000,
                points: vec![
                    PressurePoint {
                        node_budget_bytes: None,
                        hits: 9,
                        misses: 1,
                        evictions: 0,
                        faulted_loads: 0,
                        resident_bytes: 1_000,
                        p99_cold_us: 100,
                        mean_cold_us: 50,
                    },
                    PressurePoint {
                        node_budget_bytes: Some(500),
                        hits: 5,
                        misses: 5,
                        evictions: 3,
                        faulted_loads: 1,
                        resident_bytes: 500,
                        p99_cold_us: 200,
                        mean_cold_us: 80,
                    },
                ],
                rerun_identical: true,
            },
            dependency_sharing: DependencySharingBench {
                apps: 4,
                cold_starts_per_app: 4,
                fork_cost_us: 100,
                baseline: SharingCell {
                    mean_cold_us: 1_000,
                    p99_cold_us: 2_000,
                    forks: 0,
                    forked_loads: 0,
                },
                deferral: SharingCell {
                    mean_cold_us: 600,
                    p99_cold_us: 1_200,
                    forks: 0,
                    forked_loads: 0,
                },
                sharing: SharingCell {
                    mean_cold_us: 400,
                    p99_cold_us: 900,
                    forks: 16,
                    forked_loads: 64,
                },
                both: SharingCell {
                    mean_cold_us: 200,
                    p99_cold_us: 500,
                    forks: 16,
                    forked_loads: 64,
                },
                rerun_identical: true,
            },
        }
    }

    #[test]
    fn regression_gate_trips_on_pressure_divergence() {
        let mut report = synthetic_report();
        report.check_regressions().expect("synthetic report passes");
        report.snapshot_pressure.rerun_identical = false;
        let err = report.check_regressions().unwrap_err();
        assert!(err.contains("rerun with the same seed diverged"), "{err}");

        let mut report = synthetic_report();
        for p in report.snapshot_pressure.points.iter_mut().skip(1) {
            p.evictions = 0;
        }
        let err = report.check_regressions().unwrap_err();
        assert!(err.contains("no constrained budget"), "{err}");

        let mut report = synthetic_report();
        report.snapshot_pressure.points[1].hits = 100;
        let err = report.check_regressions().unwrap_err();
        assert!(err.contains("not below unlimited"), "{err}");
    }

    #[test]
    fn dependency_sharing_grid_shows_combined_wins() {
        let ds = bench_dependency_sharing(&smoke_config(1));
        assert!(ds.sharing.forks > 0, "shared cells fork: {ds:?}");
        assert!(ds.sharing.forked_loads > 0, "resident modules acquired");
        assert_eq!(ds.baseline.forks, 0);
        assert_eq!(ds.deferral.forks, 0);
        assert!(ds.deferral.mean_cold_us <= ds.baseline.mean_cold_us);
        assert!(
            ds.sharing.mean_cold_us < ds.baseline.mean_cold_us,
            "sharing alone must beat baseline: {ds:?}"
        );
        assert!(
            ds.both.mean_cold_us < ds.deferral.mean_cold_us
                && ds.both.p99_cold_us < ds.deferral.p99_cold_us,
            "sharing+deferral must strictly beat deferral alone: {ds:?}"
        );
        assert!(ds.rerun_identical);
    }

    #[test]
    fn regression_gate_trips_on_sharing_losses() {
        let mut report = synthetic_report();
        report.dependency_sharing.both.mean_cold_us = 700;
        let err = report.check_regressions().unwrap_err();
        assert!(err.contains("combined mean"), "{err}");

        let mut report = synthetic_report();
        report.dependency_sharing.both.p99_cold_us = 1_500;
        let err = report.check_regressions().unwrap_err();
        assert!(err.contains("combined p99"), "{err}");

        let mut report = synthetic_report();
        report.dependency_sharing.sharing.forks = 0;
        let err = report.check_regressions().unwrap_err();
        assert!(err.contains("no cold start forked"), "{err}");

        let mut report = synthetic_report();
        report.dependency_sharing.rerun_identical = false;
        let err = report.check_regressions().unwrap_err();
        assert!(
            err.contains("dependency_sharing: rerun with the same seed diverged"),
            "{err}"
        );
    }

    #[test]
    fn regression_gate_trips_on_slow_current() {
        let mut report = run(&smoke_config(1));
        report
            .check_regressions()
            .expect("fresh run passes the gate");
        report.event_queue.current_ns = report.event_queue.legacy_ns * 4.0;
        let err = report.check_regressions().unwrap_err();
        assert!(err.contains("event_queue"), "{err}");
    }

    #[test]
    fn regression_gate_trips_on_broken_fleet_determinism() {
        let mut report = run(&smoke_config(1));
        report.fleet.reports_identical = false;
        report.fleet.chaos_reports_identical = false;
        let err = report.check_regressions().unwrap_err();
        assert!(err.contains("differs across swept thread counts"), "{err}");
        assert!(err.contains("chaos report JSON differs"), "{err}");
    }

    #[test]
    fn regression_gate_trips_on_lost_scaling() {
        let mut report = run(&smoke_config(2));
        for point in &mut report.fleet.sweep {
            point.apps_per_second = 10.0; // flat sweep: no parallel win
        }
        if report.fleet.sweep.len() > 1 {
            let err = report.check_regressions().unwrap_err();
            assert!(err.contains("below the"), "{err}");
        }
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate_json("{\"a\": [1, -2.5e3, true, null, \"s\\\"t\"]}").unwrap();
        validate_json("  {} ").unwrap();
        assert!(validate_json("{").is_err());
        assert!(validate_json("{\"a\": }").is_err());
        assert!(validate_json("[1, 2").is_err());
        assert!(validate_json("{} trailing").is_err());
        assert!(validate_json("nul").is_err());
        assert!(validate_json("\"open").is_err());
    }

    #[test]
    fn comparison_speedup_ratio() {
        let c = Comparison {
            legacy_ns: 100.0,
            current_ns: 25.0,
            iters: 10,
        };
        assert!((c.speedup() - 4.0).abs() < 1e-9);
    }
}
