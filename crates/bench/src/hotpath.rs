//! The `slimstart bench` hot-path harness.
//!
//! Wall-clock micro-benchmarks for the profiler's hot paths, each measuring
//! the **legacy** implementation (retained in-tree precisely so it can be
//! raced) against the **current** one *in the same process and run*:
//!
//! * **sampler** — per-sample stack capture: the legacy `Vec<Frame>` clone
//!   ([`CallStack::snapshot`]) vs the fingerprint-gated
//!   [`CaptureCache`](slimstart_core::sampler::CaptureCache) that reuses one
//!   `Arc<[Frame]>` allocation across identical stacks.
//! * **cct_merge** — merging one calling-context tree into another: the
//!   retained [`ReferenceCct`](slimstart_core::cct::reference::ReferenceCct)
//!   (per-sample re-insertion through a `HashMap` index) vs the arena
//!   [`Cct`](slimstart_core::Cct) (`insert_weighted` per node, fast-hash
//!   child index).
//! * **cold_start** — a full process cold start: building the import-closure
//!   [`LoaderPlan`](slimstart_pyrt::loader::LoaderPlan) per process
//!   ([`Process::new`]) vs sharing one prebuilt plan across processes
//!   ([`Process::with_plan`]), as the platform does per deployment.
//! * **snapshot_cold_start** — repeated same-deployment cold starts: the
//!   loader-plan replay vs restoring a memoized
//!   [`Snapshot`](slimstart_pyrt::snapshot::Snapshot), as the platform does
//!   for the second and later cold starts of a deployment.
//! * **event_queue** — a platform-shaped schedule/drain workload on the
//!   retained [`ReferenceEventQueue`](slimstart_simcore::event::reference::ReferenceEventQueue)
//!   binary heap vs the hierarchical timing-wheel
//!   [`EventQueue`](slimstart_simcore::event::EventQueue).
//! * **fleet** — end-to-end throughput: a small fleet run swept over
//!   `{1, max}` worker threads, reporting applications optimized per
//!   wall-clock second and the parallel scaling ratio.
//!
//! The numbers land in a hand-rolled JSON document (same writer idiom as the
//! fleet report) that `ci.sh` round-trips through [`validate_json`] in
//! `--smoke` mode. Wall-clock timing is inherently machine-dependent; the
//! per-op ratios are the stable signal.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use slimstart_appmodel::catalog::by_code;
use slimstart_appmodel::Application;
use slimstart_core::cct::reference::ReferenceCct;
use slimstart_core::profile::SampleRecord;
use slimstart_core::sampler::CaptureCache;
use slimstart_core::Cct;
use slimstart_fleet::{FleetConfig, FleetOrchestrator};
use slimstart_pyrt::loader::LoaderPlan;
use slimstart_pyrt::process::Process;
use slimstart_pyrt::stack::{CallStack, Frame, FrameKind};
use slimstart_simcore::event::reference::ReferenceEventQueue;
use slimstart_simcore::event::EventQueue;
use slimstart_simcore::rng::SimRng;
use slimstart_simcore::time::SimTime;

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Smoke mode: tiny iteration counts, suitable for CI (validates that
    /// the harness runs and emits well-formed JSON, not that numbers are
    /// stable).
    pub smoke: bool,
    /// Seed for the synthetic sample streams and the fleet run.
    pub seed: u64,
    /// Fleet worker threads.
    pub threads: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            smoke: false,
            seed: 2025,
            threads: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        }
    }
}

/// One legacy-vs-current comparison.
#[derive(Debug, Clone, Copy)]
pub struct Comparison {
    /// Mean ns/op of the legacy implementation.
    pub legacy_ns: f64,
    /// Mean ns/op of the current implementation.
    pub current_ns: f64,
    /// Iterations measured per variant.
    pub iters: u64,
}

impl Comparison {
    /// legacy / current — how many times faster the current path is.
    pub fn speedup(&self) -> f64 {
        if self.current_ns > 0.0 {
            self.legacy_ns / self.current_ns
        } else {
            f64::INFINITY
        }
    }
}

/// One point of the fleet thread sweep.
#[derive(Debug, Clone, Copy)]
pub struct FleetPoint {
    /// Worker threads used.
    pub threads: usize,
    /// Applications optimized per wall-clock second.
    pub apps_per_second: f64,
}

/// The harness result.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Config echo: smoke mode.
    pub smoke: bool,
    /// Config echo: seed.
    pub seed: u64,
    /// Per-sample stack capture.
    pub sampler: Comparison,
    /// CCT merge.
    pub cct_merge: Comparison,
    /// Process cold start (per-process plan vs shared plan).
    pub cold_start: Comparison,
    /// Repeated same-deployment cold start (loader replay vs snapshot
    /// restore).
    pub snapshot_cold_start: Comparison,
    /// Event-queue schedule/drain workload (reference heap vs timing
    /// wheel).
    pub event_queue: Comparison,
    /// Fleet size used for the throughput sweep.
    pub fleet_apps: usize,
    /// Fleet throughput at each swept thread count (ascending; `{1, max}`).
    pub fleet_sweep: Vec<FleetPoint>,
}

/// Times `op` over `iters` iterations (after one warm-up call) and returns
/// the mean ns/op.
fn time_ns<T>(iters: u64, mut op: impl FnMut() -> T) -> f64 {
    black_box(op());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(op());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// A plausibly-deep production stack: module init at the bottom, a chain of
/// calls above, as the sampler sees during a sampled cold start.
fn bench_stack() -> CallStack {
    let mut stack = CallStack::new();
    stack.push(
        FrameKind::ModuleInit(slimstart_appmodel::ModuleId::from_index(0)),
        1,
    );
    for i in 0..11 {
        stack.push(
            FrameKind::Call(slimstart_appmodel::FunctionId::from_index(i)),
            10 + i as u32,
        );
    }
    stack
}

fn bench_sampler(iters: u64) -> Comparison {
    let stack = bench_stack();
    // Legacy: every sample cloned the live stack into a fresh Vec.
    let legacy_ns = time_ns(iters, || {
        let path: Arc<[Frame]> = stack.snapshot().into();
        path
    });
    // Current: identical stacks hit the fingerprint fast path and share one
    // allocation.
    let mut cache = CaptureCache::new();
    let current_ns = time_ns(iters, || cache.capture(&stack));
    Comparison {
        legacy_ns,
        current_ns,
        iters,
    }
}

/// Synthesizes a sample stream shaped like a real profile: few distinct
/// call sites, moderate depth, heavy repetition.
fn synth_samples(n: usize, seed: u64) -> Vec<SampleRecord> {
    let mut rng = SimRng::seed_from(seed);
    let sites: Vec<Frame> = (0..48)
        .map(|i| Frame {
            kind: FrameKind::Call(slimstart_appmodel::FunctionId::from_index(i)),
            line: 10 + (i % 5) as u32,
        })
        .collect();
    (0..n)
        .map(|_| {
            let depth = 3 + rng.next_below(6);
            let path: Vec<Frame> = (0..depth)
                .map(|d| sites[(d * 5 + rng.next_below(6)) % sites.len()])
                .collect();
            SampleRecord {
                path: path.into(),
                is_init: rng.chance(0.3),
            }
        })
        .collect()
}

fn bench_cct_merge(samples: usize, iters: u64, seed: u64) -> Comparison {
    let left = synth_samples(samples, seed);
    let right = synth_samples(samples, seed ^ 0x5eed);

    let mut ref_a = ReferenceCct::new();
    let mut ref_b = ReferenceCct::new();
    let mut cur_a = Cct::new();
    let mut cur_b = Cct::new();
    for s in &left {
        ref_a.insert(&s.path, s.is_init);
        cur_a.insert(&s.path, s.is_init);
    }
    for s in &right {
        ref_b.insert(&s.path, s.is_init);
        cur_b.insert(&s.path, s.is_init);
    }

    let legacy_ns = time_ns(iters, || {
        let mut merged = ref_a.clone();
        merged.merge(&ref_b);
        merged.total_samples()
    });
    let current_ns = time_ns(iters, || {
        let mut merged = cur_a.clone();
        merged.merge(&cur_b);
        merged.total_samples()
    });
    Comparison {
        legacy_ns,
        current_ns,
        iters,
    }
}

fn bench_cold_start(iters: u64, seed: u64) -> Comparison {
    let built = by_code("R-GB")
        .expect("catalog entry R-GB exists")
        .build(seed)
        .expect("catalog app builds");
    let app: Arc<Application> = Arc::new(built.app);
    let root = built.app_module;

    // Legacy: every process analyzed the import graph afresh.
    let legacy_app = Arc::clone(&app);
    let legacy_ns = time_ns(iters, move || {
        let mut proc = Process::new(Arc::clone(&legacy_app), 1.0);
        proc.cold_start(root).expect("cold start succeeds")
    });

    // Current: the platform builds one plan per deployment and every
    // container's process shares it.
    let plan = Arc::new(LoaderPlan::build(&app));
    let current_ns = time_ns(iters, move || {
        let mut proc = Process::with_plan(Arc::clone(&app), Arc::clone(&plan), 1.0);
        proc.cold_start(root).expect("cold start succeeds")
    });
    Comparison {
        legacy_ns,
        current_ns,
        iters,
    }
}

fn bench_snapshot_cold_start(iters: u64, seed: u64) -> Comparison {
    let built = by_code("R-GB")
        .expect("catalog entry R-GB exists")
        .build(seed)
        .expect("catalog app builds");
    let app: Arc<Application> = Arc::new(built.app);
    let root = built.app_module;
    let plan = Arc::new(LoaderPlan::build(&app));

    // Legacy: every recurrent cold start of the deployment re-walks the
    // (shared) loader plan.
    let legacy_app = Arc::clone(&app);
    let legacy_plan = Arc::clone(&plan);
    let legacy_ns = time_ns(iters, move || {
        let mut proc = Process::with_plan(Arc::clone(&legacy_app), Arc::clone(&legacy_plan), 1.0);
        proc.cold_start(root).expect("cold start succeeds")
    });

    // Current: the platform memoizes the first replay and every later cold
    // start restores the snapshot.
    let snapshot = {
        let mut proc = Process::with_plan(Arc::clone(&app), Arc::clone(&plan), 1.0);
        proc.cold_start(root).expect("cold start succeeds");
        proc.capture_snapshot()
    };
    let current_ns = time_ns(iters, move || {
        let mut proc = Process::with_plan(Arc::clone(&app), Arc::clone(&plan), 1.0);
        proc.restore_snapshot(&snapshot)
    });
    Comparison {
        legacy_ns,
        current_ns,
        iters,
    }
}

/// A platform-shaped event trace: per step, an offset to schedule at
/// (mostly sub-second re-occupancies, a keep-alive tail minutes out) and a
/// virtual-time advance before draining what came due. Advances are bursty
/// — mostly sub-2 ms dispatch gaps with occasional idle stretches up to
/// 2 s — matching how the platform's reclamation queue sees time move.
fn event_workload(seed: u64, steps: usize) -> Vec<(u64, u64)> {
    let mut rng = SimRng::seed_from(seed);
    (0..steps)
        .map(|_| {
            let offset = match rng.next_below(20) {
                0..=13 => 1_000 + rng.next_below(999_000) as u64, // 1 ms – 1 s
                14..=18 => rng.next_below(60_000_000) as u64,     // up to 1 min
                _ => 600_000_000 + rng.next_below(600_000_000) as u64, // keep-alive tail
            };
            let advance = if rng.next_below(10) == 0 {
                rng.next_below(2_000_000) as u64 // idle gap, up to 2 s
            } else {
                rng.next_below(2_000) as u64 // busy dispatching
            };
            (offset, advance)
        })
        .collect()
}

fn bench_event_queue(iters: u64, seed: u64) -> Comparison {
    let trace = event_workload(seed, 16_384);

    // One op = pushing the whole trace through a fresh queue — schedule,
    // advance, drain-due — then draining the backlog, exactly the mix the
    // platform's expiry queue and the workload merger generate.
    let legacy_trace = trace.clone();
    let legacy_ns = time_ns(iters, move || {
        let mut q = ReferenceEventQueue::new();
        let mut buf: Vec<(SimTime, u64)> = Vec::new();
        let mut now = 0u64;
        let mut acc = 0u64;
        for &(offset, advance) in &legacy_trace {
            q.schedule(SimTime::from_micros(now + offset), offset);
            now += advance;
            q.pop_due_into(SimTime::from_micros(now), &mut buf);
            acc += buf.len() as u64;
        }
        q.pop_due_into(SimTime::MAX, &mut buf);
        for (t, _) in &buf {
            acc ^= t.as_micros();
        }
        acc
    });

    let current_ns = time_ns(iters, move || {
        let mut q = EventQueue::new();
        let mut buf: Vec<(SimTime, u64)> = Vec::new();
        let mut now = 0u64;
        let mut acc = 0u64;
        for &(offset, advance) in &trace {
            q.schedule(SimTime::from_micros(now + offset), offset);
            now += advance;
            q.pop_due_into(SimTime::from_micros(now), &mut buf);
            acc += buf.len() as u64;
        }
        q.pop_due_into(SimTime::MAX, &mut buf);
        for (t, _) in &buf {
            acc ^= t.as_micros();
        }
        acc
    });

    Comparison {
        legacy_ns,
        current_ns,
        iters,
    }
}

fn bench_fleet_at(config: &BenchConfig, threads: usize) -> FleetPoint {
    let (apps, cold_starts) = if config.smoke { (2, 10) } else { (8, 120) };
    let fleet = FleetConfig::default()
        .with_apps(apps)
        .with_threads(threads)
        .with_seed(config.seed)
        .with_cold_starts(cold_starts);
    let (_, stats) = FleetOrchestrator::new(fleet)
        .run()
        .expect("fleet run succeeds");
    FleetPoint {
        threads: stats.threads,
        apps_per_second: stats.apps_per_second,
    }
}

/// Sweeps the fleet over `{1, max}` worker threads (deduplicated when the
/// host has a single core), so the report always exposes the scaling
/// ratio rather than a single-thread blind spot.
fn bench_fleet_sweep(config: &BenchConfig) -> (usize, Vec<FleetPoint>) {
    let apps = if config.smoke { 2 } else { 8 };
    let max = config.threads.max(1);
    let mut sweep = vec![bench_fleet_at(config, 1)];
    if max > 1 {
        sweep.push(bench_fleet_at(config, max));
    }
    (apps, sweep)
}

/// Runs every measurement and assembles the report.
pub fn run(config: &BenchConfig) -> BenchReport {
    let (sampler_iters, merge_samples, merge_iters, cold_iters, snap_iters, event_iters) =
        if config.smoke {
            (10_000, 1_000, 3, 3, 20, 3)
        } else {
            (400_000, 20_000, 40, 120, 5_000, 200)
        };
    let sampler = bench_sampler(sampler_iters);
    let cct_merge = bench_cct_merge(merge_samples, merge_iters, config.seed);
    let cold_start = bench_cold_start(cold_iters, config.seed);
    let snapshot_cold_start = bench_snapshot_cold_start(snap_iters, config.seed);
    let event_queue = bench_event_queue(event_iters, config.seed);
    let (fleet_apps, fleet_sweep) = bench_fleet_sweep(config);
    BenchReport {
        smoke: config.smoke,
        seed: config.seed,
        sampler,
        cct_merge,
        cold_start,
        snapshot_cold_start,
        event_queue,
        fleet_apps,
        fleet_sweep,
    }
}

fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.2}")
    } else {
        "null".to_string()
    }
}

fn comparison_json(out: &mut String, key: &str, c: &Comparison) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "  \"{key}\": {{\n    \"legacy_ns_per_op\": {},\n    \"current_ns_per_op\": {},\n    \"speedup\": {},\n    \"iters\": {}\n  }}",
        num(c.legacy_ns),
        num(c.current_ns),
        num(c.speedup()),
        c.iters
    );
}

impl BenchReport {
    /// The named legacy-vs-current comparisons, in report order.
    pub fn comparisons(&self) -> [(&'static str, &Comparison); 5] {
        [
            ("sampler", &self.sampler),
            ("cct_merge", &self.cct_merge),
            ("cold_start", &self.cold_start),
            ("snapshot_cold_start", &self.snapshot_cold_start),
            ("event_queue", &self.event_queue),
        ]
    }

    /// Parallel scaling ratio of the fleet sweep: throughput at the highest
    /// swept thread count over throughput at one thread (1.0 on a
    /// single-core sweep).
    pub fn fleet_scaling(&self) -> f64 {
        match (self.fleet_sweep.first(), self.fleet_sweep.last()) {
            (Some(first), Some(last)) if first.apps_per_second > 0.0 => {
                last.apps_per_second / first.apps_per_second
            }
            _ => 1.0,
        }
    }

    /// The CI perf gate: every `current` implementation must stay within
    /// `3x` of its own in-run legacy baseline. Racing both variants in the
    /// same process makes the gate immune to machine speed — a failure
    /// means the current path itself regressed, not that CI got a slow
    /// runner.
    ///
    /// # Errors
    ///
    /// Returns a message naming every comparison whose `current_ns` exceeds
    /// `3 * legacy_ns`.
    pub fn check_regressions(&self) -> Result<(), String> {
        let offenders: Vec<String> = self
            .comparisons()
            .iter()
            .filter(|(_, c)| c.current_ns > 3.0 * c.legacy_ns)
            .map(|(name, c)| {
                format!(
                    "{name}: current {:.1} ns/op > 3x legacy {:.1} ns/op",
                    c.current_ns, c.legacy_ns
                )
            })
            .collect();
        if offenders.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "perf regression gate failed: {}",
                offenders.join("; ")
            ))
        }
    }

    /// Serializes the report. Stable key order; no external serializer.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(1536);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"slimstart-bench-hotpath/v2\",");
        let _ = writeln!(out, "  \"smoke\": {},", self.smoke);
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        for (key, c) in self.comparisons() {
            comparison_json(&mut out, key, c);
            out.push_str(",\n");
        }
        let _ = writeln!(
            out,
            "  \"fleet\": {{\n    \"apps\": {},\n    \"sweep\": [",
            self.fleet_apps
        );
        for (i, point) in self.fleet_sweep.iter().enumerate() {
            let _ = write!(
                out,
                "      {{\"threads\": {}, \"apps_per_second\": {}}}{}",
                point.threads,
                num(point.apps_per_second),
                if i + 1 < self.fleet_sweep.len() {
                    ",\n"
                } else {
                    "\n"
                }
            );
        }
        let _ = write!(
            out,
            "    ],\n    \"scaling\": {}\n  }}\n",
            num(self.fleet_scaling())
        );
        out.push_str("}\n");
        out
    }

    /// Human-readable summary for the terminal.
    pub fn render_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "hot-path bench (seed {}{})",
            self.seed,
            if self.smoke { ", smoke" } else { "" }
        );
        for (name, c) in [
            ("sampler capture", &self.sampler),
            ("cct merge", &self.cct_merge),
            ("cold start", &self.cold_start),
            ("snapshot restore", &self.snapshot_cold_start),
            ("event queue", &self.event_queue),
        ] {
            let _ = writeln!(
                out,
                "  {name:<16} legacy {:>10.1} ns/op   current {:>10.1} ns/op   {:>6.2}x",
                c.legacy_ns,
                c.current_ns,
                c.speedup()
            );
        }
        for point in &self.fleet_sweep {
            let _ = writeln!(
                out,
                "  {:<16} {} apps on {} thread(s): {:.2} apps/s",
                "fleet", self.fleet_apps, point.threads, point.apps_per_second
            );
        }
        let _ = writeln!(
            out,
            "  {:<16} {:.2}x across the thread sweep",
            "fleet scaling",
            self.fleet_scaling()
        );
        out
    }
}

/// A minimal JSON well-formedness checker (objects, arrays, strings,
/// numbers, booleans, null). `ci.sh` runs the smoke bench through this so a
/// writer regression fails the build without pulling in a JSON dependency.
///
/// # Errors
///
/// Returns a byte offset and message for the first syntax error.
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos),
        Some(b't') => parse_literal(bytes, pos, "true"),
        Some(b'f') => parse_literal(bytes, pos, "false"),
        Some(b'n') => parse_literal(bytes, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {c:#04x} at {pos}", pos = *pos)),
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        parse_value(bytes, pos)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 2; // escape plus escaped byte
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut saw_digit = false;
    while let Some(&c) = bytes.get(*pos) {
        if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-') {
            saw_digit |= c.is_ascii_digit();
            *pos += 1;
        } else {
            break;
        }
    }
    if saw_digit {
        Ok(())
    } else {
        Err(format!("malformed number at byte {start}"))
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("malformed literal at byte {pos}", pos = *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_report_is_well_formed_json() {
        let config = BenchConfig {
            smoke: true,
            seed: 7,
            threads: 2,
        };
        let report = run(&config);
        validate_json(&report.to_json()).expect("report JSON is well-formed");
        assert!(report.sampler.legacy_ns > 0.0);
        assert!(report.cct_merge.current_ns > 0.0);
        assert!(report.snapshot_cold_start.current_ns > 0.0);
        assert!(report.event_queue.current_ns > 0.0);
        assert!(!report.fleet_sweep.is_empty());
        assert!(report.fleet_sweep.iter().all(|p| p.apps_per_second > 0.0));
        assert!(report.fleet_scaling() > 0.0);
        assert!(report
            .to_json()
            .contains("\"schema\": \"slimstart-bench-hotpath/v2\""));
    }

    #[test]
    fn regression_gate_trips_on_slow_current() {
        let config = BenchConfig {
            smoke: true,
            seed: 7,
            threads: 1,
        };
        let mut report = run(&config);
        report
            .check_regressions()
            .expect("fresh run passes the gate");
        report.event_queue.current_ns = report.event_queue.legacy_ns * 4.0;
        let err = report.check_regressions().unwrap_err();
        assert!(err.contains("event_queue"), "{err}");
    }

    #[test]
    fn validator_accepts_and_rejects() {
        validate_json("{\"a\": [1, -2.5e3, true, null, \"s\\\"t\"]}").unwrap();
        validate_json("  {} ").unwrap();
        assert!(validate_json("{").is_err());
        assert!(validate_json("{\"a\": }").is_err());
        assert!(validate_json("[1, 2").is_err());
        assert!(validate_json("{} trailing").is_err());
        assert!(validate_json("nul").is_err());
        assert!(validate_json("\"open").is_err());
    }

    #[test]
    fn comparison_speedup_ratio() {
        let c = Comparison {
            legacy_ns: 100.0,
            current_ns: 25.0,
            iters: 10,
        };
        assert!((c.speedup() - 4.0).abs() < 1e-9);
    }
}
