//! Table IV: the SlimStart report for RainbowCake sentiment analysis (R-SA).
//!
//! The paper's case study: nltk contributes ~70 % of initialization latency
//! at only 5.33 % utilization; the sem/stem/parse/tag sub-modules add 26 %
//! of init time while unused. SlimStart lazy-loads them for a 1.35× init /
//! 1.33× end-to-end improvement and a 1.07× memory reduction.

use slimstart_appmodel::catalog::by_code;
use slimstart_bench::table::times;
use slimstart_bench::{cold_starts, run_catalog_app, seed};
use slimstart_core::report::render;

fn main() {
    let entry = by_code("R-SA").expect("R-SA in catalog");
    let run = run_catalog_app(&entry, cold_starts(), seed());
    let out = &run.outcome;

    println!("== Table IV: SLIMSTART report on Sentiment Analysis (R-SA) ==\n");
    // Note: the report is rendered against the *baseline* application the
    // profiler observed.
    let built = entry.build(seed()).expect("builds");
    println!("{}", render(&out.report, &built.app));

    println!("The Optimization:");
    if let Some(opt) = &out.optimization {
        for pkg in &opt.deferred_packages {
            println!("  lazy-loaded: {pkg}");
        }
        for (pkg, reason) in &opt.skipped {
            println!("  kept eager:  {pkg} ({reason:?})");
        }
        println!("\nCode edits:");
        for edit in &opt.edits {
            println!("{edit}\n");
        }
    }
    println!(
        "Result: init {} (paper 1.35x), e2e {} (paper 1.33x), memory {} (paper 1.07x)",
        times(out.speedup.load),
        times(out.speedup.e2e),
        times(out.speedup.mem)
    );
}
