//! Supplementary experiment: end-to-end value of the adaptive mechanism.
//!
//! The paper's Fig. 10 shows *when* adaptive profiling should fire (Δp
//! trends); this experiment closes the loop and measures *what it buys*.
//!
//! Timeline: ten 12-hour windows of cold-start-dominated traffic on
//! graph-bfs. At deployment time the `admin` entry point takes 35 % of
//! requests, so its `igraph.drawing` dependency is hot and stays eager.
//! From hour 48 the admin traffic vanishes — drawing is now dead weight on
//! every cold start.
//!
//! * **optimize-once** keeps the day-0 optimization forever (the paper's
//!   static-deployment strawman);
//! * **adaptive** runs the AdaptiveMonitor on live invocations; when
//!   `Σ|Δp| > ε` fires at a window boundary, it re-profiles under the
//!   currently observed mix and redeploys.

use std::sync::Arc;

use slimstart_appmodel::catalog::by_code;
use slimstart_appmodel::Application;
use slimstart_bench::seed;
use slimstart_bench::table::TextTable;
use slimstart_core::adaptive::AdaptiveMonitor;
use slimstart_core::config::AdaptiveConfig;
use slimstart_core::pipeline::{Pipeline, PipelineConfig};
use slimstart_platform::metrics::AppMetrics;
use slimstart_platform::platform::{Platform, PlatformConfig};
use slimstart_simcore::time::{SimDuration, SimTime};
use slimstart_workload::generator::generate;
use slimstart_workload::spec::WorkloadSpec;

const WINDOWS: usize = 10;
const DRIFT_AT_WINDOW: usize = 4; // hour 48
const COLDS_PER_WINDOW: usize = 40;

fn mix_at(window: usize) -> Vec<(String, f64)> {
    if window < DRIFT_AT_WINDOW {
        vec![("handler".to_string(), 0.65), ("admin".to_string(), 0.35)]
    } else {
        vec![("handler".to_string(), 1.0), ("admin".to_string(), 0.0)]
    }
}

/// Runs one window of cold-start traffic against `app`, returning metrics
/// and the per-handler invocation counts the monitor sees.
fn run_window(
    app: &Arc<Application>,
    window: usize,
    seed: u64,
) -> (AppMetrics, Vec<(slimstart_appmodel::HandlerId, SimTime)>) {
    let spec = WorkloadSpec::cold_starts_with_mix(&mix_at(window), COLDS_PER_WINDOW);
    let invs = generate(&spec, app, seed ^ (window as u64) << 8).expect("workload");
    let mut platform = Platform::new(
        Arc::clone(app),
        PlatformConfig::default().without_jitter(),
        seed,
    );
    let records = platform.run(&invs).expect("no faults");
    let metrics = AppMetrics::aggregate(records);
    let window_base = SimTime::ZERO + SimDuration::from_hours(12) * window as u64;
    let arrivals = invs
        .iter()
        .map(|i| {
            (
                i.handler,
                window_base + SimDuration::from_micros(i.at.as_micros() % (12 * 3_600_000_000)),
            )
        })
        .collect();
    (metrics, arrivals)
}

fn pipeline(seed: u64) -> Pipeline {
    Pipeline::new(PipelineConfig {
        cold_starts: 100,
        seed,
        platform: PlatformConfig::default().without_jitter(),
        ..PipelineConfig::default()
    })
}

fn main() {
    let seed = seed();
    let entry = by_code("R-GB").expect("graph-bfs");
    let built = entry.build(seed).expect("builds");

    println!("== Supplementary: adaptive re-optimization over a drifting timeline ==");
    println!("(graph-bfs; admin handler 35% -> 0% at hour 48; eps = 0.002)\n");

    // Day-0 optimization under the deployment-time mix.
    let day0 = pipeline(seed)
        .run(&built.app, &mix_at(0))
        .expect("day-0 pipeline");
    let static_app = Arc::clone(&day0.final_app);
    println!(
        "day-0 optimization defers: {:?}\n",
        day0.optimization
            .as_ref()
            .map(|o| o.deferred_packages.clone())
            .unwrap_or_default()
    );

    let mut adaptive_app = Arc::clone(&static_app);
    // At 40 requests per window the p_i(t) estimator is noisy, so the raw
    // eps = 0.002 would re-trigger on sampling noise every window; the
    // volume-aware guard keeps the trigger meaningful at low volume.
    let monitor_cfg = AdaptiveConfig {
        noise_guard: 2.0,
        ..AdaptiveConfig::default().with_volume_awareness()
    };
    let mut monitor = AdaptiveMonitor::new(monitor_cfg, built.app.handlers().len());

    let mut table = TextTable::new(vec![
        "window (h)",
        "admin share",
        "optimize-once e2e (ms)",
        "adaptive e2e (ms)",
        "note",
    ]);
    let mut static_total = 0.0;
    let mut adaptive_total = 0.0;
    let mut retriggers = 0usize;

    for w in 0..WINDOWS {
        let (static_metrics, _) = run_window(&static_app, w, seed);
        let (adaptive_metrics, arrivals) = run_window(&adaptive_app, w, seed);
        static_total += static_metrics.mean_e2e_ms;
        adaptive_total += adaptive_metrics.mean_e2e_ms;

        // Feed the live stream into the monitor.
        let mut fired = false;
        for (handler, at) in arrivals {
            if monitor.record(handler, at).is_some() {
                fired = true;
            }
        }
        // A window boundary may close on the first record of the *next*
        // window; force-evaluate at end of timeline too.
        if w == WINDOWS - 1 && monitor.flush().is_some() {
            fired = true;
        }

        let mut note = String::new();
        if fired {
            retriggers += 1;
            // Re-profile under the observed current mix and redeploy.
            let observed = mix_at(w);
            let re = pipeline(seed ^ 0xADA7)
                .run(&built.app, &observed)
                .expect("re-profiling pipeline");
            adaptive_app = Arc::clone(&re.final_app);
            note = format!(
                "re-optimized -> defers {:?}",
                re.optimization
                    .as_ref()
                    .map(|o| o.deferred_packages.clone())
                    .unwrap_or_default()
            );
        }

        table.row(vec![
            format!("{}", w * 12),
            format!("{:.0}%", mix_at(w)[1].1 * 100.0),
            format!("{:.1}", static_metrics.mean_e2e_ms),
            format!("{:.1}", adaptive_metrics.mean_e2e_ms),
            note,
        ]);
    }

    println!("{}", table.render());
    println!(
        "totals: optimize-once {:.1} ms/window vs adaptive {:.1} ms/window ({:.2}x); {} re-trigger(s)",
        static_total / WINDOWS as f64,
        adaptive_total / WINDOWS as f64,
        static_total / adaptive_total,
        retriggers
    );
    println!("\nThe stale deployment keeps paying igraph.drawing's init on every cold start");
    println!("after the drift; one adaptive re-profiling recovers the full Table II win.");
}
