//! Table III: SLIMSTART (measured) vs FaaSLight (reported).
//!
//! As in the paper, the FaaSLight side uses the numbers *published in the
//! FaaSLight paper* ("since we are unable to execute the optimized
//! FaaSLight applications directly, the comparison relies on the
//! performance data presented in the FaaSLight paper"); the SlimStart side
//! is measured on our deployment of the same five applications.

use slimstart_appmodel::catalog::by_code;
use slimstart_bench::table::TextTable;
use slimstart_bench::{cold_starts, run_catalog_app, seed};

/// FaaSLight's published before/after numbers (their Table: memory MB,
/// end-to-end latency ms), keyed by our catalog code.
const FAASLIGHT_REPORTED: &[(&str, &str, f64, f64, f64, f64)] = &[
    // (code, app id, mem before, mem after, e2e before, e2e after)
    (
        "FL-PMP",
        "App4 scikit-assign",
        142.0,
        140.0,
        4_534.38,
        4_004.10,
    ),
    ("FL-SN", "App7 skimage", 228.0, 130.0, 7_165.54, 4_152.73),
    (
        "FL-TWM",
        "App9 train-wine-ml",
        230.0,
        216.0,
        9_035.39,
        7_470.49,
    ),
    (
        "FL-PWM",
        "App9 predict-wine-ml",
        230.0,
        215.0,
        8_291.80,
        7_071.03,
    ),
    (
        "FL-SA",
        "App11 sentiment-analysis",
        182.0,
        141.0,
        5_551.03,
        3_934.31,
    ),
];

fn main() {
    let n = cold_starts();
    let seed = seed();
    println!("== Table III: SLIMSTART (measured) vs FaaSLight (reported) ==\n");

    let mut table = TextTable::new(vec![
        "App",
        "Tool",
        "Version",
        "Runtime memory (MB)",
        "End-to-end latency (ms)",
    ]);

    for &(code, app_id, fl_mem_before, fl_mem_after, fl_e2e_before, fl_e2e_after) in
        FAASLIGHT_REPORTED
    {
        let entry = by_code(code).expect("catalog entry");
        let run = run_catalog_app(&entry, n, seed);
        let out = &run.outcome;

        table.row(vec![
            format!("{app_id} ({code})"),
            "FaaSLight (Reported)".to_string(),
            "before".to_string(),
            format!("{fl_mem_before:.0}"),
            format!("{fl_e2e_before:.2}"),
        ]);
        table.row(vec![
            String::new(),
            String::new(),
            "after".to_string(),
            format!("{fl_mem_after:.0} ({:.2}x)", fl_mem_before / fl_mem_after),
            format!("{fl_e2e_after:.2} ({:.2}x)", fl_e2e_before / fl_e2e_after),
        ]);
        table.row(vec![
            String::new(),
            "SLIMSTART (Measured)".to_string(),
            "before".to_string(),
            format!("{:.2}", out.baseline.peak_mem_mb),
            format!("{:.2}", out.baseline.mean_e2e_ms),
        ]);
        table.row(vec![
            String::new(),
            String::new(),
            "after".to_string(),
            format!("{:.2} ({:.2}x)", out.optimized.peak_mem_mb, out.speedup.mem),
            format!("{:.2} ({:.2}x)", out.optimized.mean_e2e_ms, out.speedup.e2e),
        ]);
    }

    println!("{}", table.render());
    println!("(paper highlight: App11 — SlimStart 2.01x total-response speedup and 1.51x");
    println!(" memory reduction vs FaaSLight's 1.41x / 1.29x)");
}
