//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **CCT escalation on/off** — path-inclusive vs leaf-only sample
//!    attribution (§III TC-2, the Lib-1 orchestrator problem);
//! 2. **Init-sample filtering on/off** — classifying samples taken during
//!    module init (the Lib-4 problem);
//! 3. **Utilization-threshold sweep** — sensitivity of detection to the 2 %
//!    rare-use threshold;
//! 4. **Sampling-period sweep** — profiler overhead vs detection recall.

use std::collections::BTreeMap;
use std::sync::Arc;

use slimstart_appmodel::app::AppBuilder;
use slimstart_appmodel::catalog::by_code;
use slimstart_appmodel::function::{Stmt, StmtKind};
use slimstart_appmodel::{Application, ImportMode};
use slimstart_bench::table::TextTable;
use slimstart_bench::{cold_starts, seed};
use slimstart_core::config::{DetectorConfig, SamplerConfig};
use slimstart_core::detect::detect;
use slimstart_core::initprof::InitBreakdown;
use slimstart_core::pipeline::{Pipeline, PipelineConfig};
use slimstart_core::profile::{ProfileStore, SampleRecord};
use slimstart_core::sampler::SamplerAttachment;
use slimstart_core::utilization::Utilization;
use slimstart_platform::platform::{Platform, PlatformConfig};
use slimstart_simcore::time::SimDuration;
use slimstart_workload::generator::generate;
use slimstart_workload::spec::WorkloadSpec;

fn ms(n: u64) -> SimDuration {
    SimDuration::from_millis(n)
}

/// Profiles `app` under its workload and returns the collector store plus
/// baseline-equivalent e2e (profiled, close enough for ablations).
fn profile(
    app: &Application,
    mix: &[(String, f64)],
    colds: usize,
    sampler: SamplerConfig,
    seed: u64,
) -> (ProfileStore, f64, u64) {
    let store = ProfileStore::shared();
    let store_for_factory = Arc::clone(&store);
    let cfg = PlatformConfig::default()
        .without_jitter()
        .with_observer_factory(Arc::new(move || {
            Box::new(SamplerAttachment::new(
                sampler,
                Arc::clone(&store_for_factory),
            ))
        }));
    let mut platform = Platform::new(Arc::new(app.clone()), cfg, seed);
    let spec = WorkloadSpec::cold_starts_with_mix(mix, colds);
    let invs = generate(&spec, app, seed).expect("workload resolves");
    let records = platform.run(&invs).expect("no faults").to_vec();
    let e2e = records.iter().map(|r| r.e2e_ms()).sum::<f64>() / records.len() as f64;
    let colds = records.iter().filter(|r| r.cold).count() as u64;
    let store = store.lock().clone();
    (store, e2e, colds)
}

/// Leaf-only utilization: the conventional flat profile (no escalation).
fn leaf_only_package_utilization(
    samples: &[SampleRecord],
    app: &Application,
) -> BTreeMap<String, f64> {
    let mut counts: BTreeMap<String, u64> = BTreeMap::new();
    let mut total = 0u64;
    for s in samples {
        if s.is_init {
            continue;
        }
        total += 1;
        let leaf_module = s.leaf().module(app);
        let name = app.module(leaf_module).name();
        let bytes = name.as_bytes();
        for i in 0..=bytes.len() {
            if i == bytes.len() || bytes[i] == b'.' {
                *counts.entry(name[..i].to_string()).or_insert(0) += 1;
            }
        }
    }
    counts
        .into_iter()
        .map(|(k, c)| (k, c as f64 / total.max(1) as f64))
        .collect()
}

/// Orchestrator demo app (Lib-1): `orch` does tiny dispatch work, `worker`
/// burns the cycles. A flat profile starves `orch` of samples.
fn orchestrator_app() -> (Application, Vec<(String, f64)>) {
    let mut b = AppBuilder::new("orchestrator-demo");
    let l_orch = b.add_library("orch");
    let l_worker = b.add_library("worker");
    let h = b.add_app_module("handler", ms(1), 64);
    let orch = b.add_library_module("orch", ms(30), 512, false, l_orch);
    let worker = b.add_library_module("worker", ms(30), 512, false, l_worker);
    b.add_import(h, orch, 2, ImportMode::Global).unwrap();
    b.add_import(h, worker, 3, ImportMode::Global).unwrap();
    let f_crunch = b.add_function(
        "crunch",
        worker,
        10,
        vec![Stmt {
            line: 11,
            kind: StmtKind::Work(ms(99)),
        }],
    );
    let f_orch = b.add_function(
        "orchestrate",
        orch,
        10,
        vec![
            Stmt {
                line: 11,
                kind: StmtKind::Work(ms(1)), // 1 % self time
            },
            Stmt {
                line: 12,
                kind: StmtKind::call(f_crunch),
            },
        ],
    );
    let f_main = b.add_function(
        "main",
        h,
        4,
        vec![Stmt {
            line: 5,
            kind: StmtKind::call(f_orch),
        }],
    );
    b.add_handler("handler", f_main);
    (b.finish().unwrap(), vec![("handler".to_string(), 1.0)])
}

/// Lib-4 demo app: `heavy` has a huge init and is never used at runtime.
fn init_only_app() -> (Application, Vec<(String, f64)>) {
    let mut b = AppBuilder::new("init-only-demo");
    let l_heavy = b.add_library("heavy");
    let l_small = b.add_library("small");
    let h = b.add_app_module("handler", ms(1), 64);
    let heavy = b.add_library_module("heavy", ms(400), 4_096, false, l_heavy);
    let small = b.add_library_module("small", ms(5), 128, false, l_small);
    b.add_import(h, heavy, 2, ImportMode::Global).unwrap();
    b.add_import(h, small, 3, ImportMode::Global).unwrap();
    let f_small = b.add_function(
        "serve",
        small,
        10,
        vec![Stmt {
            line: 11,
            kind: StmtKind::Work(ms(40)),
        }],
    );
    let f_main = b.add_function(
        "main",
        h,
        4,
        vec![Stmt {
            line: 5,
            kind: StmtKind::call(f_small),
        }],
    );
    b.add_handler("handler", f_main);
    (b.finish().unwrap(), vec![("handler".to_string(), 1.0)])
}

fn ablation_escalation(colds: usize, seed: u64) {
    println!("-- Ablation 1: CCT escalation (path-inclusive) vs flat (leaf-only) attribution --\n");
    let (app, mix) = orchestrator_app();
    let (store, _, _) = profile(&app, &mix, colds, SamplerConfig::default(), seed);
    let inclusive = Utilization::from_samples(store.samples.iter(), &app);
    let flat = leaf_only_package_utilization(&store.samples, &app);

    let mut t = TextTable::new(vec!["Package", "U (escalated)", "U (flat)", "flat verdict"]);
    for pkg in ["orch", "worker"] {
        let u_inc = inclusive.package(pkg);
        let u_flat = flat.get(pkg).copied().unwrap_or(0.0);
        t.row(vec![
            pkg.to_string(),
            format!("{:.1}%", u_inc * 100.0),
            format!("{:.1}%", u_flat * 100.0),
            if u_flat < 0.02 {
                "FALSELY flagged rare".to_string()
            } else {
                "ok".to_string()
            },
        ]);
    }
    println!("{}", t.render());
    println!("Without escalation the orchestrator library collects ~1% of samples and would");
    println!("be lazy-loaded even though it coordinates every request (paper Fig. 5, Lib-1).\n");
}

fn ablation_init_filter(colds: usize, seed: u64) {
    println!("-- Ablation 2: init-sample filtering on/off --\n");
    let (app, mix) = init_only_app();
    let (store, e2e, cold_count) = profile(&app, &mix, colds, SamplerConfig::default(), seed);

    // With filtering (SlimStart): init samples excluded from utilization.
    let filtered = Utilization::from_samples(store.samples.iter(), &app);
    // Without filtering: treat every sample as runtime.
    let unfiltered_samples: Vec<SampleRecord> = store
        .samples
        .iter()
        .map(|s| SampleRecord {
            path: s.path.clone(),
            is_init: false,
        })
        .collect();
    let unfiltered = Utilization::from_samples(unfiltered_samples.iter(), &app);

    let breakdown =
        InitBreakdown::from_store(&store, &app, cold_count, SimDuration::from_millis_f64(e2e));
    let det = DetectorConfig::default();
    let with_filter = detect(&app, &breakdown, &filtered, &det);
    let without_filter = detect(&app, &breakdown, &unfiltered, &det);

    let mut t = TextTable::new(vec!["Variant", "U(heavy)", "heavy flagged?"]);
    t.row(vec![
        "init filtering ON (SlimStart)".to_string(),
        format!("{:.1}%", filtered.package("heavy") * 100.0),
        with_filter
            .findings
            .iter()
            .any(|f| f.package == "heavy")
            .to_string(),
    ]);
    t.row(vec![
        "init filtering OFF".to_string(),
        format!("{:.1}%", unfiltered.package("heavy") * 100.0),
        without_filter
            .findings
            .iter()
            .any(|f| f.package == "heavy")
            .to_string(),
    ]);
    println!("{}", t.render());
    println!("Init-phase samples make the never-used `heavy` library look active; only");
    println!("filtering them exposes the optimization opportunity (paper Fig. 5, Lib-4).\n");
}

fn ablation_threshold_sweep(colds: usize, seed: u64) {
    println!("-- Ablation 3: rare-use threshold sweep (CVE-bin-tool) --\n");
    let entry = by_code("CVE").expect("catalog");
    let built = entry.build(seed).expect("builds");
    let mut t = TextTable::new(vec![
        "threshold",
        "findings",
        "detected init share",
        "xmlschema flagged?",
    ]);
    for threshold in [0.0, 0.005, 0.01, 0.02, 0.05, 0.10] {
        let config = PipelineConfig {
            cold_starts: colds,
            seed,
            detector: DetectorConfig {
                rare_threshold: threshold,
                ..DetectorConfig::default()
            },
            ..PipelineConfig::default()
        };
        let out = Pipeline::new(config)
            .run(&built.app, &entry.workload_weights())
            .expect("pipeline runs");
        t.row(vec![
            format!("{:.1}%", threshold * 100.0),
            out.report.findings.len().to_string(),
            format!("{:.1}%", out.report.detected_init_fraction() * 100.0),
            out.report
                .findings
                .iter()
                .any(|f| f.package == "xmlschema")
                .to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Below ~1% the threshold misses xmlschema (0.78% utilization); far above 2%");
    println!("it starts flagging genuinely used packages. The paper's 2% sits in the knee.\n");
}

fn ablation_period_sweep(colds: usize, seed: u64) {
    println!("-- Ablation 4: sampling-period sweep (graph-bfs) --\n");
    let entry = by_code("R-GB").expect("catalog");
    let built = entry.build(seed).expect("builds");
    let mut t = TextTable::new(vec!["period (ms)", "overhead", "findings", "samples"]);
    for period_ms in [1u64, 2, 5, 10, 20, 50] {
        let config = PipelineConfig {
            cold_starts: colds,
            seed,
            sampler: SamplerConfig::default().with_period(ms(period_ms)),
            ..PipelineConfig::default()
        };
        let out = Pipeline::new(config)
            .run(&built.app, &entry.workload_weights())
            .expect("pipeline runs");
        t.row(vec![
            period_ms.to_string(),
            format!("{:.2}%", (out.profiler_overhead() - 1.0) * 100.0),
            out.report.findings.len().to_string(),
            out.cct.total_samples().to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("Finer sampling raises overhead roughly linearly while detection saturates —");
    println!("the default 5 ms period keeps overhead within Fig. 9's budget.\n");
}

fn main() {
    let colds = cold_starts().min(200);
    let seed = seed();
    println!("== Ablation studies (seed {seed}, {colds} cold starts) ==\n");
    ablation_escalation(colds, seed);
    ablation_init_filter(colds, seed);
    ablation_threshold_sweep(colds, seed);
    ablation_period_sweep(colds, seed);
}
