//! Table II: summary of performance improvement across the 17 applications
//! that clear the 10 % initialization-overhead gate.
//!
//! For each application: program information (library, type, module counts,
//! average depth) and the measured initialization / end-to-end speedups,
//! mean and 99th percentile, side by side with the paper's published
//! numbers.

use slimstart_appmodel::catalog::catalog;
use slimstart_bench::table::{times, TextTable};
use slimstart_bench::{cold_starts, run_catalog_app_averaged, runs, seed};

fn main() {
    let n = cold_starts();
    let seed = seed();
    let runs = runs();
    println!("== Table II: summary of performance improvement ==");
    println!("(Init speedup = library loading, the paper's metric; Cold-start = full");
    println!(" init incl. container provisioning and runtime startup)");
    println!(
        "({n} cold starts per run, {runs} run(s) averaged, seed {seed}; paper numbers in parentheses)\n"
    );

    let mut table = TextTable::new(vec![
        "App",
        "Library",
        "Type",
        "#libs",
        "#mods",
        "depth",
        "Init speedup",
        "E2E speedup",
        "p99 init",
        "p99 e2e",
        "Cold-start",
    ]);

    let mut detected = 0usize;
    let mut max_init: f64 = 0.0;
    let mut max_e2e: f64 = 0.0;

    for entry in catalog() {
        let (run, speedup) = run_catalog_app_averaged(&entry, n, seed, runs);
        let out = &run.outcome;
        if !out.report.gate_passed {
            continue;
        }
        detected += 1;
        max_init = max_init.max(speedup.load);
        max_e2e = max_e2e.max(speedup.e2e);

        let built = entry.build(seed).expect("builds");
        table.row(vec![
            entry.code.to_string(),
            entry.main_library.to_string(),
            entry.lib_type.to_string(),
            entry.n_libs.to_string(),
            entry.n_modules.to_string(),
            format!("{:.2}", built.app.avg_module_depth()),
            format!(
                "{} ({})",
                times(speedup.load),
                times(entry.paper.init_speedup)
            ),
            format!(
                "{} ({})",
                times(speedup.e2e),
                times(entry.paper.e2e_speedup)
            ),
            format!(
                "{} ({})",
                times(speedup.p99_load),
                times(entry.paper.p99_init_speedup)
            ),
            format!(
                "{} ({})",
                times(speedup.p99_e2e),
                times(entry.paper.p99_e2e_speedup)
            ),
            times(speedup.init),
        ]);
    }

    println!("{}", table.render());
    println!("inefficiencies detected in {detected}/22 applications (paper: 17/22)");
    println!(
        "max init speedup {} (paper 2.30x), max e2e speedup {} (paper 2.26x)",
        times(max_init),
        times(max_e2e)
    );
}
