//! Supplementary experiment: SlimStart under realistic mixed traffic, and
//! its composition with platform-level pre-warming.
//!
//! The paper evaluates forced cold starts (its Table II methodology) and
//! positions itself as *complementary* to platform-level mitigations such
//! as pre-warmed instances (§VII). This experiment quantifies both claims
//! on the simulator:
//!
//! 1. under bursty Poisson traffic with a 10-minute keep-alive, only a
//!    fraction of requests cold-start, so the end-to-end win shrinks from
//!    the all-cold Table II number toward 1× as the warm ratio grows;
//! 2. adding a pre-warmed pool helps both deployments, and the *combined*
//!    configuration (pool + SlimStart) is the best of all four — the
//!    optimizations compose.

use std::sync::Arc;

use slimstart_appmodel::catalog::by_code;
use slimstart_appmodel::Application;
use slimstart_bench::seed;
use slimstart_bench::table::TextTable;
use slimstart_core::pipeline::{Pipeline, PipelineConfig};
use slimstart_platform::metrics::AppMetrics;
use slimstart_platform::platform::{Platform, PlatformConfig};
use slimstart_simcore::time::SimDuration;
use slimstart_workload::generator::generate;
use slimstart_workload::spec::{ArrivalProcess, HandlerMix, WorkloadSpec};

fn run_traffic(
    app: Arc<Application>,
    spec: &WorkloadSpec,
    prewarm: usize,
    seed: u64,
) -> AppMetrics {
    let invs = generate(spec, &app, seed).expect("workload resolves");
    let mut platform = Platform::new(Arc::clone(&app), PlatformConfig::default(), seed);
    if prewarm > 0 {
        let handler = app.handler_by_name("handler").expect("handler");
        platform.prewarm(prewarm, handler).expect("prewarm");
    }
    AppMetrics::aggregate(platform.run(&invs).expect("no faults"))
}

fn main() {
    let seed = seed();
    let entry = by_code("R-GB").expect("graph-bfs");
    let built = entry.build(seed).expect("builds");

    // Optimize once with the paper's pipeline.
    let outcome = Pipeline::new(PipelineConfig {
        cold_starts: 200,
        seed,
        ..PipelineConfig::default()
    })
    .run(&built.app, &entry.workload_weights())
    .expect("pipeline runs");
    let baseline_app = Arc::new(built.app.clone());
    let optimized_app = Arc::clone(&outcome.final_app);

    println!("== Supplementary: mixed traffic and pre-warming composition (R-GB) ==\n");

    // Sweep arrival rates: sparser traffic → more cold starts.
    println!("-- Poisson traffic sweep (no pre-warming) --\n");
    let mut sweep = TextTable::new(vec![
        "arrivals/min",
        "cold ratio",
        "baseline e2e (ms)",
        "slimstart e2e (ms)",
        "e2e speedup",
    ]);
    for per_min in [0.05f64, 0.2, 1.0, 6.0, 30.0] {
        let spec = WorkloadSpec {
            handlers: vec![HandlerMix {
                name: "handler".into(),
                weight: 1.0,
            }],
            arrival: ArrivalProcess::Poisson {
                rate_per_sec: per_min / 60.0,
                duration: SimDuration::from_hours(6),
            },
        };
        let base = run_traffic(Arc::clone(&baseline_app), &spec, 0, seed);
        let opt = run_traffic(Arc::clone(&optimized_app), &spec, 0, seed);
        let cold_ratio = base.cold_starts as f64 / base.invocations.max(1) as f64;
        sweep.row(vec![
            format!("{per_min}"),
            format!("{:.1}%", cold_ratio * 100.0),
            format!("{:.1}", base.mean_e2e_ms),
            format!("{:.1}", opt.mean_e2e_ms),
            format!("{:.2}x", base.mean_e2e_ms / opt.mean_e2e_ms),
        ]);
    }
    println!("{}", sweep.render());
    println!("Sparse traffic is all cold starts (the Table II regime); dense traffic is");
    println!("mostly warm and the win converges toward 1x — cold starts are the target.\n");

    // Composition with a pre-warmed pool under bursty traffic.
    println!("-- Composition with a pre-warmed pool (1 request / 8 min, 12 h) --\n");
    let spec = WorkloadSpec {
        handlers: vec![HandlerMix {
            name: "handler".into(),
            weight: 1.0,
        }],
        arrival: ArrivalProcess::Poisson {
            rate_per_sec: 1.0 / 480.0, // sparse: most requests cold-start
            duration: SimDuration::from_hours(12),
        },
    };
    let mut combo = TextTable::new(vec![
        "configuration",
        "cold ratio",
        "mean e2e (ms)",
        "p99 e2e (ms)",
    ]);
    let configs: [(&str, Arc<Application>, usize); 4] = [
        ("baseline", Arc::clone(&baseline_app), 0),
        ("baseline + prewarm(2)", Arc::clone(&baseline_app), 2),
        ("slimstart", Arc::clone(&optimized_app), 0),
        ("slimstart + prewarm(2)", Arc::clone(&optimized_app), 2),
    ];
    let mut results = Vec::new();
    for (name, app, pool) in configs {
        let m = run_traffic(app, &spec, pool, seed);
        combo.row(vec![
            name.to_string(),
            format!(
                "{:.1}%",
                m.cold_starts as f64 / m.invocations.max(1) as f64 * 100.0
            ),
            format!("{:.1}", m.mean_e2e_ms),
            format!("{:.1}", m.p99_e2e_ms),
        ]);
        results.push((name, m.mean_e2e_ms));
    }
    println!("{}", combo.render());
    let best = results
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("non-empty");
    println!("best configuration: {}", best.0);
    println!("An unreplenished pool only absorbs the first burst; SlimStart keeps helping");
    println!("every recurring cold start — and the combination is never worse than either");
    println!("alone (paper §VII: application-level work is complementary to runtime work).");
}
