//! Figure 1: ratio of library initialization time to end-to-end time.
//!
//! The paper's motivation study: for the majority of serverless
//! applications, library initialization contributes more than 70 % of total
//! end-to-end time on a cold start. We deploy every catalog application
//! unmodified, execute the cold-start series, and report the measured
//! breakdown.

use slimstart_appmodel::catalog::catalog;
use slimstart_bench::table::{pct, TextTable};
use slimstart_bench::{cold_starts, seed};
use slimstart_core::pipeline::{Pipeline, PipelineConfig};

fn main() {
    let n = cold_starts();
    let seed = seed();
    println!("== Figure 1: library initialization vs end-to-end time ==");
    println!("({n} cold starts per application, seed {seed})\n");

    let mut table = TextTable::new(vec![
        "App",
        "Suite",
        "Lib init (ms)",
        "End-to-end (ms)",
        "Init ratio",
    ]);
    let mut above_70 = 0usize;
    let mut total = 0usize;

    for entry in catalog() {
        let built = entry.build(seed).expect("catalog entry builds");
        let config = PipelineConfig {
            cold_starts: n,
            seed,
            ..PipelineConfig::default()
        };
        let outcome = Pipeline::new(config)
            .run(&built.app, &entry.workload_weights())
            .expect("pipeline runs");
        let ratio = outcome.baseline.mean_load_ms / outcome.baseline.mean_e2e_ms;
        total += 1;
        if ratio > 0.70 {
            above_70 += 1;
        }
        table.row(vec![
            entry.code.to_string(),
            entry.suite.label().to_string(),
            format!("{:.1}", outcome.baseline.mean_load_ms),
            format!("{:.1}", outcome.baseline.mean_e2e_ms),
            pct(ratio),
        ]);
    }

    println!("{}", table.render());
    println!(
        "{above_70}/{total} applications spend >70% of end-to-end time in library initialization"
    );
    println!("(paper: \"for the majority of serverless applications, library initialization");
    println!(" contributes to more than 70% of the total end-to-end time\")");
}
