//! Figure 3: production-trace statistics.
//!
//! (1) PDF of serverless applications by number of handler functions — the
//! paper reports 54 % of apps have more than one entry function.
//! (2) CDF of entry-point invocation frequencies by popularity rank — the
//! top few handlers account for over 80 % of cumulative invocations.

use slimstart_bench::seed;
use slimstart_bench::table::TextTable;
use slimstart_workload::trace::{ProductionTrace, TraceConfig};

fn main() {
    let trace = ProductionTrace::generate(TraceConfig::default(), seed());
    println!("== Figure 3: production trace (119 apps, 14 days) ==\n");

    println!("(1) PDF of applications by number of handler functions");
    let mut pdf = TextTable::new(vec!["# handlers", "fraction of apps", "bar"]);
    for (count, frac) in trace.handler_count_pdf() {
        pdf.row(vec![
            count.to_string(),
            format!("{:.3}", frac),
            "#".repeat((frac * 100.0).round() as usize),
        ]);
    }
    println!("{}", pdf.render());
    println!(
        "multi-handler fraction: {:.1}%  (paper: 54% of apps have >1 entry function)\n",
        trace.multi_handler_fraction() * 100.0
    );

    println!("(2) CDF of entry-point invocations by popularity rank");
    let cdf = trace.invocation_cdf_by_rank();
    let mut cdf_table = TextTable::new(vec!["top-k handlers", "cumulative share", "bar"]);
    for (rank, share) in cdf.iter().enumerate().take(10) {
        cdf_table.row(vec![
            (rank + 1).to_string(),
            format!("{:.3}", share),
            "#".repeat((share * 50.0).round() as usize),
        ]);
    }
    println!("{}", cdf_table.render());
    println!(
        "top-3 handlers cover {:.1}% of invocations  (paper: top few handlers >80%)",
        cdf.get(2).copied().unwrap_or(1.0) * 100.0
    );
    println!("\nObservation 3: handler usage is highly skewed — libraries tied to");
    println!("rarely-invoked entry points are workload-dependent dead weight.");
}
