//! Figure 10: adaptive profiling over the production trace.
//!
//! Trends in mean Δp_i(t) and the percentage of applications exceeding the
//! threshold ε = 0.002 at a 12-hour interval. Most windows are stable;
//! peaks around hours 144 and 228 mark genuine workload shifts — exactly
//! when adaptive profiling should fire.

use slimstart_bench::seed;
use slimstart_bench::table::TextTable;
use slimstart_core::adaptive::AdaptiveMonitor;
use slimstart_core::config::AdaptiveConfig;
use slimstart_workload::trace::{ProductionTrace, TraceConfig};

fn main() {
    let epsilon = 0.002;
    let trace = ProductionTrace::generate(TraceConfig::default(), seed());
    println!("== Figure 10: adaptive profiling on the production trace ==");
    println!("(119 apps, 14 days, 12 h windows, epsilon = {epsilon})\n");

    let timeline = trace.delta_p_timeline(epsilon);
    let mut table = TextTable::new(vec!["hour", "mean dp", "% apps > eps", "bar"]);
    for (w, (mean, frac)) in timeline.iter().enumerate() {
        table.row(vec![
            (w * 12).to_string(),
            format!("{mean:.5}"),
            format!("{:.1}%", frac * 100.0),
            "#".repeat((frac * 60.0).round() as usize),
        ]);
    }
    println!("{}", table.render());

    let stable: Vec<usize> = timeline
        .iter()
        .enumerate()
        .filter(|(i, (_, frac))| *i > 0 && *frac < 0.10)
        .map(|(i, _)| i)
        .collect();
    let spikes: Vec<usize> = timeline
        .iter()
        .enumerate()
        .filter(|(_, (_, frac))| *frac >= 0.10)
        .map(|(i, _)| i * 12)
        .collect();
    println!(
        "stable windows: {}/{}; shift spikes at hours {:?} (paper: ~144 h and ~228 h)",
        stable.len(),
        timeline.len() - 1,
        spikes
    );

    // Cross-check with the online monitor on a representative traced app:
    // feed its per-window counts through AdaptiveMonitor.
    // Pick an app that actually shifts at hour 144.
    let app = trace
        .apps()
        .iter()
        .max_by(|a, b| {
            a.delta_p(12)
                .partial_cmp(&b.delta_p(12))
                .expect("finite deltas")
        })
        .expect("apps exist");
    let config = AdaptiveConfig::default();
    let mut monitor = AdaptiveMonitor::new(config, app.handler_count);
    let window = config.window;
    for (w, counts) in app.counts.iter().enumerate() {
        let start = slimstart_simcore::time::SimTime::ZERO + window * w as u64;
        for (h, c) in counts.iter().enumerate() {
            for _ in 0..*c {
                monitor.record(slimstart_appmodel::HandlerId::from_index(h), start);
            }
        }
    }
    monitor.flush();
    println!(
        "\nonline monitor on the most-shifted app: {} profiling trigger(s) over {} windows",
        monitor.trigger_count(),
        monitor.history().len()
    );
}
