//! Figure 9: runtime overhead of the SlimStart profiler.
//!
//! The paper measures the runtime ratio with and without the profiler on
//! 18 applications from the three benchmark suites (the real-world apps are
//! excluded) and finds most below 10 % overhead. We run the identical
//! cold-start series against the unprofiled and profiled deployments and
//! report the inflation.

use slimstart_appmodel::catalog::{catalog, Suite};
use slimstart_bench::table::TextTable;
use slimstart_bench::{cold_starts, run_catalog_app, seed};

fn main() {
    let n = cold_starts();
    let seed = seed();
    println!("== Figure 9: SlimStart-Profiler runtime overhead ==");
    println!("(default sampling period 5 ms; {n} requests per app)\n");

    let mut table = TextTable::new(vec!["App", "Suite", "Overhead", "bar"]);
    let mut worst: f64 = 0.0;
    let mut count = 0usize;
    let mut below_10 = 0usize;

    for entry in catalog()
        .into_iter()
        .filter(|e| e.suite != Suite::RealWorld)
    {
        let run = run_catalog_app(&entry, n, seed);
        let overhead = run.outcome.profiler_overhead() - 1.0;
        worst = worst.max(overhead);
        count += 1;
        if overhead <= 0.10 {
            below_10 += 1;
        }
        table.row(vec![
            entry.code.to_string(),
            entry.suite.label().to_string(),
            format!("{:.2}%", overhead * 100.0),
            "#".repeat((overhead * 300.0).max(0.0).round() as usize),
        ]);
    }

    println!("{}", table.render());
    println!(
        "{below_10}/{count} apps at or below 10% overhead; worst {:.2}%",
        worst * 100.0
    );
    println!("(paper: most serverless applications experience a maximum overhead of 10%)");
}
