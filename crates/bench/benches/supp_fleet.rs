//! Supplementary experiment: fleet-scale optimization sweep.
//!
//! The paper evaluates one application at a time (Table II); a production
//! deployment optimizes *fleets* of functions. This experiment fans the
//! catalog population across the fleet orchestrator's worker pool and
//! reports the fleet-wide speedup distributions — the per-app rows stay
//! byte-identical regardless of `SLIMSTART_THREADS`, so the wall-clock
//! line is the only nondeterministic output.
//!
//! Knobs: `SLIMSTART_FLEET_APPS` (default 44 — two catalog cycles), plus
//! the shared `SLIMSTART_COLD_STARTS` / `SLIMSTART_SEED` /
//! `SLIMSTART_RUNS` / `SLIMSTART_THREADS`.

use slimstart_bench::run_fleet;

fn main() {
    let apps = std::env::var("SLIMSTART_FLEET_APPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|n| *n > 0)
        .unwrap_or(44);

    println!("== Supplementary: fleet-scale optimization sweep ==\n");
    let (report, stats) = run_fleet(apps);
    println!("{}", report.render_text());
    println!("{stats}");
}
