//! Table I: the motivating example — graph_bfs importing unused igraph
//! drawing modules.
//!
//! Reproduces the paper's §II-A study: the RainbowCake graph-bfs
//! application imports `igraph`, whose package `__init__` eagerly imports
//! its visualization subtree. The drawing modules contribute ~37 % of
//! initialization time while the BFS workload never touches them; manually
//! (here: automatically) disabling them yields the ~1.65× library-init
//! improvement the paper reports.

use slimstart_appmodel::catalog::by_code;
use slimstart_appmodel::source::render_module;
use slimstart_bench::{cold_starts, seed};
use slimstart_core::pipeline::{Pipeline, PipelineConfig};
use slimstart_core::report::import_path;

fn main() {
    let seed = seed();
    let entry = by_code("R-GB").expect("graph-bfs in catalog");
    let built = entry.build(seed).expect("builds");
    let app = &built.app;

    println!("== Table I: importing unused libraries in graph_bfs ==\n");

    // The drawing subtree's share of the library's init cost.
    let igraph = &built.libraries["igraph"];
    let drawing = &igraph.subpackages["drawing"];
    let lib_init: f64 = app
        .library(igraph.id)
        .modules()
        .iter()
        .map(|m| app.module(*m).init_cost().as_millis_f64())
        .sum();
    let drawing_init: f64 = drawing
        .modules
        .iter()
        .map(|m| app.module(*m).init_cost().as_millis_f64())
        .sum();
    println!(
        "igraph drawing subtree: {:.1} ms of {:.1} ms library init ({:.1}%)",
        drawing_init,
        lib_init,
        100.0 * drawing_init / lib_init
    );
    println!("(paper: igraph's visualization tools contribute 37% of init time)\n");

    // The import chain that drags the drawing modules in.
    println!("Call Path");
    let handler_mod = app.module_by_name("handler").expect("handler module");
    let hops = import_path(app, handler_mod, "igraph.drawing").expect("reachable");
    for (i, (file, line)) in hops.iter().enumerate() {
        let prefix = if i == 0 { "  " } else { "  -> " };
        println!("{prefix}{file}:{line}");
    }

    // The offending source, before optimization.
    println!("\n--- igraph/__init__.py (before) ---");
    let root = app.module_by_name("igraph").expect("igraph root");
    print_import_lines(&render_module(app, root));

    // Run the pipeline and show the automated rewrite.
    let config = PipelineConfig {
        cold_starts: cold_starts().min(100),
        seed,
        ..PipelineConfig::default()
    };
    let outcome = Pipeline::new(config)
        .run(app, &entry.workload_weights())
        .expect("pipeline runs");
    let final_app = &outcome.final_app;
    println!("\n--- igraph/__init__.py (after SlimStart) ---");
    let root_after = final_app.module_by_name("igraph").expect("igraph root");
    print_import_lines(&render_module(final_app, root_after));

    // Library-init improvement from disabling the non-essential subtrees.
    let before = app.eager_init_cost(handler_mod).as_millis_f64();
    let after = final_app
        .eager_init_cost(final_app.module_by_name("handler").expect("handler"))
        .as_millis_f64();
    println!(
        "\nLibrary initialization: {before:.1} ms -> {after:.1} ms ({:.2}x)",
        before / after
    );
    println!("(paper: 1.65x library-init improvement for graph_bfs)");
}

fn print_import_lines(source: &str) {
    for line in source.lines().filter(|l| l.contains("import ")) {
        println!("  {line}");
    }
}
