//! Figure 2: static reachability (STAT) vs dynamic profiling (DYN) —
//! unnecessary library-initialization overhead per FaaSLight application.
//!
//! STAT is what FaaSLight's reachability analysis can remove: packages with
//! no statically reachable function. DYN is the dynamic-profiling upper
//! bound: the init share of everything SlimStart flags as unused or rarely
//! used (< 2 % of samples) under the observed workload — including packages
//! that are reachable from some entry point but never invoked. The paper
//! reports DYN averaging 50.68 %, ranging from 25.2 % (FL-PMP) to 78.32 %
//! (FL-SA).

use slimstart_appmodel::catalog::catalog;
use slimstart_bench::table::TextTable;
use slimstart_bench::{cold_starts, run_catalog_app, seed};
use slimstart_faaslight::strip_unreachable;

fn main() {
    let n = cold_starts();
    let seed = seed();
    println!("== Figure 2: STAT (reachability) vs DYN (statistical sampling) ==");
    println!("(share of initialization overhead in unnecessary libraries)\n");

    let mut table = TextTable::new(vec![
        "App",
        "STAT measured",
        "STAT paper",
        "DYN measured",
        "DYN paper",
    ]);
    let mut dyn_sum = 0.0;
    let mut dyn_count = 0usize;
    let mut dyn_min = f64::MAX;
    let mut dyn_max: f64 = 0.0;

    for entry in catalog()
        .into_iter()
        .filter(|e| e.paper.fig2_dyn_pct.is_some())
    {
        let built = entry.build(seed).expect("builds");
        let handler_mod = built.app.module_by_name("handler").expect("handler");
        let total_init = built.app.eager_init_cost(handler_mod);

        // STAT: what FaaSLight's static analysis removes.
        let stripped = strip_unreachable(&built.app);
        let stat = stripped.removed_init.ratio(total_init);

        // DYN: what SlimStart's dynamic profiling flags (upper bound:
        // includes side-effectful packages it will not actually defer).
        let run = run_catalog_app(&entry, n, seed);
        let dyn_frac = run.outcome.report.detected_init_fraction();

        dyn_sum += dyn_frac;
        dyn_count += 1;
        dyn_min = dyn_min.min(dyn_frac);
        dyn_max = dyn_max.max(dyn_frac);

        table.row(vec![
            entry.code.to_string(),
            format!("{:.1}%", stat * 100.0),
            format!("{:.1}%", entry.paper.fig2_stat_pct.unwrap_or(0.0)),
            format!("{:.1}%", dyn_frac * 100.0),
            format!("{:.1}%", entry.paper.fig2_dyn_pct.unwrap_or(0.0)),
        ]);
    }

    println!("{}", table.render());
    println!(
        "DYN measured: avg {:.1}%, range {:.1}% - {:.1}%",
        100.0 * dyn_sum / dyn_count as f64,
        100.0 * dyn_min,
        100.0 * dyn_max
    );
    println!("(paper: avg 50.68%, range 25.2% (FL-PMP) to 78.32% (FL-SA))");
    println!("\nObservation 2: dynamic profiling exposes workload-dependent libraries");
    println!("that static reachability must conservatively keep.");
}
