//! Figure 8: memory reduction achieved by SlimStart.
//!
//! Peak runtime memory before vs after optimization for every application
//! that cleared the gate; the paper reports reductions up to 1.51×.

use slimstart_appmodel::catalog::catalog;
use slimstart_bench::table::{times, TextTable};
use slimstart_bench::{cold_starts, run_catalog_app, seed};

fn main() {
    let n = cold_starts();
    let seed = seed();
    println!("== Figure 8: memory reduction ==\n");

    let mut table = TextTable::new(vec![
        "App",
        "Before (MB)",
        "After (MB)",
        "Reduction",
        "Paper",
        "bar",
    ]);
    let mut max_reduction: f64 = 0.0;

    for entry in catalog() {
        let run = run_catalog_app(&entry, n, seed);
        let out = &run.outcome;
        if !out.report.gate_passed {
            continue;
        }
        max_reduction = max_reduction.max(out.speedup.mem);
        table.row(vec![
            entry.code.to_string(),
            format!("{:.1}", out.baseline.peak_mem_mb),
            format!("{:.1}", out.optimized.peak_mem_mb),
            times(out.speedup.mem),
            times(entry.paper.mem_reduction),
            "#".repeat(((out.speedup.mem - 1.0) * 40.0).max(0.0).round() as usize),
        ]);
    }

    println!("{}", table.render());
    println!(
        "max memory reduction: {} (paper: up to 1.51x)",
        times(max_reduction)
    );
}
