//! Table V: the SlimStart report for the CVE Binary Analyzer.
//!
//! The paper's second case study: `xmlschema` accounts for 8.27 % of
//! initialization latency at 0.78 % utilization — it is only needed when a
//! request carries an SBOM XML, which almost never happens. Lazy-loading it
//! yields 1.27× init / 1.20× end-to-end and 1.21× memory improvements.

use slimstart_appmodel::catalog::by_code;
use slimstart_bench::table::times;
use slimstart_bench::{cold_starts, run_catalog_app, seed};
use slimstart_core::report::render;

fn main() {
    let entry = by_code("CVE").expect("CVE in catalog");
    let run = run_catalog_app(&entry, cold_starts(), seed());
    let out = &run.outcome;

    println!("== Table V: SLIMSTART report on CVE binary analyzer ==\n");
    let built = entry.build(seed()).expect("builds");
    println!("{}", render(&out.report, &built.app));

    // Show the xmlschema finding the way the paper highlights it.
    if let Some(xml) = out
        .report
        .findings
        .iter()
        .find(|f| f.package == "xmlschema")
    {
        println!(
            "xmlschema: utilization {:.2}%, init overhead {:.2}% (paper: 0.78% / 8.27%)",
            xml.utilization * 100.0,
            xml.init_fraction * 100.0
        );
    }

    println!("\nThe Optimization:");
    if let Some(opt) = &out.optimization {
        for pkg in &opt.deferred_packages {
            println!("  lazy-loaded: {pkg}");
        }
        for edit in &opt.edits {
            println!("{edit}\n");
        }
    }
    println!(
        "Result: init {} (paper 1.27x), e2e {} (paper 1.20x), memory {} (paper 1.21x)",
        times(out.speedup.load),
        times(out.speedup.e2e),
        times(out.speedup.mem)
    );
}
