//! Criterion micro-benchmarks for the profiler's hot data structures:
//! CCT insertion, escalation (inclusive counts), merging, and utilization
//! computation over realistic sample batches.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use slimstart_appmodel::catalog::by_code;
use slimstart_core::cct::Cct;
use slimstart_core::profile::SampleRecord;
use slimstart_core::utilization::Utilization;
use slimstart_pyrt::stack::{Frame, FrameKind};
use slimstart_simcore::rng::SimRng;

/// Generates `n` synthetic samples with realistic path shapes (depth 3–9,
/// heavy path reuse as real workloads exhibit).
fn synth_samples(n: usize, seed: u64) -> Vec<SampleRecord> {
    let mut rng = SimRng::seed_from(seed);
    // 64 distinct call sites reused across paths.
    let sites: Vec<Frame> = (0..64)
        .map(|i| Frame {
            kind: FrameKind::Call(slimstart_appmodel::FunctionId::from_index(i)),
            line: 10 + (i % 7) as u32,
        })
        .collect();
    (0..n)
        .map(|_| {
            let depth = 3 + rng.next_below(7);
            let path: Vec<Frame> = (0..depth)
                .map(|d| sites[(d * 7 + rng.next_below(8)) % sites.len()])
                .collect();
            SampleRecord {
                path,
                is_init: rng.chance(0.3),
            }
        })
        .collect()
}

fn bench_cct_insert(c: &mut Criterion) {
    let samples = synth_samples(10_000, 42);
    c.bench_function("cct_insert_10k_samples", |b| {
        b.iter(|| {
            let mut cct = Cct::new();
            for s in &samples {
                cct.insert(black_box(&s.path), s.is_init);
            }
            black_box(cct.len())
        })
    });
}

fn bench_cct_inclusive(c: &mut Criterion) {
    let samples = synth_samples(50_000, 43);
    let cct = Cct::from_samples(&samples);
    c.bench_function("cct_escalation_inclusive", |b| {
        b.iter(|| black_box(cct.inclusive()))
    });
}

fn bench_cct_merge(c: &mut Criterion) {
    let a = Cct::from_samples(&synth_samples(5_000, 44));
    let b_tree = Cct::from_samples(&synth_samples(5_000, 45));
    c.bench_function("cct_merge_5k_into_5k", |bench| {
        bench.iter(|| {
            let mut merged = a.clone();
            merged.merge(black_box(&b_tree));
            black_box(merged.total_samples())
        })
    });
}

fn bench_utilization(c: &mut Criterion) {
    // Real application shape: R-GB's profile-sized sample batch, with paths
    // drawn from the app's actual functions.
    let entry = by_code("R-GB").expect("catalog");
    let built = entry.build(7).expect("builds");
    let mut rng = SimRng::seed_from(46);
    let n_fns = built.app.functions().len();
    let samples: Vec<SampleRecord> = (0..20_000)
        .map(|_| {
            let depth = 2 + rng.next_below(4);
            let path: Vec<Frame> = (0..depth)
                .map(|_| Frame {
                    kind: FrameKind::Call(slimstart_appmodel::FunctionId::from_index(
                        rng.next_below(n_fns),
                    )),
                    line: 10,
                })
                .collect();
            SampleRecord {
                path,
                is_init: rng.chance(0.3),
            }
        })
        .collect();
    c.bench_function("utilization_20k_samples", |b| {
        b.iter(|| black_box(Utilization::from_samples(samples.iter(), &built.app)))
    });
}

criterion_group!(
    benches,
    bench_cct_insert,
    bench_cct_inclusive,
    bench_cct_merge,
    bench_utilization
);
criterion_main!(benches);
