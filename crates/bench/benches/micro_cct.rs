//! Micro-benchmarks for the profiler's hot data structures: CCT
//! insertion, escalation (inclusive counts), merging, and utilization
//! computation over realistic sample batches.
//!
//! Plain `harness = false` timing loops (like every other bench in this
//! crate) so the harness carries no external dependency: each case is
//! warmed once, then timed over enough iterations to smooth scheduler
//! noise, reporting mean wall-clock per iteration.

use std::hint::black_box;
use std::time::Instant;

use slimstart_appmodel::catalog::by_code;
use slimstart_core::cct::Cct;
use slimstart_core::profile::SampleRecord;
use slimstart_core::utilization::Utilization;
use slimstart_pyrt::stack::{Frame, FrameKind};
use slimstart_simcore::rng::SimRng;

/// Generates `n` synthetic samples with realistic path shapes (depth 3–9,
/// heavy path reuse as real workloads exhibit).
fn synth_samples(n: usize, seed: u64) -> Vec<SampleRecord> {
    let mut rng = SimRng::seed_from(seed);
    // 64 distinct call sites reused across paths.
    let sites: Vec<Frame> = (0..64)
        .map(|i| Frame {
            kind: FrameKind::Call(slimstart_appmodel::FunctionId::from_index(i)),
            line: 10 + (i % 7) as u32,
        })
        .collect();
    (0..n)
        .map(|_| {
            let depth = 3 + rng.next_below(7);
            let path: Vec<Frame> = (0..depth)
                .map(|d| sites[(d * 7 + rng.next_below(8)) % sites.len()])
                .collect();
            SampleRecord {
                path: path.into(),
                is_init: rng.chance(0.3),
            }
        })
        .collect()
}

/// Times `f` over `iters` iterations (after one warm-up call) and prints
/// the mean per-iteration latency.
fn bench<T>(name: &str, iters: u32, mut f: impl FnMut() -> T) {
    black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = start.elapsed() / iters;
    println!("{name:<28} {per_iter:>12.2?}/iter  ({iters} iters)");
}

fn main() {
    println!("== micro_cct: profiler hot-path micro-benchmarks ==\n");

    let samples = synth_samples(10_000, 42);
    bench("cct_insert_10k_samples", 50, || {
        let mut cct = Cct::new();
        for s in &samples {
            cct.insert(black_box(&s.path), s.is_init);
        }
        cct.len()
    });

    let big = synth_samples(50_000, 43);
    let cct = Cct::from_samples(&big);
    bench("cct_escalation_inclusive", 200, || cct.inclusive());

    let a = Cct::from_samples(&synth_samples(5_000, 44));
    let b_tree = Cct::from_samples(&synth_samples(5_000, 45));
    bench("cct_merge_5k_into_5k", 200, || {
        let mut merged = a.clone();
        merged.merge(black_box(&b_tree));
        merged.total_samples()
    });

    // Real application shape: R-GB's profile-sized sample batch, with paths
    // drawn from the app's actual functions.
    let entry = by_code("R-GB").expect("catalog");
    let built = entry.build(7).expect("builds");
    let mut rng = SimRng::seed_from(46);
    let n_fns = built.app.functions().len();
    let app_samples: Vec<SampleRecord> = (0..20_000)
        .map(|_| {
            let depth = 2 + rng.next_below(4);
            let path: Vec<Frame> = (0..depth)
                .map(|_| Frame {
                    kind: FrameKind::Call(slimstart_appmodel::FunctionId::from_index(
                        rng.next_below(n_fns),
                    )),
                    line: 10,
                })
                .collect();
            SampleRecord {
                path: path.into(),
                is_init: rng.chance(0.3),
            }
        })
        .collect();
    bench("utilization_20k_samples", 50, || {
        Utilization::from_samples(app_samples.iter(), &built.app)
    });
}
