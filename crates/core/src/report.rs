//! Report rendering in the paper's Table IV/V layout.
//!
//! A report shows, per package: utilization, initialization-overhead share
//! and file — followed by the *call path* through which each flagged
//! package is reached (e.g. `handler.py:2 → nltk/__init__.py:147 →
//! nltk/sem/__init__.py:44`), reconstructed over the application's global
//! import chains.

use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;

use slimstart_appmodel::{Application, ModuleId};

use crate::detect::InefficiencyReport;

/// Reconstructs the import chain from `from` to the root module of
/// `package`, as `(file, line)` hops. Returns `None` when the package is
/// not reachable over global imports.
pub fn import_path(app: &Application, from: ModuleId, package: &str) -> Option<Vec<(String, u32)>> {
    // BFS over global import edges, remembering the (importer, line) that
    // discovered each module.
    let mut prev: HashMap<ModuleId, (ModuleId, u32)> = HashMap::new();
    let mut queue = VecDeque::from([from]);
    let mut goal: Option<ModuleId> = None;
    let mut seen = vec![false; app.modules().len()];
    seen[from.index()] = true;
    while let Some(m) = queue.pop_front() {
        if app.module(m).in_package(package) {
            goal = Some(m);
            break;
        }
        for decl in app.imports_of(m) {
            if seen[decl.target.index()] {
                continue;
            }
            seen[decl.target.index()] = true;
            prev.insert(decl.target, (m, decl.line));
            queue.push_back(decl.target);
        }
    }
    let goal = goal?;
    // Walk back to `from`, collecting hops.
    let mut hops = Vec::new();
    let mut cur = goal;
    let goal_file = app.module(goal).file().to_string();
    while let Some(&(importer, line)) = prev.get(&cur) {
        hops.push((app.module(importer).file().to_string(), line));
        cur = importer;
    }
    hops.reverse();
    // Final hop: the package root file itself (entry line 1 by convention).
    hops.push((goal_file, 1));
    Some(hops)
}

/// Renders the full report as text.
pub fn render(report: &InefficiencyReport, app: &Application) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "==================== SLIMSTART Summary ===================="
    );
    let _ = writeln!(out, "Application: {}", report.app_name);
    let _ = writeln!(
        out,
        "Gate: {} (library initialization = {:.1}% of end-to-end, threshold 10%)",
        if report.gate_passed {
            "PASSED"
        } else {
            "SKIPPED"
        },
        report.init_share * 100.0
    );
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  {:<28} {:>8} {:>16}  File",
        "Package", "Util.%", "Init.Overhead%"
    );
    for lib in &report.libraries {
        let root = app.module_by_name(&lib.name);
        let file = root.map_or(String::new(), |m| format!("/{}", app.module(m).file()));
        let _ = writeln!(
            out,
            "- {:<28} {:>8.2} {:>16.2}  {}",
            lib.name,
            lib.utilization * 100.0,
            lib.init_fraction * 100.0,
            file
        );
    }
    for f in &report.findings {
        let root = app.module_by_name(&f.package);
        let file = root.map_or(String::new(), |m| format!("/{}", app.module(m).file()));
        let _ = writeln!(
            out,
            "+ {:<28} {:>8.2} {:>16.2}  {}{}",
            f.package,
            f.utilization * 100.0,
            f.init_fraction * 100.0,
            file,
            match f.skip_reason {
                None => String::new(),
                Some(reason) => format!("  [kept: {}]", reason.label()),
            }
        );
    }

    if !report.findings.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "  Call Path");
        let entry = app.handler_module(slimstart_appmodel::HandlerId::from_index(0));
        for f in &report.findings {
            let _ = writeln!(out, "  Package: {}", f.package);
            match import_path(app, entry, &f.package) {
                Some(hops) => {
                    for (i, (file, line)) in hops.iter().enumerate() {
                        let arrow = if i == 0 { "    " } else { "    -> " };
                        let _ = writeln!(out, "{arrow}{file}:{line}");
                    }
                }
                None => {
                    let _ = writeln!(out, "    (not reachable via global imports)");
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::app::AppBuilder;
    use slimstart_appmodel::{ImportMode, LibraryId};
    use slimstart_simcore::time::SimDuration;

    use crate::detect::{Finding, LibrarySummary, UsageClass};

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    fn app() -> Application {
        let mut b = AppBuilder::new("rsa");
        let lib = b.add_library("nltk");
        let h = b.add_app_module("handler", ms(1), 0);
        let root = b.add_library_module("nltk", ms(2), 0, false, lib);
        let sem = b.add_library_module("nltk.sem", ms(40), 0, false, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        b.add_import(root, sem, 147, ImportMode::Global).unwrap();
        let f = b.add_function("main", h, 4, vec![]);
        b.add_handler("main", f);
        b.finish().unwrap()
    }

    fn sample_report() -> InefficiencyReport {
        InefficiencyReport {
            app_name: "rsa".into(),
            gate_passed: true,
            total_init: ms(43),
            e2e_mean: ms(45),
            init_share: 0.956,
            libraries: vec![LibrarySummary {
                library: LibraryId::from_index(0),
                name: "nltk".into(),
                utilization: 0.0533,
                init_fraction: 0.6993,
                init_time: ms(42),
            }],
            findings: vec![Finding {
                package: "nltk.sem".into(),
                library: LibraryId::from_index(0),
                class: UsageClass::Unused,
                utilization: 0.0,
                init_time: ms(40),
                init_fraction: 0.0825,
                deferrable: true,
                skip_reason: None,
            }],
        }
    }

    #[test]
    fn import_path_reconstructs_chain() {
        let app = app();
        let h = app.module_by_name("handler").unwrap();
        let hops = import_path(&app, h, "nltk.sem").unwrap();
        assert_eq!(
            hops,
            vec![
                ("handler.py".to_string(), 2),
                ("nltk/__init__.py".to_string(), 147),
                ("nltk/sem.py".to_string(), 1),
            ]
        );
    }

    #[test]
    fn import_path_none_when_unreachable() {
        let app = app();
        let h = app.module_by_name("handler").unwrap();
        assert!(import_path(&app, h, "numpy").is_none());
    }

    #[test]
    fn render_contains_table_and_call_path() {
        let app = app();
        let text = render(&sample_report(), &app);
        assert!(text.contains("Application: rsa"));
        assert!(text.contains("Gate: PASSED"));
        assert!(text.contains("nltk"));
        assert!(text.contains("5.33"));
        assert!(text.contains("69.93"));
        assert!(text.contains("+ nltk.sem"));
        assert!(text.contains("handler.py:2"));
        assert!(text.contains("-> nltk/__init__.py:147"));
    }

    #[test]
    fn render_marks_undeferrable_findings() {
        let app = app();
        let mut report = sample_report();
        report.findings[0].deferrable = false;
        report.findings[0].skip_reason = Some(crate::detect::SkipReason::SideEffects);
        let text = render(&report, &app);
        assert!(text.contains("[kept: side effects]"));
    }

    #[test]
    fn render_gated_out_report() {
        let app = app();
        let mut report = sample_report();
        report.gate_passed = false;
        report.findings.clear();
        let text = render(&report, &app);
        assert!(text.contains("Gate: SKIPPED"));
        assert!(!text.contains("Call Path"));
    }
}
