//! Hierarchical breakdown of initialization overhead (paper §IV-A1,
//! Fig. 6, Eqs. 1–3).
//!
//! The profiler measures exact per-module top-level execution time; this
//! module rolls it up: module → package → library → total, and applies the
//! 10 % end-to-end gate that decides whether an application is worth
//! optimizing at all.

use std::collections::{BTreeMap, HashMap};

use slimstart_appmodel::{Application, ModuleId};
use slimstart_simcore::time::SimDuration;

use crate::profile::ProfileStore;

/// Mean-per-cold-start initialization times at every level of the
/// hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct InitBreakdown {
    /// Cold starts observed.
    pub cold_starts: u64,
    /// Eq. 1: total initialization time (mean per cold start).
    pub total: SimDuration,
    /// Mean per-module initialization time.
    pub by_module: HashMap<ModuleId, SimDuration>,
    /// Eq. 2: per-library totals, indexed by [`LibraryId::index`]
    /// (application code is excluded).
    ///
    /// [`LibraryId::index`]: slimstart_appmodel::LibraryId::index
    pub by_library: Vec<SimDuration>,
    /// Eq. 3: per-package subtree totals, keyed by dotted path.
    pub by_package: BTreeMap<String, SimDuration>,
    /// Mean end-to-end latency of the profiled invocations.
    pub e2e_mean: SimDuration,
}

impl InitBreakdown {
    /// Computes the breakdown from the collector's observations.
    ///
    /// # Panics
    ///
    /// Panics if `cold_starts` is zero.
    pub fn from_store(
        store: &ProfileStore,
        app: &Application,
        cold_starts: u64,
        e2e_mean: SimDuration,
    ) -> InitBreakdown {
        assert!(cold_starts > 0, "need at least one cold start to profile");
        let by_module: HashMap<ModuleId, SimDuration> = store
            .init_micros_by_module
            .iter()
            .map(|(m, micros)| (*m, SimDuration::from_micros(micros / cold_starts)))
            .collect();

        let mut by_library = vec![SimDuration::ZERO; app.libraries().len()];
        for (m, d) in &by_module {
            if let Some(lib) = app.module(*m).library() {
                by_library[lib.index()] += *d;
            }
        }

        let tree = app.package_tree();
        let mut by_package = BTreeMap::new();
        for node in tree.iter() {
            let total: SimDuration = tree
                .modules_under(&node.path)
                .iter()
                .filter_map(|m| by_module.get(m))
                .copied()
                .sum();
            by_package.insert(node.path.clone(), total);
        }

        let total: SimDuration = by_module.values().copied().sum();
        InitBreakdown {
            cold_starts,
            total,
            by_module,
            by_library,
            by_package,
            e2e_mean,
        }
    }

    /// Share of end-to-end time spent initializing (Fig. 1's ratio).
    pub fn total_share(&self) -> f64 {
        self.total.ratio(self.e2e_mean)
    }

    /// A package's share of end-to-end time.
    pub fn package_share(&self, path: &str) -> f64 {
        self.by_package
            .get(path)
            .copied()
            .unwrap_or(SimDuration::ZERO)
            .ratio(self.e2e_mean)
    }

    /// A package's share of *total initialization* time (the percentages in
    /// the paper's report tables).
    pub fn package_init_fraction(&self, path: &str) -> f64 {
        self.by_package
            .get(path)
            .copied()
            .unwrap_or(SimDuration::ZERO)
            .ratio(self.total)
    }

    /// Whether the application clears the optimization gate (§IV-A1).
    pub fn passes_gate(&self, threshold: f64) -> bool {
        self.total_share() > threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::app::AppBuilder;
    use slimstart_appmodel::imports::ImportMode;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    fn store_and_app() -> (ProfileStore, Application) {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("nltk");
        let h = b.add_app_module("handler", ms(1), 0);
        let root = b.add_library_module("nltk", ms(4), 0, false, lib);
        let sem = b.add_library_module("nltk.sem", ms(40), 0, false, lib);
        let logic = b.add_library_module("nltk.sem.logic", ms(15), 0, false, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        b.add_import(root, sem, 2, ImportMode::Global).unwrap();
        b.add_import(sem, logic, 2, ImportMode::Global).unwrap();
        let f = b.add_function("main", h, 4, vec![]);
        b.add_handler("main", f);
        let app = b.finish().unwrap();

        let mut store = ProfileStore::default();
        // Two cold starts, each paying the full init.
        for (name, per_start_ms) in [
            ("handler", 1u64),
            ("nltk", 4),
            ("nltk.sem", 40),
            ("nltk.sem.logic", 15),
        ] {
            let m = app.module_by_name(name).unwrap();
            store
                .init_micros_by_module
                .insert(m, per_start_ms * 1_000 * 2);
        }
        (store, app)
    }

    #[test]
    fn rollups_match_hierarchy() {
        let (store, app) = store_and_app();
        let bd = InitBreakdown::from_store(&store, &app, 2, ms(100));
        assert_eq!(bd.total, ms(60));
        assert_eq!(bd.by_library[0], ms(59)); // nltk tree (excludes handler)
        assert_eq!(bd.by_package["nltk"], ms(59));
        assert_eq!(bd.by_package["nltk.sem"], ms(55));
        assert_eq!(bd.by_package["nltk.sem.logic"], ms(15));
    }

    #[test]
    fn shares_and_gate() {
        let (store, app) = store_and_app();
        let bd = InitBreakdown::from_store(&store, &app, 2, ms(100));
        assert!((bd.total_share() - 0.60).abs() < 1e-9);
        assert!((bd.package_share("nltk.sem") - 0.55).abs() < 1e-9);
        assert!((bd.package_init_fraction("nltk.sem") - 55.0 / 60.0).abs() < 1e-9);
        assert!(bd.passes_gate(0.10));
        assert!(!bd.passes_gate(0.70));
    }

    #[test]
    fn missing_package_has_zero_share() {
        let (store, app) = store_and_app();
        let bd = InitBreakdown::from_store(&store, &app, 2, ms(100));
        assert_eq!(bd.package_share("numpy"), 0.0);
        assert_eq!(bd.package_init_fraction("numpy"), 0.0);
    }

    #[test]
    #[should_panic(expected = "cold start")]
    fn zero_cold_starts_panics() {
        let (store, app) = store_and_app();
        InitBreakdown::from_store(&store, &app, 0, ms(100));
    }

    #[test]
    fn mean_is_per_cold_start() {
        let (store, app) = store_and_app();
        let bd1 = InitBreakdown::from_store(&store, &app, 1, ms(100));
        let bd2 = InitBreakdown::from_store(&store, &app, 2, ms(100));
        assert_eq!(bd1.total, ms(120));
        assert_eq!(bd2.total, ms(60));
    }
}
