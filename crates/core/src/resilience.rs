//! Retry/backoff policy and graceful-degradation bookkeeping for the
//! pipeline's fault handling.
//!
//! When a [`ChaosPlan`](slimstart_platform::chaos::ChaosPlan) injects
//! faults, the pipeline does what a production CI/CD loop would: retries
//! profile collection and redeploys with exponential backoff on the
//! **virtual** clock (backoff delays are simulated time, not wall time),
//! and degrades gracefully instead of aborting. The degradation ladder:
//!
//! 1. [`DegradationLevel::None`] — faults (if any) were absorbed by
//!    retries; the pipeline shipped the full profile-guided optimization.
//! 2. [`DegradationLevel::Conservative`] — the profile arrived truncated
//!    or not at all, so the optimizer fell back to deferring only
//!    statically-verified never-used libraries (no profile trust needed).
//! 3. [`DegradationLevel::RolledBack`] — the redeploy kept failing past
//!    the retry budget, so the baseline artifact stayed deployed (the same
//!    rollback path a below-gate app takes).

use slimstart_platform::chaos::ChaosPlan;
use slimstart_simcore::time::SimDuration;

/// Retry budget and exponential-backoff shape, on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts before giving up (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base_delay: SimDuration,
    /// Per-retry delay multiplier.
    pub multiplier: f64,
    /// Ceiling on a single backoff delay.
    pub max_delay: SimDuration,
    /// Virtual time spent detecting one failed attempt (upload timeout,
    /// deploy health-check window) — charged per retry on top of backoff.
    pub attempt_timeout: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_delay: SimDuration::from_millis(200),
            multiplier: 2.0,
            max_delay: SimDuration::from_secs(10),
            attempt_timeout: SimDuration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based), with half-jitter:
    /// `min(max_delay, base · multiplier^(attempt-1)) · (½ + ½·jitter)`,
    /// `jitter ∈ [0, 1)` drawn from the chaos stream so backoff schedules
    /// replay deterministically per seed.
    pub fn backoff_delay(&self, attempt: u32, jitter: f64) -> SimDuration {
        let exponent = attempt.saturating_sub(1).min(30);
        let raw = self
            .base_delay
            .mul_f64(self.multiplier.max(1.0).powi(exponent as i32))
            .min(self.max_delay);
        raw.mul_f64(0.5 + 0.5 * jitter.clamp(0.0, 1.0))
    }
}

/// How far the pipeline had to fall down the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationLevel {
    /// Full profile-guided optimization shipped.
    None,
    /// Degraded profile: only statically-safe deferrals shipped.
    Conservative,
    /// Redeploy abandoned; baseline artifact kept.
    RolledBack,
}

impl DegradationLevel {
    /// Stable label used in JSON reports.
    pub fn label(self) -> &'static str {
        match self {
            DegradationLevel::None => "none",
            DegradationLevel::Conservative => "conservative",
            DegradationLevel::RolledBack => "rolled-back",
        }
    }
}

/// Mutable per-run fault-handling journal, kept on the pipeline context.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceLog {
    /// Profile collections re-run after an upload loss.
    pub profile_retries: u32,
    /// Redeploy attempts re-tried after a transient failure.
    pub deploy_retries: u32,
    /// Total virtual time spent in attempt timeouts + backoff.
    pub backoff: SimDuration,
    /// The surviving profile is a truncated prefix.
    pub profile_truncated: bool,
    /// No profile survived at all (every upload lost).
    pub profile_missing: bool,
    /// Redeploy abandoned after exhausting the retry budget.
    pub deploy_rolled_back: bool,
}

impl ResilienceLog {
    /// Whether the optimizer must distrust the profile.
    pub fn profile_degraded(&self) -> bool {
        self.profile_truncated || self.profile_missing
    }

    /// The rung of the degradation ladder this run landed on.
    pub fn degradation(&self) -> DegradationLevel {
        if self.deploy_rolled_back {
            DegradationLevel::RolledBack
        } else if self.profile_degraded() {
            DegradationLevel::Conservative
        } else {
            DegradationLevel::None
        }
    }
}

/// Fault-handling summary carried on a
/// [`PipelineOutcome`](crate::pipeline::PipelineOutcome).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResilienceOutcome {
    /// Whether a live chaos plan was attached to this run.
    pub chaos_enabled: bool,
    /// Faults the chaos plan injected (all kinds).
    pub faults_injected: u64,
    /// Profile collections re-run after upload loss.
    pub profile_retries: u32,
    /// Redeploys re-tried after transient failure.
    pub deploy_retries: u32,
    /// Virtual milliseconds spent in timeouts + backoff.
    pub backoff_ms: f64,
    /// Final rung of the degradation ladder.
    pub degradation: DegradationLevel,
    /// Faults were injected yet the full optimization still shipped.
    pub recovered: bool,
}

impl ResilienceOutcome {
    /// The outcome of a run with chaos disabled: nothing injected, nothing
    /// retried, nothing degraded.
    pub fn passthrough() -> Self {
        ResilienceOutcome {
            chaos_enabled: false,
            faults_injected: 0,
            profile_retries: 0,
            deploy_retries: 0,
            backoff_ms: 0.0,
            degradation: DegradationLevel::None,
            recovered: false,
        }
    }

    /// Summarizes a finished run from the plan's injection counters and the
    /// context's journal.
    pub fn from_parts(chaos: &ChaosPlan, log: &ResilienceLog) -> Self {
        if !chaos.is_enabled() {
            return ResilienceOutcome::passthrough();
        }
        let faults_injected = chaos.total_injected();
        let degradation = log.degradation();
        ResilienceOutcome {
            chaos_enabled: true,
            faults_injected,
            profile_retries: log.profile_retries,
            deploy_retries: log.deploy_retries,
            backoff_ms: log.backoff.as_millis_f64(),
            degradation,
            recovered: faults_injected > 0 && degradation == DegradationLevel::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_platform::chaos::ChaosConfig;

    #[test]
    fn backoff_doubles_then_caps() {
        let policy = RetryPolicy::default();
        // jitter 1.0 → full delay.
        assert_eq!(policy.backoff_delay(1, 1.0), SimDuration::from_millis(200));
        assert_eq!(policy.backoff_delay(2, 1.0), SimDuration::from_millis(400));
        assert_eq!(policy.backoff_delay(30, 1.0), SimDuration::from_secs(10));
    }

    #[test]
    fn jitter_halves_at_zero() {
        let policy = RetryPolicy::default();
        assert_eq!(policy.backoff_delay(1, 0.0), SimDuration::from_millis(100));
    }

    #[test]
    fn degradation_ladder_orders_and_prefers_worst() {
        assert!(DegradationLevel::None < DegradationLevel::Conservative);
        assert!(DegradationLevel::Conservative < DegradationLevel::RolledBack);
        let log = ResilienceLog {
            profile_truncated: true,
            deploy_rolled_back: true,
            ..ResilienceLog::default()
        };
        assert_eq!(log.degradation(), DegradationLevel::RolledBack);
    }

    #[test]
    fn outcome_marks_recovery_only_with_faults_and_no_degradation() {
        let plan = ChaosPlan::from_seed(ChaosConfig::uniform(1.0), 3);
        assert!(plan.deploy_fails()); // inject one fault
        let clean = ResilienceLog::default();
        let out = ResilienceOutcome::from_parts(&plan, &clean);
        assert!(out.recovered);

        let degraded = ResilienceLog {
            profile_missing: true,
            ..ResilienceLog::default()
        };
        let out = ResilienceOutcome::from_parts(&plan, &degraded);
        assert!(!out.recovered);
        assert_eq!(out.degradation, DegradationLevel::Conservative);
    }

    #[test]
    fn disabled_plan_yields_passthrough_outcome() {
        let plan = ChaosPlan::none();
        let log = ResilienceLog::default();
        assert_eq!(
            ResilienceOutcome::from_parts(&plan, &log),
            ResilienceOutcome::passthrough()
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(DegradationLevel::None.label(), "none");
        assert_eq!(DegradationLevel::Conservative.label(), "conservative");
        assert_eq!(DegradationLevel::RolledBack.label(), "rolled-back");
    }
}
