//! # slimstart-core
//!
//! SLIMSTART itself: a profile-guided optimization tool that identifies and
//! mitigates workload-dependent library-loading inefficiencies in serverless
//! applications (ICDCS 2025 reproduction).
//!
//! The crate implements the paper's three components:
//!
//! 1. **Dynamic profiler** — the attachable [`sampler`] captures call-path
//!    samples with bounded overhead; [`cct`] organizes them into a Calling
//!    Context Tree with bottom-up sample escalation; [`initprof`] provides
//!    the hierarchical initialization-overhead breakdown (Eqs. 1–3) and
//!    [`utilization`] the U(L) metric (Eq. 4).
//! 2. **Automated code optimizer** — [`detect()`](detect()) flags unused / rarely-used
//!    packages (2 % threshold) behind the 10 % init-share gate, and
//!    [`optimizer`] rewrites their global imports into deferred imports,
//!    with a side-effect safety check. [`report`] renders Table IV/V-style
//!    reports with reconstructed call paths.
//! 3. **Adaptive mechanism** — [`adaptive`] tracks per-window handler
//!    invocation probabilities and re-triggers profiling when
//!    `Σ|Δp_i(t)| > ε` (Eqs. 5–7).
//!
//! [`pipeline`] ties everything into the CI/CD loop the paper deploys:
//! baseline → gate → profile → detect → optimize → redeploy → measure.
//! Each step is a composable [`stage::Stage`]; [`stage::StageEngine`]
//! lets callers skip, swap, or extend stages (e.g. FaaSLight's strip pass
//! as an alternate optimize stage) and the fleet orchestrator
//! (`slimstart-fleet`) runs many applications' engines in parallel.
//!
//! # Example
//!
//! ```
//! use slimstart_core::pipeline::{Pipeline, PipelineConfig};
//! use slimstart_appmodel::catalog::by_code;
//!
//! let entry = by_code("R-GB").expect("catalog entry");
//! let built = entry.build(7)?;
//! let config = PipelineConfig::default().with_cold_starts(25); // keep the doctest fast
//! let outcome = Pipeline::new(config).run(&built.app, &entry.workload_weights())?;
//! assert!(outcome.speedup.init > 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod adaptive;
pub mod autofix;
pub mod cct;
pub mod collector;
pub mod config;
pub mod detect;
pub mod export;
pub mod history;
pub mod initprof;
pub mod optimizer;
pub mod pipeline;
pub mod profile;
pub mod report;
pub mod resilience;
pub mod sampler;
pub mod stage;
pub mod utilization;
pub mod wire;

pub use adaptive::{AdaptiveDecision, AdaptiveMonitor};
pub use autofix::{AutoFixOutcome, AutoFixStage};
pub use cct::Cct;
pub use collector::{AsyncCollector, BatchSender, CollectorStats};
pub use config::{AdaptiveConfig, DetectorConfig, SamplerConfig};
pub use detect::{detect, InefficiencyReport};
pub use history::ProfileHistory;
pub use initprof::InitBreakdown;
pub use optimizer::{optimize, optimize_conservative, OptimizationOutcome};
pub use pipeline::{Pipeline, PipelineConfig, PipelineError, PipelineOutcome};
pub use profile::{ProfileStore, SampleRecord};
pub use resilience::{DegradationLevel, ResilienceLog, ResilienceOutcome, RetryPolicy};
pub use sampler::SamplerAttachment;
pub use stage::{
    AnalyzeStage, BaselineStage, GateDecision, GateStage, MeasureStage, OptimizeStage, PipelineCtx,
    PreDeployStage, ProfileStage, Stage, StageEngine, StageRecord, StageStatus,
};
pub use utilization::Utilization;
pub use wire::{ProfileBatch, WireError};

#[cfg(test)]
mod thread_safety {
    //! The fleet orchestrator moves pipeline configurations into worker
    //! threads and ships outcomes back; these assertions pin the
    //! Send/Sync contract for everything that crosses that boundary.

    use super::*;

    fn assert_send_sync<T: Send + Sync>() {}
    fn assert_send<T: Send>() {}

    #[test]
    fn fleet_shared_types_are_send_and_sync() {
        assert_send_sync::<PipelineConfig>();
        assert_send_sync::<Pipeline>();
        assert_send_sync::<StageEngine>();
        assert_send_sync::<GateDecision>();
        assert_send_sync::<RetryPolicy>();
        assert_send_sync::<ResilienceOutcome>();
    }

    #[test]
    fn pipeline_products_can_move_across_threads() {
        assert_send::<PipelineOutcome>();
        assert_send::<PipelineCtx>();
        assert_send::<PipelineError>();
    }
}
