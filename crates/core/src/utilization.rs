//! The library-utilization metric U(L) (paper Eq. 4).
//!
//! Utilization is computed over *runtime* samples only — initialization
//! samples are filtered out first (§IV-A2), so a library that is expensive
//! to load but never used shows U = 0 even though it soaked up plenty of
//! init-phase samples (the Lib-4 problem).
//!
//! Attribution is **path-inclusive**: a sample credits every library and
//! package on its call path, not just the innermost frame. This is the
//! CCT-escalation view (TC-2): an orchestrator library whose own frames are
//! rarely on top of the stack is still credited with the activity of the
//! work it coordinates (the Lib-1 problem).

use std::collections::{BTreeMap, HashMap, HashSet};

use slimstart_appmodel::{Application, LibraryId, ModuleId};

use crate::profile::SampleRecord;

/// Utilization of every library, package and module.
#[derive(Debug, Clone, PartialEq)]
pub struct Utilization {
    /// Number of runtime samples the shares are relative to.
    pub total_runtime_samples: u64,
    /// U(L) per library, indexed by [`LibraryId::index`].
    pub by_library: Vec<f64>,
    /// U per dotted package path (path-inclusive).
    pub by_package: BTreeMap<String, f64>,
    /// Runtime sample counts per module (path-inclusive).
    pub by_module: HashMap<ModuleId, u64>,
}

impl Utilization {
    /// Computes utilization from raw samples.
    pub fn from_samples<'a, I>(samples: I, app: &Application) -> Utilization
    where
        I: IntoIterator<Item = &'a SampleRecord>,
    {
        let mut total = 0u64;
        let mut lib_counts = vec![0u64; app.libraries().len()];
        let mut package_counts: BTreeMap<String, u64> = BTreeMap::new();
        let mut module_counts: HashMap<ModuleId, u64> = HashMap::new();

        for sample in samples {
            if sample.is_init {
                continue;
            }
            total += 1;
            let mut libs: HashSet<LibraryId> = HashSet::new();
            let mut modules: HashSet<ModuleId> = HashSet::new();
            let mut packages: HashSet<String> = HashSet::new();
            for frame in sample.path.iter() {
                let module = frame.module(app);
                modules.insert(module);
                if let Some(lib) = app.module(module).library() {
                    libs.insert(lib);
                }
                let name = app.module(module).name();
                let mut end = 0;
                let bytes = name.as_bytes();
                for i in 0..=bytes.len() {
                    if i == bytes.len() || bytes[i] == b'.' {
                        end = i;
                        packages.insert(name[..end].to_string());
                    }
                }
                let _ = end;
            }
            for lib in libs {
                lib_counts[lib.index()] += 1;
            }
            for m in modules {
                *module_counts.entry(m).or_insert(0) += 1;
            }
            for p in packages {
                *package_counts.entry(p).or_insert(0) += 1;
            }
        }

        let denom = total.max(1) as f64;
        Utilization {
            total_runtime_samples: total,
            by_library: lib_counts.iter().map(|c| *c as f64 / denom).collect(),
            by_package: package_counts
                .into_iter()
                .map(|(k, c)| (k, c as f64 / denom))
                .collect(),
            by_module: module_counts,
        }
    }

    /// U(L) for one library.
    pub fn library(&self, lib: LibraryId) -> f64 {
        self.by_library.get(lib.index()).copied().unwrap_or(0.0)
    }

    /// U for one package path (0 when never sampled).
    pub fn package(&self, path: &str) -> f64 {
        self.by_package.get(path).copied().unwrap_or(0.0)
    }

    /// Converts into the analyzer's package-granular usage view, for the
    /// over-approximation auditor.
    pub fn to_observed(&self) -> slimstart_analyzer::ObservedUsage {
        slimstart_analyzer::ObservedUsage {
            total_runtime_samples: self.total_runtime_samples,
            by_package: self.by_package.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::app::AppBuilder;
    use slimstart_appmodel::imports::ImportMode;
    use slimstart_pyrt::stack::{Frame, FrameKind};
    use slimstart_simcore::time::SimDuration;

    /// Two libraries: orchestrator `orch` whose function calls into
    /// `worker.sub`.
    fn app() -> (Application, Vec<Frame>) {
        let mut b = AppBuilder::new("t");
        let l_orch = b.add_library("orch");
        let l_w = b.add_library("worker");
        let h = b.add_app_module("handler", SimDuration::ZERO, 0);
        let orch = b.add_library_module("orch", SimDuration::ZERO, 0, false, l_orch);
        let w_root = b.add_library_module("worker", SimDuration::ZERO, 0, false, l_w);
        let w_sub = b.add_library_module("worker.sub", SimDuration::ZERO, 0, false, l_w);
        b.add_import(h, orch, 2, ImportMode::Global).unwrap();
        b.add_import(h, w_root, 3, ImportMode::Global).unwrap();
        b.add_import(w_root, w_sub, 2, ImportMode::Global).unwrap();
        let f_w = b.add_function("crunch", w_sub, 5, vec![]);
        let f_o = b.add_function("orchestrate", orch, 5, vec![]);
        let f_h = b.add_function("main", h, 4, vec![]);
        b.add_handler("main", f_h);
        let path = vec![
            Frame {
                kind: FrameKind::Call(f_h),
                line: 5,
            },
            Frame {
                kind: FrameKind::Call(f_o),
                line: 6,
            },
            Frame {
                kind: FrameKind::Call(f_w),
                line: 6,
            },
        ];
        (b.finish().unwrap(), path)
    }

    fn sample(path: Vec<Frame>, is_init: bool) -> SampleRecord {
        SampleRecord {
            path: path.into(),
            is_init,
        }
    }

    #[test]
    fn orchestrator_gets_path_inclusive_credit() {
        let (app, path) = app();
        // 10 samples all landing in worker.sub, via orch.
        let samples: Vec<SampleRecord> = (0..10).map(|_| sample(path.clone(), false)).collect();
        let u = Utilization::from_samples(&samples, &app);
        assert_eq!(u.total_runtime_samples, 10);
        // Both libraries fully utilized thanks to escalation.
        assert!((u.library(LibraryId::from_index(0)) - 1.0).abs() < 1e-12);
        assert!((u.library(LibraryId::from_index(1)) - 1.0).abs() < 1e-12);
        assert!((u.package("worker.sub") - 1.0).abs() < 1e-12);
    }

    #[test]
    fn init_samples_are_excluded() {
        let (app, path) = app();
        let samples = vec![
            sample(path.clone(), true),
            sample(path.clone(), true),
            sample(path, false),
        ];
        let u = Utilization::from_samples(&samples, &app);
        assert_eq!(u.total_runtime_samples, 1);
        assert!((u.library(LibraryId::from_index(1)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unsampled_library_has_zero_utilization() {
        let (app, _) = app();
        let u = Utilization::from_samples(&[], &app);
        assert_eq!(u.total_runtime_samples, 0);
        assert_eq!(u.library(LibraryId::from_index(0)), 0.0);
        assert_eq!(u.package("worker"), 0.0);
        assert_eq!(u.package("unheard.of"), 0.0);
    }

    #[test]
    fn partial_utilization_fractions() {
        let (app, path) = app();
        // 1 of 4 runtime samples touches the libraries; 3 are handler-only.
        let handler_only = vec![path[0]];
        let samples = vec![
            sample(path.clone(), false),
            sample(handler_only.clone(), false),
            sample(handler_only.clone(), false),
            sample(handler_only, false),
        ];
        let u = Utilization::from_samples(&samples, &app);
        assert!((u.library(LibraryId::from_index(1)) - 0.25).abs() < 1e-12);
        assert!((u.package("worker") - 0.25).abs() < 1e-12);
    }

    #[test]
    fn package_prefixes_all_credited() {
        let (app, path) = app();
        let samples = vec![sample(path, false)];
        let u = Utilization::from_samples(&samples, &app);
        // Leaf frame in worker.sub credits both `worker` and `worker.sub`.
        assert_eq!(u.package("worker"), 1.0);
        assert_eq!(u.package("worker.sub"), 1.0);
    }
}
