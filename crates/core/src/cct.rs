//! The Calling Context Tree (paper §IV-A2, TC-2).
//!
//! Each node is a call site — a frame kind plus the source line it occupies
//! in its caller — so the same function invoked from different places (the
//! Lib-6 multi-path problem) occupies *different* nodes and its usage is
//! never conflated across paths. Sample counts recorded at leaves are
//! **escalated** bottom-up ([`Cct::inclusive`]), which re-attributes callee
//! activity to callers along the chain and solves the cascading-dependency
//! problem: an orchestrator with 1 % self samples still shows the full
//! weight of the work it coordinates (the Lib-1 problem).
//!
//! # Layout
//!
//! Nodes live in one arena `Vec` with intrusive `first_child`/`last_child`/
//! `next_sibling` links (u32 indices, `u32::MAX` = none) instead of a
//! per-node `Vec<usize>` of children, and the `(parent, key) → child`
//! lookup uses a seedless FxHash map, so inserting a hot path is a few
//! fixed-width probes with no per-node heap allocations. A faithful
//! pre-arena implementation is retained in [`reference`] for differential
//! testing and as the benchmark's legacy baseline.

use fxhash::FxHashMap;
use slimstart_appmodel::Application;
use slimstart_pyrt::stack::{Frame, FrameKind};

use crate::profile::SampleRecord;

/// Intrusive-link sentinel: "no node".
const NONE: u32 = u32::MAX;

/// Node identity under one parent: the frame and its current line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CctKey {
    /// The executing frame (function or module init).
    pub kind: FrameKind,
    /// The line at which the *caller* sits (for interior nodes) or the
    /// sampled line (for leaves).
    pub line: u32,
}

/// One calling-context node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CctNode {
    /// Identity.
    pub key: CctKey,
    /// Parent node index (`None` for the synthetic root).
    pub parent: Option<usize>,
    /// Intrusive links (u32::MAX = none); traverse via [`Cct::children`].
    first_child: u32,
    last_child: u32,
    next_sibling: u32,
    /// Samples whose innermost frame landed here.
    pub self_samples: u64,
    /// Of those, samples taken during module initialization.
    pub self_init_samples: u64,
}

impl CctNode {
    fn new(key: CctKey, parent: Option<usize>) -> CctNode {
        CctNode {
            key,
            parent,
            first_child: NONE,
            last_child: NONE,
            next_sibling: NONE,
            self_samples: 0,
            self_init_samples: 0,
        }
    }

    /// Runtime (non-init) self samples.
    pub fn self_runtime_samples(&self) -> u64 {
        self.self_samples - self.self_init_samples
    }
}

fn root_key() -> CctKey {
    CctKey {
        kind: FrameKind::ModuleInit(slimstart_appmodel::ModuleId::from_index(u32::MAX as usize)),
        line: 0,
    }
}

/// A calling context tree built from stack samples.
///
/// # Example
///
/// Escalation re-attributes callee samples to their callers, so a thin
/// orchestrator frame is credited with the work it coordinates:
///
/// ```
/// use slimstart_core::cct::Cct;
/// use slimstart_pyrt::stack::{Frame, FrameKind};
/// use slimstart_appmodel::FunctionId;
///
/// let call = |i: usize| Frame { kind: FrameKind::Call(FunctionId::from_index(i)), line: 1 };
/// let mut cct = Cct::new();
/// cct.insert(&[call(0)], false);              // 1 sample in the orchestrator itself
/// for _ in 0..9 {
///     cct.insert(&[call(0), call(1)], false); // 9 samples in its callee
/// }
/// let inclusive = cct.inclusive();
/// assert_eq!(cct.node(1).self_samples, 1);    // flat view: orchestrator looks idle
/// assert_eq!(inclusive[1], 10);               // escalated view: fully busy
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cct {
    nodes: Vec<CctNode>,
    index: FxHashMap<(u32, CctKey), u32>,
}

impl Cct {
    /// Creates an empty tree with just the synthetic root.
    pub fn new() -> Self {
        Cct {
            nodes: vec![CctNode::new(root_key(), None)],
            index: FxHashMap::default(),
        }
    }

    /// Builds a tree from a batch of samples.
    pub fn from_samples<'a, I>(samples: I) -> Cct
    where
        I: IntoIterator<Item = &'a SampleRecord>,
    {
        let mut cct = Cct::new();
        for s in samples {
            cct.insert(&s.path, s.is_init);
        }
        cct
    }

    /// Inserts one sampled call path, bumping the leaf's self count.
    pub fn insert(&mut self, path: &[Frame], is_init: bool) {
        self.insert_weighted(path, 1, u64::from(is_init));
    }

    /// Inserts a path carrying `samples` observations at once, of which
    /// `init_samples` were taken during module initialization. Equivalent
    /// to `samples` repeated [`Cct::insert`] calls but walks the path once
    /// — the workhorse behind O(paths) merging.
    pub fn insert_weighted(&mut self, path: &[Frame], samples: u64, init_samples: u64) {
        debug_assert!(init_samples <= samples);
        if path.is_empty() {
            return;
        }
        let mut node = 0u32;
        for frame in path {
            let key = CctKey {
                kind: frame.kind,
                line: frame.line,
            };
            node = match self.index.get(&(node, key)) {
                Some(&child) => child,
                None => self.add_child(node, key),
            };
        }
        let leaf = &mut self.nodes[node as usize];
        leaf.self_samples += samples;
        leaf.self_init_samples += init_samples;
    }

    /// Appends a fresh child of `parent` with identity `key`, maintaining
    /// the intrusive sibling chain and the child index.
    fn add_child(&mut self, parent: u32, key: CctKey) -> u32 {
        let child = u32::try_from(self.nodes.len()).expect("CCT node count fits in u32");
        self.nodes.push(CctNode::new(key, Some(parent as usize)));
        let p = &mut self.nodes[parent as usize];
        let prev_last = p.last_child;
        p.last_child = child;
        if prev_last == NONE {
            p.first_child = child;
        } else {
            self.nodes[prev_last as usize].next_sibling = child;
        }
        self.index.insert((parent, key), child);
        child
    }

    /// Number of nodes including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree holds no samples.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Node accessor.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node(&self, i: usize) -> &CctNode {
        &self.nodes[i]
    }

    /// All nodes (index 0 is the synthetic root).
    pub fn nodes(&self) -> &[CctNode] {
        &self.nodes
    }

    /// The children of node `i` in insertion order, via the intrusive
    /// sibling chain.
    pub fn children(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        let first = self.nodes[i].first_child;
        std::iter::successors((first != NONE).then_some(first as usize), move |&n| {
            let next = self.nodes[n].next_sibling;
            (next != NONE).then_some(next as usize)
        })
    }

    /// Total samples recorded.
    pub fn total_samples(&self) -> u64 {
        self.nodes.iter().map(|n| n.self_samples).sum()
    }

    /// **Escalation** (TC-2 solution 1): inclusive sample counts, where each
    /// node receives its own samples plus everything from its subtree.
    /// Index-aligned with [`Cct::nodes`].
    pub fn inclusive(&self) -> Vec<u64> {
        let mut inclusive: Vec<u64> = self.nodes.iter().map(|n| n.self_samples).collect();
        // Children always have larger indices than parents (creation order),
        // so one reverse pass propagates bottom-up.
        for i in (1..self.nodes.len()).rev() {
            let parent = self.nodes[i].parent.expect("non-root has parent");
            inclusive[parent] += inclusive[i];
        }
        inclusive
    }

    /// Inclusive *runtime* (non-init) sample counts.
    pub fn inclusive_runtime(&self) -> Vec<u64> {
        let mut inclusive: Vec<u64> = self
            .nodes
            .iter()
            .map(CctNode::self_runtime_samples)
            .collect();
        for i in (1..self.nodes.len()).rev() {
            let parent = self.nodes[i].parent.expect("non-root has parent");
            inclusive[parent] += inclusive[i];
        }
        inclusive
    }

    /// The path from the root to node `i` (exclusive of the synthetic
    /// root), outermost first.
    pub fn path_to(&self, i: usize) -> Vec<&CctNode> {
        let mut path = Vec::new();
        let mut cur = Some(i);
        while let Some(n) = cur {
            if n == 0 {
                break;
            }
            path.push(&self.nodes[n]);
            cur = self.nodes[n].parent;
        }
        path.reverse();
        path
    }

    /// Renders a node's calling context as `file:line → file:line → …`,
    /// the format of the paper's report tables. (This is the display site:
    /// frame naming and formatting happen here, never on capture paths.)
    pub fn render_path(&self, i: usize, app: &Application) -> String {
        self.path_to(i)
            .iter()
            .map(|n| {
                let frame = Frame {
                    kind: n.key.kind,
                    line: n.key.line,
                };
                format!("{}:{}", frame.file(app), n.key.line)
            })
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// Merges another tree into this one (used when combining profiling
    /// windows). Walks each of `other`'s populated paths exactly once —
    /// O(paths · depth), independent of how many samples each carries.
    pub fn merge(&mut self, other: &Cct) {
        let mut frames: Vec<Frame> = Vec::new();
        for (i, node) in other.nodes.iter().enumerate().skip(1) {
            if node.self_samples == 0 {
                continue;
            }
            frames.clear();
            let mut cur = i;
            while cur != 0 {
                let n = &other.nodes[cur];
                frames.push(Frame {
                    kind: n.key.kind,
                    line: n.key.line,
                });
                cur = n.parent.expect("non-root has parent");
            }
            frames.reverse();
            self.insert_weighted(&frames, node.self_samples, node.self_init_samples);
        }
    }
}

/// The pre-arena CCT, retained verbatim as a differential-testing oracle
/// and as the `slimstart bench` legacy baseline: per-node `Vec` of
/// children, `std`-hasher index, merging by re-inserting one path per
/// sample. Not used on any production path.
pub mod reference {
    use std::collections::HashMap;

    use slimstart_pyrt::stack::Frame;

    use super::{root_key, CctKey};

    /// One calling-context node of the reference tree.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct RefNode {
        /// Identity.
        pub key: CctKey,
        /// Parent node index (`None` for the root).
        pub parent: Option<usize>,
        /// Child node indices, insertion-ordered.
        pub children: Vec<usize>,
        /// Samples whose innermost frame landed here.
        pub self_samples: u64,
        /// Of those, samples taken during module initialization.
        pub self_init_samples: u64,
    }

    /// The original `HashMap`-indexed calling context tree.
    #[derive(Debug, Clone, Default)]
    pub struct ReferenceCct {
        nodes: Vec<RefNode>,
        index: HashMap<(usize, CctKey), usize>,
    }

    impl ReferenceCct {
        /// Creates an empty tree with just the synthetic root.
        pub fn new() -> Self {
            ReferenceCct {
                nodes: vec![RefNode {
                    key: root_key(),
                    parent: None,
                    children: Vec::new(),
                    self_samples: 0,
                    self_init_samples: 0,
                }],
                index: HashMap::new(),
            }
        }

        /// Inserts one sampled call path, bumping the leaf's self count.
        pub fn insert(&mut self, path: &[Frame], is_init: bool) {
            if path.is_empty() {
                return;
            }
            let mut node = 0usize;
            for frame in path {
                let key = CctKey {
                    kind: frame.kind,
                    line: frame.line,
                };
                node = match self.index.get(&(node, key)) {
                    Some(&child) => child,
                    None => {
                        let child = self.nodes.len();
                        self.nodes.push(RefNode {
                            key,
                            parent: Some(node),
                            children: Vec::new(),
                            self_samples: 0,
                            self_init_samples: 0,
                        });
                        self.nodes[node].children.push(child);
                        self.index.insert((node, key), child);
                        child
                    }
                };
            }
            self.nodes[node].self_samples += 1;
            if is_init {
                self.nodes[node].self_init_samples += 1;
            }
        }

        /// All nodes (index 0 is the synthetic root).
        pub fn nodes(&self) -> &[RefNode] {
            &self.nodes
        }

        /// Total samples recorded.
        pub fn total_samples(&self) -> u64 {
            self.nodes.iter().map(|n| n.self_samples).sum()
        }

        /// Inclusive sample counts, index-aligned with nodes.
        pub fn inclusive(&self) -> Vec<u64> {
            let mut inclusive: Vec<u64> = self.nodes.iter().map(|n| n.self_samples).collect();
            for i in (1..self.nodes.len()).rev() {
                let parent = self.nodes[i].parent.expect("non-root has parent");
                inclusive[parent] += inclusive[i];
            }
            inclusive
        }

        /// The root-to-node path of frames (root exclusive), outermost
        /// first.
        pub fn path_of(&self, i: usize) -> Vec<Frame> {
            let mut frames = Vec::new();
            let mut cur = i;
            while cur != 0 {
                let n = &self.nodes[cur];
                frames.push(Frame {
                    kind: n.key.kind,
                    line: n.key.line,
                });
                cur = n.parent.expect("non-root has parent");
            }
            frames.reverse();
            frames
        }

        /// Merges another tree into this one, one insert per sample (the
        /// original quadratic-ish algorithm).
        pub fn merge(&mut self, other: &ReferenceCct) {
            for (i, node) in other.nodes.iter().enumerate().skip(1) {
                if node.self_samples == 0 {
                    continue;
                }
                let frames = other.path_of(i);
                let runtime = node.self_samples - node.self_init_samples;
                for _ in 0..runtime {
                    self.insert(&frames, false);
                }
                for _ in 0..node.self_init_samples {
                    self.insert(&frames, true);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::{FunctionId, ModuleId};

    fn call(i: usize, line: u32) -> Frame {
        Frame {
            kind: FrameKind::Call(FunctionId::from_index(i)),
            line,
        }
    }

    fn init(i: usize, line: u32) -> Frame {
        Frame {
            kind: FrameKind::ModuleInit(ModuleId::from_index(i)),
            line,
        }
    }

    #[test]
    fn empty_tree() {
        let cct = Cct::new();
        assert!(cct.is_empty());
        assert_eq!(cct.len(), 1);
        assert_eq!(cct.total_samples(), 0);
    }

    #[test]
    fn insert_builds_shared_prefixes() {
        let mut cct = Cct::new();
        cct.insert(&[call(0, 5), call(1, 6)], false);
        cct.insert(&[call(0, 5), call(1, 6)], false);
        cct.insert(&[call(0, 5), call(2, 7)], false);
        // root + f0 + f1 + f2.
        assert_eq!(cct.len(), 4);
        assert_eq!(cct.total_samples(), 3);
    }

    #[test]
    fn distinct_call_sites_are_distinct_nodes() {
        // Same function called from two different lines (the Lib-6
        // multi-path scenario) must not be conflated.
        let mut cct = Cct::new();
        cct.insert(&[call(0, 5), call(9, 6)], false);
        cct.insert(&[call(0, 5), call(9, 8)], false);
        assert_eq!(cct.len(), 4); // root + f0 + two f9 nodes
    }

    #[test]
    fn escalation_propagates_to_ancestors() {
        // Orchestrator f0 has 1 self sample; its callees have 99. Inclusive
        // attribution must credit f0 with all 100 (the Lib-1 problem).
        let mut cct = Cct::new();
        cct.insert(&[call(0, 5)], false);
        for _ in 0..99 {
            cct.insert(&[call(0, 5), call(1, 6)], false);
        }
        let inclusive = cct.inclusive();
        // Node 1 is f0 (first created after root).
        assert_eq!(cct.node(1).self_samples, 1);
        assert_eq!(inclusive[1], 100);
        assert_eq!(inclusive[0], 100);
    }

    #[test]
    fn init_samples_tracked_separately() {
        let mut cct = Cct::new();
        cct.insert(&[init(0, 1)], true);
        cct.insert(&[init(0, 1)], true);
        cct.insert(&[call(0, 5)], false);
        assert_eq!(cct.total_samples(), 3);
        let runtime = cct.inclusive_runtime();
        assert_eq!(runtime[0], 1);
        // Node 1 = the init frame: zero runtime samples.
        assert_eq!(cct.node(1).self_runtime_samples(), 0);
    }

    #[test]
    fn path_to_reconstructs_in_order() {
        let mut cct = Cct::new();
        cct.insert(&[call(0, 5), call(1, 6), call(2, 7)], false);
        // Find the leaf (self_samples == 1).
        let leaf = (0..cct.len())
            .find(|i| cct.node(*i).self_samples == 1)
            .unwrap();
        let path = cct.path_to(leaf);
        assert_eq!(path.len(), 3);
        assert_eq!(path[0].key.kind, FrameKind::Call(FunctionId::from_index(0)));
        assert_eq!(path[2].key.kind, FrameKind::Call(FunctionId::from_index(2)));
    }

    #[test]
    fn merge_preserves_counts() {
        let mut a = Cct::new();
        a.insert(&[call(0, 5)], false);
        let mut b = Cct::new();
        b.insert(&[call(0, 5)], false);
        b.insert(&[init(1, 1)], true);
        a.merge(&b);
        assert_eq!(a.total_samples(), 3);
        // Shared path merged into one node.
        assert_eq!(a.len(), 3);
        let init_node = (1..a.len())
            .find(|i| a.node(*i).self_init_samples > 0)
            .unwrap();
        assert_eq!(a.node(init_node).self_init_samples, 1);
    }

    #[test]
    fn from_samples_builds_tree() {
        let samples = vec![
            SampleRecord {
                path: vec![call(0, 5), call(1, 6)].into(),
                is_init: false,
            },
            SampleRecord {
                path: vec![init(0, 1)].into(),
                is_init: true,
            },
        ];
        let cct = Cct::from_samples(&samples);
        assert_eq!(cct.total_samples(), 2);
    }

    #[test]
    fn empty_path_is_ignored() {
        let mut cct = Cct::new();
        cct.insert(&[], false);
        assert_eq!(cct.total_samples(), 0);
    }

    #[test]
    fn inclusive_conserves_total() {
        let mut cct = Cct::new();
        cct.insert(&[call(0, 1), call(1, 2)], false);
        cct.insert(&[call(0, 1)], false);
        cct.insert(&[call(2, 3)], true);
        let inclusive = cct.inclusive();
        assert_eq!(inclusive[0], cct.total_samples());
    }

    #[test]
    fn children_follow_sibling_chain_in_insertion_order() {
        let mut cct = Cct::new();
        cct.insert(&[call(0, 1)], false);
        cct.insert(&[call(1, 2)], false);
        cct.insert(&[call(0, 1), call(2, 3)], false);
        cct.insert(&[call(1, 2), call(3, 4)], false);
        let roots: Vec<usize> = cct.children(0).collect();
        assert_eq!(roots, vec![1, 2]);
        assert_eq!(cct.children(1).count(), 1);
        assert_eq!(cct.children(2).count(), 1);
        // Leaves have no children.
        let leaf = cct.children(1).next().unwrap();
        assert_eq!(cct.children(leaf).count(), 0);
        // Every child's parent link points back.
        for i in 0..cct.len() {
            for c in cct.children(i) {
                assert_eq!(cct.node(c).parent, Some(i));
            }
        }
    }

    #[test]
    fn insert_weighted_equals_repeated_inserts() {
        let mut weighted = Cct::new();
        weighted.insert_weighted(&[call(0, 1), call(1, 2)], 7, 3);
        let mut repeated = Cct::new();
        for _ in 0..4 {
            repeated.insert(&[call(0, 1), call(1, 2)], false);
        }
        for _ in 0..3 {
            repeated.insert(&[call(0, 1), call(1, 2)], true);
        }
        assert_eq!(weighted.len(), repeated.len());
        assert_eq!(weighted.total_samples(), repeated.total_samples());
        for (a, b) in weighted.nodes().iter().zip(repeated.nodes()) {
            assert_eq!(a.self_samples, b.self_samples);
            assert_eq!(a.self_init_samples, b.self_init_samples);
        }
    }

    #[test]
    fn merge_matches_reference_merge() {
        let paths: Vec<(Vec<Frame>, bool)> = vec![
            (vec![call(0, 1)], false),
            (vec![call(0, 1), call(1, 2)], false),
            (vec![init(0, 1)], true),
            (vec![call(0, 1), call(1, 2)], true),
            (vec![call(2, 9)], false),
        ];
        let mut arena_a = Cct::new();
        let mut arena_b = Cct::new();
        let mut ref_a = reference::ReferenceCct::new();
        let mut ref_b = reference::ReferenceCct::new();
        for (i, (path, is_init)) in paths.iter().enumerate() {
            if i % 2 == 0 {
                arena_a.insert(path, *is_init);
                ref_a.insert(path, *is_init);
            } else {
                arena_b.insert(path, *is_init);
                ref_b.insert(path, *is_init);
            }
        }
        arena_a.merge(&arena_b);
        ref_a.merge(&ref_b);
        assert_eq!(arena_a.total_samples(), ref_a.total_samples());
        assert_eq!(arena_a.len(), ref_a.nodes().len());
        assert_eq!(arena_a.inclusive(), ref_a.inclusive());
    }
}
