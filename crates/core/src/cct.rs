//! The Calling Context Tree (paper §IV-A2, TC-2).
//!
//! Each node is a call site — a frame kind plus the source line it occupies
//! in its caller — so the same function invoked from different places (the
//! Lib-6 multi-path problem) occupies *different* nodes and its usage is
//! never conflated across paths. Sample counts recorded at leaves are
//! **escalated** bottom-up ([`Cct::inclusive`]), which re-attributes callee
//! activity to callers along the chain and solves the cascading-dependency
//! problem: an orchestrator with 1 % self samples still shows the full
//! weight of the work it coordinates (the Lib-1 problem).

use std::collections::HashMap;

use slimstart_appmodel::Application;
use slimstart_pyrt::stack::{Frame, FrameKind};

use crate::profile::SampleRecord;

/// Node identity under one parent: the frame and its current line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CctKey {
    /// The executing frame (function or module init).
    pub kind: FrameKind,
    /// The line at which the *caller* sits (for interior nodes) or the
    /// sampled line (for leaves).
    pub line: u32,
}

/// One calling-context node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CctNode {
    /// Identity.
    pub key: CctKey,
    /// Parent node index (`None` for the synthetic root).
    pub parent: Option<usize>,
    /// Child node indices.
    pub children: Vec<usize>,
    /// Samples whose innermost frame landed here.
    pub self_samples: u64,
    /// Of those, samples taken during module initialization.
    pub self_init_samples: u64,
}

impl CctNode {
    /// Runtime (non-init) self samples.
    pub fn self_runtime_samples(&self) -> u64 {
        self.self_samples - self.self_init_samples
    }
}

/// A calling context tree built from stack samples.
///
/// # Example
///
/// Escalation re-attributes callee samples to their callers, so a thin
/// orchestrator frame is credited with the work it coordinates:
///
/// ```
/// use slimstart_core::cct::Cct;
/// use slimstart_pyrt::stack::{Frame, FrameKind};
/// use slimstart_appmodel::FunctionId;
///
/// let call = |i: usize| Frame { kind: FrameKind::Call(FunctionId::from_index(i)), line: 1 };
/// let mut cct = Cct::new();
/// cct.insert(&[call(0)], false);              // 1 sample in the orchestrator itself
/// for _ in 0..9 {
///     cct.insert(&[call(0), call(1)], false); // 9 samples in its callee
/// }
/// let inclusive = cct.inclusive();
/// assert_eq!(cct.node(1).self_samples, 1);    // flat view: orchestrator looks idle
/// assert_eq!(inclusive[1], 10);               // escalated view: fully busy
/// ```
#[derive(Debug, Clone, Default)]
pub struct Cct {
    nodes: Vec<CctNode>,
    index: HashMap<(usize, CctKey), usize>,
}

impl Cct {
    /// Creates an empty tree with just the synthetic root.
    pub fn new() -> Self {
        let root = CctNode {
            key: CctKey {
                kind: FrameKind::ModuleInit(slimstart_appmodel::ModuleId::from_index(
                    u32::MAX as usize,
                )),
                line: 0,
            },
            parent: None,
            children: Vec::new(),
            self_samples: 0,
            self_init_samples: 0,
        };
        Cct {
            nodes: vec![root],
            index: HashMap::new(),
        }
    }

    /// Builds a tree from a batch of samples.
    pub fn from_samples<'a, I>(samples: I) -> Cct
    where
        I: IntoIterator<Item = &'a SampleRecord>,
    {
        let mut cct = Cct::new();
        for s in samples {
            cct.insert(&s.path, s.is_init);
        }
        cct
    }

    /// Inserts one sampled call path, bumping the leaf's self count.
    pub fn insert(&mut self, path: &[Frame], is_init: bool) {
        if path.is_empty() {
            return;
        }
        let mut node = 0usize;
        for frame in path {
            let key = CctKey {
                kind: frame.kind,
                line: frame.line,
            };
            node = match self.index.get(&(node, key)) {
                Some(&child) => child,
                None => {
                    let child = self.nodes.len();
                    self.nodes.push(CctNode {
                        key,
                        parent: Some(node),
                        children: Vec::new(),
                        self_samples: 0,
                        self_init_samples: 0,
                    });
                    self.nodes[node].children.push(child);
                    self.index.insert((node, key), child);
                    child
                }
            };
        }
        self.nodes[node].self_samples += 1;
        if is_init {
            self.nodes[node].self_init_samples += 1;
        }
    }

    /// Number of nodes including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree holds no samples.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Node accessor.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn node(&self, i: usize) -> &CctNode {
        &self.nodes[i]
    }

    /// All nodes (index 0 is the synthetic root).
    pub fn nodes(&self) -> &[CctNode] {
        &self.nodes
    }

    /// Total samples recorded.
    pub fn total_samples(&self) -> u64 {
        self.nodes.iter().map(|n| n.self_samples).sum()
    }

    /// **Escalation** (TC-2 solution 1): inclusive sample counts, where each
    /// node receives its own samples plus everything from its subtree.
    /// Index-aligned with [`Cct::nodes`].
    pub fn inclusive(&self) -> Vec<u64> {
        let mut inclusive: Vec<u64> = self.nodes.iter().map(|n| n.self_samples).collect();
        // Children always have larger indices than parents (creation order),
        // so one reverse pass propagates bottom-up.
        for i in (1..self.nodes.len()).rev() {
            let parent = self.nodes[i].parent.expect("non-root has parent");
            inclusive[parent] += inclusive[i];
        }
        inclusive
    }

    /// Inclusive *runtime* (non-init) sample counts.
    pub fn inclusive_runtime(&self) -> Vec<u64> {
        let mut inclusive: Vec<u64> = self
            .nodes
            .iter()
            .map(CctNode::self_runtime_samples)
            .collect();
        for i in (1..self.nodes.len()).rev() {
            let parent = self.nodes[i].parent.expect("non-root has parent");
            inclusive[parent] += inclusive[i];
        }
        inclusive
    }

    /// The path from the root to node `i` (exclusive of the synthetic
    /// root), outermost first.
    pub fn path_to(&self, i: usize) -> Vec<&CctNode> {
        let mut path = Vec::new();
        let mut cur = Some(i);
        while let Some(n) = cur {
            if n == 0 {
                break;
            }
            path.push(&self.nodes[n]);
            cur = self.nodes[n].parent;
        }
        path.reverse();
        path
    }

    /// Renders a node's calling context as `file:line → file:line → …`,
    /// the format of the paper's report tables.
    pub fn render_path(&self, i: usize, app: &Application) -> String {
        self.path_to(i)
            .iter()
            .map(|n| {
                let frame = Frame {
                    kind: n.key.kind,
                    line: n.key.line,
                };
                format!("{}:{}", frame.file(app), n.key.line)
            })
            .collect::<Vec<_>>()
            .join(" -> ")
    }

    /// Merges another tree into this one (used when combining profiling
    /// windows).
    pub fn merge(&mut self, other: &Cct) {
        // Re-insert other's samples path by path.
        for (i, node) in other.nodes.iter().enumerate().skip(1) {
            if node.self_samples == 0 {
                continue;
            }
            let frames: Vec<Frame> = other
                .path_to(i)
                .iter()
                .map(|n| Frame {
                    kind: n.key.kind,
                    line: n.key.line,
                })
                .collect();
            let runtime = node.self_samples - node.self_init_samples;
            for _ in 0..runtime {
                self.insert(&frames, false);
            }
            for _ in 0..node.self_init_samples {
                self.insert(&frames, true);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::{FunctionId, ModuleId};

    fn call(i: usize, line: u32) -> Frame {
        Frame {
            kind: FrameKind::Call(FunctionId::from_index(i)),
            line,
        }
    }

    fn init(i: usize, line: u32) -> Frame {
        Frame {
            kind: FrameKind::ModuleInit(ModuleId::from_index(i)),
            line,
        }
    }

    #[test]
    fn empty_tree() {
        let cct = Cct::new();
        assert!(cct.is_empty());
        assert_eq!(cct.len(), 1);
        assert_eq!(cct.total_samples(), 0);
    }

    #[test]
    fn insert_builds_shared_prefixes() {
        let mut cct = Cct::new();
        cct.insert(&[call(0, 5), call(1, 6)], false);
        cct.insert(&[call(0, 5), call(1, 6)], false);
        cct.insert(&[call(0, 5), call(2, 7)], false);
        // root + f0 + f1 + f2.
        assert_eq!(cct.len(), 4);
        assert_eq!(cct.total_samples(), 3);
    }

    #[test]
    fn distinct_call_sites_are_distinct_nodes() {
        // Same function called from two different lines (the Lib-6
        // multi-path scenario) must not be conflated.
        let mut cct = Cct::new();
        cct.insert(&[call(0, 5), call(9, 6)], false);
        cct.insert(&[call(0, 5), call(9, 8)], false);
        assert_eq!(cct.len(), 4); // root + f0 + two f9 nodes
    }

    #[test]
    fn escalation_propagates_to_ancestors() {
        // Orchestrator f0 has 1 self sample; its callees have 99. Inclusive
        // attribution must credit f0 with all 100 (the Lib-1 problem).
        let mut cct = Cct::new();
        cct.insert(&[call(0, 5)], false);
        for _ in 0..99 {
            cct.insert(&[call(0, 5), call(1, 6)], false);
        }
        let inclusive = cct.inclusive();
        // Node 1 is f0 (first created after root).
        assert_eq!(cct.node(1).self_samples, 1);
        assert_eq!(inclusive[1], 100);
        assert_eq!(inclusive[0], 100);
    }

    #[test]
    fn init_samples_tracked_separately() {
        let mut cct = Cct::new();
        cct.insert(&[init(0, 1)], true);
        cct.insert(&[init(0, 1)], true);
        cct.insert(&[call(0, 5)], false);
        assert_eq!(cct.total_samples(), 3);
        let runtime = cct.inclusive_runtime();
        assert_eq!(runtime[0], 1);
        // Node 1 = the init frame: zero runtime samples.
        assert_eq!(cct.node(1).self_runtime_samples(), 0);
    }

    #[test]
    fn path_to_reconstructs_in_order() {
        let mut cct = Cct::new();
        cct.insert(&[call(0, 5), call(1, 6), call(2, 7)], false);
        // Find the leaf (self_samples == 1).
        let leaf = (0..cct.len())
            .find(|i| cct.node(*i).self_samples == 1)
            .unwrap();
        let path = cct.path_to(leaf);
        assert_eq!(path.len(), 3);
        assert_eq!(path[0].key.kind, FrameKind::Call(FunctionId::from_index(0)));
        assert_eq!(path[2].key.kind, FrameKind::Call(FunctionId::from_index(2)));
    }

    #[test]
    fn merge_preserves_counts() {
        let mut a = Cct::new();
        a.insert(&[call(0, 5)], false);
        let mut b = Cct::new();
        b.insert(&[call(0, 5)], false);
        b.insert(&[init(1, 1)], true);
        a.merge(&b);
        assert_eq!(a.total_samples(), 3);
        // Shared path merged into one node.
        assert_eq!(a.len(), 3);
        let init_node = (1..a.len())
            .find(|i| a.node(*i).self_init_samples > 0)
            .unwrap();
        assert_eq!(a.node(init_node).self_init_samples, 1);
    }

    #[test]
    fn from_samples_builds_tree() {
        let samples = vec![
            SampleRecord {
                path: vec![call(0, 5), call(1, 6)],
                is_init: false,
            },
            SampleRecord {
                path: vec![init(0, 1)],
                is_init: true,
            },
        ];
        let cct = Cct::from_samples(&samples);
        assert_eq!(cct.total_samples(), 2);
    }

    #[test]
    fn empty_path_is_ignored() {
        let mut cct = Cct::new();
        cct.insert(&[], false);
        assert_eq!(cct.total_samples(), 0);
    }

    #[test]
    fn inclusive_conserves_total() {
        let mut cct = Cct::new();
        cct.insert(&[call(0, 1), call(1, 2)], false);
        cct.insert(&[call(0, 1)], false);
        cct.insert(&[call(2, 3)], true);
        let inclusive = cct.inclusive();
        assert_eq!(inclusive[0], cct.total_samples());
    }
}
