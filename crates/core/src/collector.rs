//! The asynchronous profile collector (paper §IV-D).
//!
//! "Profiling data is collected locally and batch-transferred asynchronously
//! to external storage services, such as AWS DynamoDB or S3 [...] Once the
//! data is collected, SLIMSTART runs a background service to perform the
//! analysis."
//!
//! [`AsyncCollector`] is that background service: a real OS thread draining
//! a crossbeam channel of [`ProfileBatch`] wire
//! payloads, decoding them, and folding them into a [`ProfileStore`]. The
//! function side only pays the (simulated) hand-off cost; decoding happens
//! off the critical path, exactly like the paper's design. The collector
//! also tracks total bytes transferred, which the experiment harness can
//! report.

use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;

use crate::profile::ProfileStore;
use crate::wire::{ProfileBatch, WireError};

/// A handle for submitting encoded batches to the collector.
#[derive(Debug, Clone)]
pub struct BatchSender {
    tx: Sender<Bytes>,
}

impl BatchSender {
    /// Submits one encoded batch. Returns the payload size in bytes.
    ///
    /// Submissions after [`AsyncCollector::finish`] are dropped silently
    /// (the collector has left), mirroring fire-and-forget uploads.
    pub fn send(&self, payload: Bytes) -> usize {
        if payload.is_empty() {
            return 0; // reserved as the shutdown sentinel
        }
        let len = payload.len();
        let _ = self.tx.send(payload);
        len
    }

    /// Encodes and submits a batch, returning the wire size.
    pub fn send_batch(&self, batch: &ProfileBatch) -> usize {
        self.send(batch.encode())
    }
}

/// Statistics accumulated by the collector.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// Batches successfully decoded.
    pub batches: u64,
    /// Total wire bytes received.
    pub bytes: u64,
    /// Batches rejected as malformed.
    pub decode_errors: u64,
}

/// A background service that decodes profile batches into a store.
pub struct AsyncCollector {
    store: Arc<Mutex<ProfileStore>>,
    stats: Arc<Mutex<CollectorStats>>,
    tx: Option<Sender<Bytes>>,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for AsyncCollector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncCollector")
            .field("stats", &*self.stats.lock())
            .field("running", &self.worker.is_some())
            .finish()
    }
}

impl AsyncCollector {
    /// Spawns the collector thread writing into a fresh store.
    pub fn start() -> AsyncCollector {
        let store = ProfileStore::shared();
        AsyncCollector::start_with_store(store)
    }

    /// Spawns the collector thread writing into an existing store.
    pub fn start_with_store(store: Arc<Mutex<ProfileStore>>) -> AsyncCollector {
        let (tx, rx) = unbounded::<Bytes>();
        let stats = Arc::new(Mutex::new(CollectorStats::default()));
        let store_for_worker = Arc::clone(&store);
        let stats_for_worker = Arc::clone(&stats);
        let worker = std::thread::Builder::new()
            .name("slimstart-collector".to_string())
            .spawn(move || {
                for payload in rx {
                    // Zero-length payload is the shutdown sentinel (real
                    // batches are at least 12 bytes): outstanding
                    // BatchSender clones must not keep the worker alive.
                    if payload.is_empty() {
                        break;
                    }
                    let len = payload.len() as u64;
                    match ProfileBatch::decode(payload) {
                        Ok(batch) => {
                            let mut store = store_for_worker.lock();
                            store.absorb(batch.samples, &batch.init_micros, 1);
                            let mut stats = stats_for_worker.lock();
                            stats.batches += 1;
                            stats.bytes += len;
                        }
                        Err(_e @ WireError::BadMagic)
                        | Err(_e @ WireError::Truncated)
                        | Err(_e @ WireError::BadFrameKind(_)) => {
                            stats_for_worker.lock().decode_errors += 1;
                        }
                    }
                }
            })
            .expect("collector thread spawns");
        AsyncCollector {
            store,
            stats,
            tx: Some(tx),
            worker: Some(worker),
        }
    }

    /// A cloneable submission handle for sampler attachments.
    ///
    /// # Panics
    ///
    /// Panics if called after [`AsyncCollector::finish`].
    pub fn sender(&self) -> BatchSender {
        BatchSender {
            tx: self.tx.as_ref().expect("collector still running").clone(),
        }
    }

    /// Shared handle to the store the collector fills.
    pub fn store(&self) -> Arc<Mutex<ProfileStore>> {
        Arc::clone(&self.store)
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> CollectorStats {
        *self.stats.lock()
    }

    /// Signals shutdown, waits for the worker to drain everything queued
    /// before the signal, and returns the final statistics. Idempotent.
    ///
    /// Shutdown uses an in-band sentinel rather than channel closure so
    /// that outstanding [`BatchSender`] clones (held by still-warm
    /// containers) cannot stall the join.
    pub fn finish(&mut self) -> CollectorStats {
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(Bytes::new()); // shutdown sentinel
        }
        if let Some(worker) = self.worker.take() {
            worker.join().expect("collector thread exits cleanly");
        }
        self.stats()
    }
}

impl Drop for AsyncCollector {
    fn drop(&mut self) {
        // Non-blocking teardown guarantee (C-DTOR-BLOCK): `finish` is the
        // blocking API; Drop only signals shutdown and detaches.
        if let Some(tx) = self.tx.take() {
            let _ = tx.send(Bytes::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::{FunctionId, ModuleId};
    use slimstart_pyrt::stack::{Frame, FrameKind};

    use crate::profile::SampleRecord;
    use std::collections::HashMap;

    fn sample(i: usize) -> SampleRecord {
        SampleRecord {
            path: vec![Frame {
                kind: FrameKind::Call(FunctionId::from_index(i)),
                line: 7,
            }]
            .into(),
            is_init: false,
        }
    }

    #[test]
    fn batches_arrive_in_the_store() {
        let mut collector = AsyncCollector::start();
        let sender = collector.sender();
        let mut init = HashMap::new();
        init.insert(ModuleId::from_index(4), 2_000u64);
        for i in 0..5 {
            let batch = ProfileBatch {
                samples: vec![sample(i)],
                init_micros: init.clone(),
            };
            let n = sender.send_batch(&batch);
            assert!(n > 0);
        }
        let stats = collector.finish();
        assert_eq!(stats.batches, 5);
        assert_eq!(stats.decode_errors, 0);
        assert!(stats.bytes > 0);
        let store = collector.store();
        let store = store.lock();
        assert_eq!(store.samples.len(), 5);
        assert_eq!(
            store.init_time(ModuleId::from_index(4)),
            slimstart_simcore::time::SimDuration::from_micros(10_000)
        );
    }

    #[test]
    fn malformed_payloads_are_counted_not_fatal() {
        let mut collector = AsyncCollector::start();
        let sender = collector.sender();
        sender.send(Bytes::from_static(b"garbage"));
        sender.send_batch(&ProfileBatch {
            samples: vec![sample(0)],
            init_micros: HashMap::new(),
        });
        let stats = collector.finish();
        assert_eq!(stats.decode_errors, 1);
        assert_eq!(stats.batches, 1);
        assert_eq!(collector.store().lock().samples.len(), 1);
    }

    #[test]
    fn finish_is_idempotent() {
        let mut collector = AsyncCollector::start();
        let a = collector.finish();
        let b = collector.finish();
        assert_eq!(a, b);
    }

    #[test]
    fn senders_survive_collector_shutdown() {
        let mut collector = AsyncCollector::start();
        let sender = collector.sender();
        collector.finish();
        // Fire-and-forget: no panic, payload silently dropped.
        sender.send(Bytes::from_static(b"late"));
    }

    #[test]
    fn start_with_existing_store_appends() {
        let store = ProfileStore::shared();
        store.lock().invocations = 7;
        let mut collector = AsyncCollector::start_with_store(Arc::clone(&store));
        collector.sender().send_batch(&ProfileBatch {
            samples: vec![sample(1)],
            init_micros: HashMap::new(),
        });
        collector.finish();
        let store = store.lock();
        assert_eq!(store.invocations, 7);
        assert_eq!(store.samples.len(), 1);
    }
}
