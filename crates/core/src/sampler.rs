//! The attachable sampling profiler (paper §IV-A2, TC-1).
//!
//! [`SamplerAttachment`] implements the runtime's
//! [`ExecutionObserver`] seam.
//! On every virtual-time advance it:
//!
//! 1. captures stack snapshots at each sampling-period boundary crossed by
//!    the interval (the timer-signal model), charging the per-sample capture
//!    cost back to the application — the overhead Fig. 9 measures;
//! 2. measures *exact* per-module initialization time by attributing the
//!    interval to the innermost module-init frame, which yields the
//!    hierarchical breakdown of Eqs. 1–3;
//! 3. buffers samples locally and transfers them to the shared
//!    [`ProfileStore`] in batches at invocation end, charging the flush cost
//!    only when a batch boundary is crossed (asynchronous batched transfer,
//!    TC-1 strategies 2–3).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use slimstart_appmodel::{Application, ModuleId};
use slimstart_pyrt::observer::{AdvanceContext, ExecutionObserver};
use slimstart_pyrt::stack::{CallStack, Frame};
use slimstart_simcore::time::{SimDuration, SimTime};

use crate::collector::BatchSender;
use crate::config::SamplerConfig;
use crate::profile::{ProfileStore, SampleRecord};
use crate::wire::ProfileBatch;

/// Where a sampler attachment delivers its data.
enum SampleSink {
    /// Synchronous in-process store (the default test/analysis path).
    Direct(Arc<Mutex<ProfileStore>>),
    /// Encoded batches over a channel to the asynchronous collector
    /// (the paper's production path, §IV-D).
    Channel(BatchSender),
}

impl std::fmt::Debug for SampleSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SampleSink::Direct(_) => write!(f, "Direct"),
            SampleSink::Channel(_) => write!(f, "Channel"),
        }
    }
}

/// Zero-clone stack capture: a one-entry cache keyed by the stack's
/// incremental fingerprint.
///
/// Consecutive samples of an unchanged stack — the dominant case, since a
/// single long `advance` (a module top-level, a hot work statement) crosses
/// many sampling-period boundaries — return `Arc` clones of one shared
/// path allocation. The fingerprint is a one-word filter; a hit is
/// confirmed with a frame-slice comparison, so a (cosmically unlikely)
/// fingerprint collision can never corrupt a capture.
#[derive(Debug, Default)]
pub struct CaptureCache {
    fingerprint: u64,
    path: Option<Arc<[Frame]>>,
}

impl CaptureCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        CaptureCache::default()
    }

    /// Captures the stack's current path, reusing the previous allocation
    /// when the stack is unchanged.
    #[inline]
    pub fn capture(&mut self, stack: &CallStack) -> Arc<[Frame]> {
        let fingerprint = stack.fingerprint();
        if let Some(cached) = &self.path {
            if self.fingerprint == fingerprint && cached.as_ref() == stack.frames() {
                return Arc::clone(cached);
            }
        }
        let path: Arc<[Frame]> = stack.frames().into();
        self.fingerprint = fingerprint;
        self.path = Some(Arc::clone(&path));
        path
    }
}

/// A per-container profiler attachment.
pub struct SamplerAttachment {
    config: SamplerConfig,
    sink: SampleSink,
    next_sample_at: SimTime,
    buffer: Vec<SampleRecord>,
    capture: CaptureCache,
    init_micros: HashMap<ModuleId, u64>,
    pending_batches: u64,
    samples_taken: u64,
}

impl std::fmt::Debug for SamplerAttachment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SamplerAttachment")
            .field("period", &self.config.period)
            .field("buffered", &self.buffer.len())
            .field("samples_taken", &self.samples_taken)
            .finish()
    }
}

impl SamplerAttachment {
    /// Creates an attachment writing into `store`.
    ///
    /// # Panics
    ///
    /// Panics if the configured period is zero.
    pub fn new(config: SamplerConfig, store: Arc<Mutex<ProfileStore>>) -> Self {
        Self::with_sink(config, SampleSink::Direct(store))
    }

    /// Creates an attachment that ships encoded batches to an
    /// [`AsyncCollector`](crate::collector::AsyncCollector).
    ///
    /// # Panics
    ///
    /// Panics if the configured period is zero.
    pub fn with_transport(config: SamplerConfig, sender: BatchSender) -> Self {
        Self::with_sink(config, SampleSink::Channel(sender))
    }

    fn with_sink(config: SamplerConfig, sink: SampleSink) -> Self {
        assert!(!config.period.is_zero(), "sampling period must be positive");
        SamplerAttachment {
            next_sample_at: SimTime::ZERO + config.period,
            config,
            sink,
            buffer: Vec::new(),
            capture: CaptureCache::new(),
            init_micros: HashMap::new(),
            pending_batches: 0,
            samples_taken: 0,
        }
    }

    /// Total samples captured by this attachment.
    pub fn samples_taken(&self) -> u64 {
        self.samples_taken
    }
}

impl ExecutionObserver for SamplerAttachment {
    fn on_advance(&mut self, ctx: AdvanceContext<'_>) -> SimDuration {
        // Exact init-time attribution: the interval belongs to the innermost
        // module-init frame, if any (the module actually executing its top
        // level — nested loads pause the outer module's top level).
        if let Some(init_frame) = ctx.stack.frames().iter().rev().find(|f| f.is_init()) {
            let module = init_frame.module(ctx.app);
            *self.init_micros.entry(module).or_insert(0) += ctx.to.since(ctx.from).as_micros();
        }

        // Statistical sampling at period boundaries.
        let mut overhead = SimDuration::ZERO;
        while self.next_sample_at <= ctx.to {
            if self.next_sample_at > ctx.from && ctx.stack.depth() > 0 {
                self.buffer.push(SampleRecord {
                    path: self.capture.capture(ctx.stack),
                    is_init: ctx.stack.in_init(),
                });
                self.samples_taken += 1;
                overhead += self.config.per_sample_cost;
                if self.buffer.len().is_multiple_of(self.config.batch_size) {
                    self.pending_batches += 1;
                }
            }
            self.next_sample_at += self.config.period;
        }
        overhead
    }

    fn on_invocation_end(&mut self, _app: &Application) -> SimDuration {
        // Local spool hands everything to the collector; the synchronous
        // cost charged to the invocation is only the batch hand-off.
        let flushes = self.pending_batches;
        self.pending_batches = 0;
        match &self.sink {
            SampleSink::Direct(store) => {
                let mut store = store.lock();
                store.absorb(std::mem::take(&mut self.buffer), &self.init_micros, flushes);
                self.init_micros.clear();
                store.invocations += 1;
            }
            SampleSink::Channel(sender) => {
                let batch = ProfileBatch {
                    samples: std::mem::take(&mut self.buffer),
                    init_micros: std::mem::take(&mut self.init_micros),
                };
                if !batch.samples.is_empty() || !batch.init_micros.is_empty() {
                    sender.send_batch(&batch);
                }
            }
        }
        self.config.flush_cost.mul_f64(flushes as f64)
    }

    fn extra_mem_kb(&self) -> u64 {
        (self.buffer.len() as u64 * self.config.bytes_per_sample) / 1024
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::app::AppBuilder;
    use slimstart_appmodel::function::{Stmt, StmtKind};
    use slimstart_appmodel::imports::ImportMode;
    use slimstart_pyrt::process::Process;
    use slimstart_simcore::rng::SimRng;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    /// handler imports lib (100 ms init); handler fn works 50 ms then calls
    /// lib.work (50 ms).
    fn app() -> Arc<Application> {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(10), 0);
        let root = b.add_library_module("lib", ms(100), 0, false, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        let f_lib = b.add_function(
            "work",
            root,
            5,
            vec![Stmt {
                line: 6,
                kind: StmtKind::Work(ms(50)),
            }],
        );
        let f = b.add_function(
            "main",
            h,
            4,
            vec![
                Stmt {
                    line: 5,
                    kind: StmtKind::Work(ms(50)),
                },
                Stmt {
                    line: 6,
                    kind: StmtKind::call(f_lib),
                },
            ],
        );
        b.add_handler("main", f);
        Arc::new(b.finish().unwrap())
    }

    fn run_profiled(config: SamplerConfig) -> (Arc<Mutex<ProfileStore>>, Arc<Application>) {
        let app = app();
        let store = ProfileStore::shared();
        let mut p = Process::new(Arc::clone(&app), 1.0);
        p.attach_observer(Box::new(SamplerAttachment::new(config, Arc::clone(&store))));
        let root = app.module_by_name("handler").unwrap();
        p.cold_start(root).unwrap();
        let h = app.handler_by_name("main").unwrap();
        p.invoke(h, &mut SimRng::seed_from(1)).unwrap();
        (store, app)
    }

    #[test]
    fn captures_samples_at_period() {
        let cfg = SamplerConfig {
            per_sample_cost: SimDuration::ZERO,
            flush_cost: SimDuration::ZERO,
            ..SamplerConfig::default()
        };
        let (store, _) = run_profiled(cfg);
        let store = store.lock();
        // 210 ms of activity at 5 ms period → ~42 samples.
        let n = store.samples.len();
        assert!((38..=44).contains(&n), "samples = {n}");
    }

    #[test]
    fn classifies_init_vs_runtime_samples() {
        let cfg = SamplerConfig {
            per_sample_cost: SimDuration::ZERO,
            flush_cost: SimDuration::ZERO,
            ..SamplerConfig::default()
        };
        let (store, app) = run_profiled(cfg);
        let store = store.lock();
        // Init phase: 110 ms → ~22 samples; runtime: 100 ms → ~20.
        let init = store.init_sample_count();
        let runtime = store.runtime_sample_count();
        assert!((19..=24).contains(&(init as usize)), "init = {init}");
        assert!(
            (18..=22).contains(&(runtime as usize)),
            "runtime = {runtime}"
        );
        // Runtime samples never contain init frames.
        for s in store.samples.iter().filter(|s| !s.is_init) {
            assert!(s.path.iter().all(|f| !f.is_init()));
        }
        let _ = app;
    }

    #[test]
    fn exact_init_attribution_matches_module_costs() {
        let cfg = SamplerConfig {
            per_sample_cost: SimDuration::ZERO,
            flush_cost: SimDuration::ZERO,
            ..SamplerConfig::default()
        };
        let (store, app) = run_profiled(cfg);
        let store = store.lock();
        let lib = app.module_by_name("lib").unwrap();
        let handler = app.module_by_name("handler").unwrap();
        assert_eq!(store.init_time(lib), ms(100));
        assert_eq!(store.init_time(handler), ms(10));
    }

    #[test]
    fn sampling_overhead_is_charged() {
        let zero = SamplerConfig {
            per_sample_cost: SimDuration::ZERO,
            flush_cost: SimDuration::ZERO,
            ..SamplerConfig::default()
        };
        let costly = SamplerConfig {
            per_sample_cost: SimDuration::from_micros(500),
            flush_cost: SimDuration::ZERO,
            ..SamplerConfig::default()
        };
        let app = app();
        let run = |cfg: SamplerConfig| {
            let store = ProfileStore::shared();
            let mut p = Process::new(Arc::clone(&app), 1.0);
            p.attach_observer(Box::new(SamplerAttachment::new(cfg, Arc::clone(&store))));
            p.cold_start(app.module_by_name("handler").unwrap())
                .unwrap();
            p.invoke(
                app.handler_by_name("main").unwrap(),
                &mut SimRng::seed_from(1),
            )
            .unwrap();
            p.clock()
        };
        let base = run(zero);
        let slow = run(costly);
        assert!(slow > base, "profiling overhead must inflate latency");
        // ~42 samples * 500us ≈ 21 ms.
        let extra = slow.since(base);
        assert!((ms(15)..=ms(25)).contains(&extra), "overhead = {extra}");
    }

    #[test]
    fn buffer_memory_reported_then_released_on_flush() {
        let cfg = SamplerConfig {
            per_sample_cost: SimDuration::ZERO,
            flush_cost: SimDuration::ZERO,
            bytes_per_sample: 2048,
            ..SamplerConfig::default()
        };
        let app = app();
        let store = ProfileStore::shared();
        let mut attachment = SamplerAttachment::new(cfg, Arc::clone(&store));
        assert_eq!(attachment.extra_mem_kb(), 0);
        // Simulate captures by pushing through a real run.
        let mut p = Process::new(Arc::clone(&app), 1.0);
        p.attach_observer(Box::new(attachment));
        p.cold_start(app.module_by_name("handler").unwrap())
            .unwrap();
        assert!(p.mem_kb() > 0); // buffered samples pinned
        p.invoke(
            app.handler_by_name("main").unwrap(),
            &mut SimRng::seed_from(1),
        )
        .unwrap();
        // After invocation end everything flushed.
        let obs = p.detach_observer().unwrap();
        assert_eq!(obs.extra_mem_kb(), 0);
        attachment = SamplerAttachment::new(cfg, store);
        assert_eq!(attachment.samples_taken(), 0);
    }

    #[test]
    fn batch_flush_cost_charged_per_batch() {
        let cfg = SamplerConfig {
            period: SimDuration::from_millis(1),
            per_sample_cost: SimDuration::ZERO,
            flush_cost: ms(10),
            batch_size: 100,
            ..SamplerConfig::default()
        };
        // 210 ms at 1 ms period → ~210 samples → 2 full batches.
        let app = app();
        let store = ProfileStore::shared();
        let mut p = Process::new(Arc::clone(&app), 1.0);
        p.attach_observer(Box::new(SamplerAttachment::new(cfg, Arc::clone(&store))));
        p.cold_start(app.module_by_name("handler").unwrap())
            .unwrap();
        let out = p
            .invoke(
                app.handler_by_name("main").unwrap(),
                &mut SimRng::seed_from(1),
            )
            .unwrap();
        // Runtime work is 100 ms; exec also carries 2 batch flushes = 20 ms.
        assert_eq!(out.exec_time, ms(120));
        assert_eq!(store.lock().batches_transferred, 2);
    }

    #[test]
    fn capture_cache_reuses_allocation_for_identical_stacks() {
        use slimstart_appmodel::FunctionId;
        use slimstart_pyrt::stack::FrameKind;
        let mut stack = CallStack::new();
        stack.push(FrameKind::Call(FunctionId::from_index(0)), 1);
        let mut cache = CaptureCache::new();
        let a = cache.capture(&stack);
        let b = cache.capture(&stack);
        assert!(Arc::ptr_eq(&a, &b), "unchanged stack must share the path");
        stack.set_line(2);
        let c = cache.capture(&stack);
        assert!(!Arc::ptr_eq(&b, &c));
        assert_eq!(c.as_ref(), stack.frames());
        stack.push(FrameKind::Call(FunctionId::from_index(1)), 3);
        let d = cache.capture(&stack);
        assert_eq!(d.len(), 2);
        stack.pop();
        // Back to the previous shape: contents equal even though the cache
        // was overwritten in between.
        assert_eq!(cache.capture(&stack).as_ref(), c.as_ref());
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_rejected() {
        let cfg = SamplerConfig {
            period: SimDuration::ZERO,
            ..SamplerConfig::default()
        };
        SamplerAttachment::new(cfg, ProfileStore::shared());
    }
}
