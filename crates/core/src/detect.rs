//! Inefficiency detection: combining init overhead with utilization
//! (paper §IV-A2, "Detecting inefficient library usage").
//!
//! Libraries are ranked by initialization latency; those with significant
//! overhead but **no** runtime samples are flagged *unused*, those below the
//! 2 % utilization threshold are flagged *rarely used*. Detection works at
//! library granularity first and descends to sub-packages when a library is
//! hot overall but carries cold subtrees (the igraph-drawing pattern of
//! Table I).

use slimstart_analyzer::{verify_deferral, SafetyViolation};
use slimstart_appmodel::{Application, LibraryId};
use slimstart_simcore::time::SimDuration;

use crate::config::DetectorConfig;
use crate::initprof::InitBreakdown;
use crate::utilization::Utilization;

/// How a flagged package is (not) used under the observed workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UsageClass {
    /// Zero runtime samples across the whole profiling window: with enough
    /// executions, confidently unused (law of large numbers, §II-B).
    Unused,
    /// Below the rare-use threshold (2 % of runtime samples).
    RarelyUsed,
}

/// Why the optimizer will not defer a flagged package.
///
/// Each variant corresponds to one violation class of the
/// [`slimstart_analyzer`] deferral-safety verifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// The package's top level performs observable side effects; moving its
    /// execution point would change program behaviour.
    SideEffects,
    /// A side-effectful *ancestor* package outside the subtree loads
    /// eagerly only through the boundary imports being deferred.
    ParentSideEffects,
    /// A function touches an attribute of the package before the first call
    /// that would trigger the deferred import.
    ImportTimeTouch,
    /// Deferring the boundary imports would close a cycle among deferred
    /// import edges.
    DeferredCycle,
}

impl SkipReason {
    /// Short human-readable label, used by report rendering.
    pub fn label(self) -> &'static str {
        match self {
            SkipReason::SideEffects => "side effects",
            SkipReason::ParentSideEffects => "parent side effects",
            SkipReason::ImportTimeTouch => "import-time touch",
            SkipReason::DeferredCycle => "deferred-import cycle",
        }
    }

    /// Maps a verifier violation to the matching skip reason.
    pub fn from_violation(violation: &SafetyViolation) -> SkipReason {
        match violation {
            SafetyViolation::SideEffectfulModule { .. } => SkipReason::SideEffects,
            SafetyViolation::ParentSideEffects { .. } => SkipReason::ParentSideEffects,
            SafetyViolation::ImportTimeTouch { .. } => SkipReason::ImportTimeTouch,
            SafetyViolation::DeferredCycle { .. } => SkipReason::DeferredCycle,
        }
    }
}

/// One flagged package.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Dotted package path (a library root or a sub-package).
    pub package: String,
    /// Owning library.
    pub library: LibraryId,
    /// Usage classification.
    pub class: UsageClass,
    /// Path-inclusive utilization (share of runtime samples).
    pub utilization: f64,
    /// Mean per-cold-start initialization time of the subtree.
    pub init_time: SimDuration,
    /// Share of total initialization time.
    pub init_fraction: f64,
    /// Whether deferral is safe.
    pub deferrable: bool,
    /// Why not, when it is not.
    pub skip_reason: Option<SkipReason>,
}

/// Per-library overview rows (the top half of the paper's report tables).
#[derive(Debug, Clone, PartialEq)]
pub struct LibrarySummary {
    /// Library id.
    pub library: LibraryId,
    /// Library name.
    pub name: String,
    /// U(L).
    pub utilization: f64,
    /// Share of total initialization time.
    pub init_fraction: f64,
    /// Mean per-cold-start initialization time.
    pub init_time: SimDuration,
}

/// The full detection output for one application.
#[derive(Debug, Clone, PartialEq)]
pub struct InefficiencyReport {
    /// Application name.
    pub app_name: String,
    /// Whether the 10 % gate passed (no findings are produced otherwise).
    pub gate_passed: bool,
    /// Mean total initialization time per cold start.
    pub total_init: SimDuration,
    /// Mean end-to-end latency.
    pub e2e_mean: SimDuration,
    /// Initialization share of end-to-end time.
    pub init_share: f64,
    /// Per-library overview.
    pub libraries: Vec<LibrarySummary>,
    /// Flagged packages, ranked by initialization time (descending).
    pub findings: Vec<Finding>,
}

impl InefficiencyReport {
    /// The flagged packages the optimizer will actually defer.
    pub fn deferrable_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.deferrable)
    }

    /// Total init share of end-to-end time covered by all findings — the
    /// DYN upper bound of Fig. 2.
    pub fn detected_init_fraction(&self) -> f64 {
        self.findings.iter().map(|f| f.init_fraction).sum()
    }
}

/// Runs detection.
pub fn detect(
    app: &Application,
    breakdown: &InitBreakdown,
    utilization: &Utilization,
    config: &DetectorConfig,
) -> InefficiencyReport {
    let gate_passed = breakdown.passes_gate(config.gate_threshold);

    let libraries: Vec<LibrarySummary> = app
        .libraries()
        .iter()
        .enumerate()
        .map(|(i, lib)| {
            let id = LibraryId::from_index(i);
            LibrarySummary {
                library: id,
                name: lib.name().to_string(),
                utilization: utilization.library(id),
                init_fraction: breakdown.package_init_fraction(lib.name()),
                init_time: breakdown
                    .by_library
                    .get(i)
                    .copied()
                    .unwrap_or(SimDuration::ZERO),
            }
        })
        .collect();

    let mut findings = Vec::new();
    if gate_passed {
        let tree = app.package_tree();
        for (i, lib) in app.libraries().iter().enumerate() {
            let id = LibraryId::from_index(i);
            descend(
                app,
                &tree,
                lib.name(),
                1,
                id,
                breakdown,
                utilization,
                config,
                &mut findings,
            );
        }
        findings.sort_by_key(|f| std::cmp::Reverse(f.init_time));
    }

    InefficiencyReport {
        app_name: app.name().to_string(),
        gate_passed,
        total_init: breakdown.total,
        e2e_mean: breakdown.e2e_mean,
        init_share: breakdown.total_share(),
        libraries,
        findings,
    }
}

fn qualifies(util: f64, init_fraction: f64, config: &DetectorConfig) -> bool {
    util < config.rare_threshold && init_fraction >= config.min_init_share
}

/// Hierarchical descent (Fig. 6): flag the *highest* node whose whole
/// subtree qualifies; otherwise recurse into its children — down to
/// `config.max_depth` — so a mostly-hot package can still shed a cold
/// child. The depth cap exists because utilization evidence weakens with
/// depth: a deep module with no samples may still define names its hot
/// siblings reference at definition time.
#[allow(clippy::too_many_arguments)]
fn descend(
    app: &Application,
    tree: &slimstart_appmodel::library::PackageTree,
    package: &str,
    depth: usize,
    library: LibraryId,
    breakdown: &InitBreakdown,
    utilization: &Utilization,
    config: &DetectorConfig,
    findings: &mut Vec<Finding>,
) {
    let util = utilization.package(package);
    if qualifies(util, breakdown.package_init_fraction(package), config) {
        findings.push(make_finding(app, package, library, util, breakdown));
        return; // whole subtree flagged; no need to descend further
    }
    if depth >= config.max_depth {
        return;
    }
    if let Some(node) = tree.node(package) {
        for child in &node.children {
            descend(
                app,
                tree,
                child,
                depth + 1,
                library,
                breakdown,
                utilization,
                config,
                findings,
            );
        }
    }
}

fn make_finding(
    app: &Application,
    package: &str,
    library: LibraryId,
    utilization: f64,
    breakdown: &InitBreakdown,
) -> Finding {
    // The deferral-safety verifier replaces the old single side-effect
    // subtree scan: it additionally proves parent-package safety, checks
    // import-time touches and rejects deferred-import cycles.
    let skip_reason = verify_deferral(app, package)
        .err()
        .map(|v| SkipReason::from_violation(&v));
    Finding {
        package: package.to_string(),
        library,
        class: if utilization == 0.0 {
            UsageClass::Unused
        } else {
            UsageClass::RarelyUsed
        },
        utilization,
        init_time: breakdown
            .by_package
            .get(package)
            .copied()
            .unwrap_or(SimDuration::ZERO),
        init_fraction: breakdown.package_init_fraction(package),
        deferrable: skip_reason.is_none(),
        skip_reason,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use std::collections::HashMap;

    use slimstart_appmodel::app::AppBuilder;
    use slimstart_appmodel::imports::ImportMode;
    use slimstart_appmodel::ModuleId;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    /// lib with hot + dead + sfx sub-packages, plus a rare library.
    fn app() -> Application {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("pandas");
        let rare_lib = b.add_library("xmlschema");
        let h = b.add_app_module("handler", ms(1), 0);
        let root = b.add_library_module("pandas", ms(2), 0, false, lib);
        let hot = b.add_library_module("pandas.core", ms(20), 0, false, lib);
        let dead = b.add_library_module("pandas.plotting", ms(60), 0, false, lib);
        let sfx = b.add_library_module("pandas.plugins", ms(10), 0, true, lib);
        let xml = b.add_library_module("xmlschema", ms(30), 0, false, rare_lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        b.add_import(h, xml, 3, ImportMode::Global).unwrap();
        b.add_import(root, hot, 2, ImportMode::Global).unwrap();
        b.add_import(root, dead, 3, ImportMode::Global).unwrap();
        b.add_import(root, sfx, 4, ImportMode::Global).unwrap();
        let f = b.add_function("main", h, 4, vec![]);
        b.add_handler("main", f);
        b.finish().unwrap()
    }

    fn breakdown(app: &Application, e2e: SimDuration) -> InitBreakdown {
        let mut by_module = HashMap::new();
        for (i, m) in app.modules().iter().enumerate() {
            by_module.insert(ModuleId::from_index(i), m.init_cost());
        }
        let mut by_library = vec![SimDuration::ZERO; app.libraries().len()];
        for (m, d) in &by_module {
            if let Some(l) = app.module(*m).library() {
                by_library[l.index()] += *d;
            }
        }
        let tree = app.package_tree();
        let mut by_package = BTreeMap::new();
        for node in tree.iter() {
            by_package.insert(
                node.path.clone(),
                tree.modules_under(&node.path)
                    .iter()
                    .map(|m| app.module(*m).init_cost())
                    .sum(),
            );
        }
        InitBreakdown {
            cold_starts: 1,
            total: by_module.values().copied().sum(),
            by_module,
            by_library,
            by_package,
            e2e_mean: e2e,
        }
    }

    fn utilization(pairs: &[(&str, f64)], total: u64) -> Utilization {
        Utilization {
            total_runtime_samples: total,
            by_library: vec![],
            by_package: pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            by_module: HashMap::new(),
        }
    }

    fn config() -> DetectorConfig {
        DetectorConfig::default()
    }

    #[test]
    fn flags_unused_subpackage_and_rare_library() {
        let app = app();
        let bd = breakdown(&app, ms(150));
        let util = utilization(
            &[
                ("pandas", 0.9),
                ("pandas.core", 0.9),
                ("pandas.plotting", 0.0),
                ("pandas.plugins", 0.0),
                ("xmlschema", 0.008),
            ],
            1000,
        );
        let report = detect(&app, &bd, &util, &config());
        assert!(report.gate_passed);
        let names: Vec<&str> = report.findings.iter().map(|f| f.package.as_str()).collect();
        assert_eq!(
            names,
            vec!["pandas.plotting", "xmlschema", "pandas.plugins"]
        );
        let plotting = &report.findings[0];
        assert_eq!(plotting.class, UsageClass::Unused);
        assert!(plotting.deferrable);
        let xml = &report.findings[1];
        assert_eq!(xml.class, UsageClass::RarelyUsed);
        let plugins = &report.findings[2];
        assert!(!plugins.deferrable);
        assert_eq!(plugins.skip_reason, Some(SkipReason::SideEffects));
    }

    #[test]
    fn hot_packages_are_not_flagged() {
        let app = app();
        let bd = breakdown(&app, ms(150));
        let util = utilization(
            &[
                ("pandas", 0.9),
                ("pandas.core", 0.9),
                ("pandas.plotting", 0.5),
                ("pandas.plugins", 0.5),
                ("xmlschema", 0.5),
            ],
            1000,
        );
        let report = detect(&app, &bd, &util, &config());
        assert!(report.findings.is_empty());
    }

    #[test]
    fn whole_library_flagged_when_root_is_cold() {
        let app = app();
        let bd = breakdown(&app, ms(150));
        let util = utilization(
            &[
                ("pandas", 0.0),
                ("pandas.core", 0.0),
                ("pandas.plotting", 0.0),
                ("pandas.plugins", 0.0),
                ("xmlschema", 0.9),
            ],
            1000,
        );
        let report = detect(&app, &bd, &util, &config());
        // One finding covering the whole pandas library — not three
        // sub-package findings.
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].package, "pandas");
        // The library contains a side-effectful module → not deferrable.
        assert!(!report.findings[0].deferrable);
    }

    #[test]
    fn gate_suppresses_findings() {
        let app = app();
        // e2e so large that init share is < 10 %.
        let bd = breakdown(&app, ms(10_000));
        let util = utilization(&[("pandas.plotting", 0.0)], 1000);
        let report = detect(&app, &bd, &util, &config());
        assert!(!report.gate_passed);
        assert!(report.findings.is_empty());
        assert!(report.init_share < 0.10);
    }

    #[test]
    fn tiny_packages_ignored_as_noise() {
        let app = app();
        let bd = breakdown(&app, ms(150));
        let mut cfg = config();
        cfg.min_init_share = 0.50; // absurdly high floor
        let util = utilization(
            &[
                ("pandas", 0.9),
                ("pandas.core", 0.9),
                ("pandas.plotting", 0.0),
                ("pandas.plugins", 0.0),
                ("xmlschema", 0.9),
            ],
            1000,
        );
        let report = detect(&app, &bd, &util, &cfg);
        assert!(report.findings.is_empty());
    }

    #[test]
    fn detected_fraction_sums_findings() {
        let app = app();
        let bd = breakdown(&app, ms(150));
        let util = utilization(
            &[
                ("pandas", 0.9),
                ("pandas.core", 0.9),
                ("pandas.plotting", 0.0),
                ("pandas.plugins", 0.0),
                ("xmlschema", 0.008),
            ],
            1000,
        );
        let report = detect(&app, &bd, &util, &config());
        // (60 + 10 + 30) / 123 of init time.
        let expected = 100.0 / 123.0;
        assert!((report.detected_init_fraction() - expected).abs() < 1e-9);
        assert_eq!(report.deferrable_findings().count(), 2);
    }

    #[test]
    fn detection_descends_below_depth_two() {
        // pandas.core is hot overall, but pandas.core.styles is dead: the
        // hierarchical descent must flag the grandchild.
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("pandas");
        let h = b.add_app_module("handler", ms(1), 0);
        let root = b.add_library_module("pandas", ms(2), 0, false, lib);
        let core = b.add_library_module("pandas.core", ms(20), 0, false, lib);
        let styles = b.add_library_module("pandas.core.styles", ms(30), 0, false, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        b.add_import(root, core, 2, ImportMode::Global).unwrap();
        b.add_import(core, styles, 2, ImportMode::Global).unwrap();
        let f = b.add_function("main", h, 4, vec![]);
        b.add_handler("main", f);
        let app = b.finish().unwrap();
        let bd = breakdown(&app, ms(60));
        let util = utilization(
            &[
                ("pandas", 0.9),
                ("pandas.core", 0.9),
                ("pandas.core.styles", 0.0),
            ],
            1000,
        );
        // At the paper's default depth (2) the grandchild is out of scope.
        let shallow = detect(&app, &bd, &util, &config());
        assert!(shallow.findings.is_empty());
        // Deeper descent opts in via max_depth.
        let mut deep_cfg = config();
        deep_cfg.max_depth = 3;
        let report = detect(&app, &bd, &util, &deep_cfg);
        let names: Vec<&str> = report.findings.iter().map(|f| f.package.as_str()).collect();
        assert_eq!(names, vec!["pandas.core.styles"]);
    }

    #[test]
    fn library_summaries_cover_all_libraries() {
        let app = app();
        let bd = breakdown(&app, ms(150));
        let util = utilization(&[], 0);
        let report = detect(&app, &bd, &util, &config());
        assert_eq!(report.libraries.len(), 2);
        assert_eq!(report.libraries[0].name, "pandas");
        assert_eq!(report.libraries[0].init_time, ms(92));
    }
}
