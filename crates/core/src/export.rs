//! JSON export of analysis artifacts.
//!
//! The paper's reports are JSON documents (Table IV is headed
//! `rainbowcake_sentiment_analysis.json`). This module serializes the
//! detection report and metric summaries to JSON with a small built-in
//! writer (no external JSON dependency), so the CLI and CI/CD integrations
//! can consume machine-readable output.

use std::fmt::Write as _;

use slimstart_platform::metrics::{AppMetrics, Speedup};

use crate::detect::{InefficiencyReport, UsageClass};
use crate::pipeline::PipelineOutcome;
use crate::resilience::ResilienceOutcome;

/// Escapes a string for inclusion in JSON output.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float the JSON way (finite; NaN/inf become null).
fn num(x: f64) -> String {
    if x.is_finite() {
        format!("{x:.6}")
    } else {
        "null".to_string()
    }
}

/// Serializes an [`InefficiencyReport`] — the paper's report file format.
pub fn report_to_json(report: &InefficiencyReport) -> String {
    let mut out = String::new();
    out.push('{');
    let _ = write!(out, "\"application\":\"{}\",", escape(&report.app_name));
    let _ = write!(out, "\"gate_passed\":{},", report.gate_passed);
    let _ = write!(out, "\"init_share\":{},", num(report.init_share));
    let _ = write!(
        out,
        "\"total_init_ms\":{},",
        num(report.total_init.as_millis_f64())
    );
    let _ = write!(
        out,
        "\"e2e_mean_ms\":{},",
        num(report.e2e_mean.as_millis_f64())
    );
    out.push_str("\"libraries\":[");
    for (i, lib) in report.libraries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"utilization\":{},\"init_fraction\":{},\"init_ms\":{}}}",
            escape(&lib.name),
            num(lib.utilization),
            num(lib.init_fraction),
            num(lib.init_time.as_millis_f64())
        );
    }
    out.push_str("],\"findings\":[");
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let class = match f.class {
            UsageClass::Unused => "unused",
            UsageClass::RarelyUsed => "rarely_used",
        };
        let _ = write!(
            out,
            "{{\"package\":\"{}\",\"class\":\"{class}\",\"utilization\":{},\"init_fraction\":{},\"init_ms\":{},\"deferrable\":{}}}",
            escape(&f.package),
            num(f.utilization),
            num(f.init_fraction),
            num(f.init_time.as_millis_f64()),
            f.deferrable
        );
    }
    out.push_str("]}");
    out
}

/// Serializes an [`AppMetrics`] summary.
pub fn metrics_to_json(metrics: &AppMetrics) -> String {
    format!(
        "{{\"invocations\":{},\"cold_starts\":{},\"mean_init_ms\":{},\"p99_init_ms\":{},\"mean_load_ms\":{},\"mean_e2e_ms\":{},\"p99_e2e_ms\":{},\"peak_mem_mb\":{}}}",
        metrics.invocations,
        metrics.cold_starts,
        num(metrics.mean_init_ms),
        num(metrics.p99_init_ms),
        num(metrics.mean_load_ms),
        num(metrics.mean_e2e_ms),
        num(metrics.p99_e2e_ms),
        num(metrics.peak_mem_mb),
    )
}

/// Serializes a [`Speedup`].
pub fn speedup_to_json(s: &Speedup) -> String {
    format!(
        "{{\"init\":{},\"load\":{},\"e2e\":{},\"p99_init\":{},\"p99_load\":{},\"p99_e2e\":{},\"mem\":{}}}",
        num(s.init),
        num(s.load),
        num(s.e2e),
        num(s.p99_init),
        num(s.p99_load),
        num(s.p99_e2e),
        num(s.mem),
    )
}

/// Serializes a [`ResilienceOutcome`] (emitted only for chaos-enabled runs).
pub fn resilience_to_json(r: &ResilienceOutcome) -> String {
    format!(
        "{{\"chaos_enabled\":{},\"faults_injected\":{},\"profile_retries\":{},\"deploy_retries\":{},\"backoff_ms\":{},\"degradation\":\"{}\",\"recovered\":{}}}",
        r.chaos_enabled,
        r.faults_injected,
        r.profile_retries,
        r.deploy_retries,
        num(r.backoff_ms),
        r.degradation.label(),
        r.recovered,
    )
}

/// Serializes a full [`PipelineOutcome`] summary (report, metrics, edits,
/// pre-deployment analysis). A `resilience` object is appended **only**
/// when the run had chaos enabled, keeping fault-free reports byte-identical
/// to releases that predate fault injection (golden-tested).
pub fn outcome_to_json(outcome: &PipelineOutcome) -> String {
    let mut out = String::new();
    out.push('{');
    let _ = write!(out, "\"report\":{},", report_to_json(&outcome.report));
    let _ = write!(out, "\"baseline\":{},", metrics_to_json(&outcome.baseline));
    let _ = write!(
        out,
        "\"optimized\":{},",
        metrics_to_json(&outcome.optimized)
    );
    let _ = write!(out, "\"speedup\":{},", speedup_to_json(&outcome.speedup));
    let _ = write!(
        out,
        "\"profiler_overhead\":{},",
        num(outcome.profiler_overhead())
    );
    out.push_str("\"edits\":[");
    if let Some(opt) = &outcome.optimization {
        for (i, e) in opt.edits.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"file\":\"{}\",\"line\":{},\"before\":\"{}\",\"after\":\"{}\",\"inserted\":\"{}\"}}",
                escape(&e.file),
                e.line,
                escape(&e.before),
                escape(&e.after),
                escape(&e.inserted)
            );
        }
    }
    out.push_str("],");
    let _ = write!(out, "\"pre_deploy\":{}", outcome.pre_deploy.render_json());
    if outcome.resilience.chaos_enabled {
        let _ = write!(
            out,
            ",\"resilience\":{}",
            resilience_to_json(&outcome.resilience)
        );
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::LibraryId;
    use slimstart_simcore::time::SimDuration;

    use crate::detect::{Finding, LibrarySummary};

    fn report() -> InefficiencyReport {
        InefficiencyReport {
            app_name: "rainbowcake_sentiment_analysis".into(),
            gate_passed: true,
            total_init: SimDuration::from_millis(2100),
            e2e_mean: SimDuration::from_millis(2200),
            init_share: 0.95,
            libraries: vec![LibrarySummary {
                library: LibraryId::from_index(0),
                name: "nltk".into(),
                utilization: 0.0533,
                init_fraction: 0.6993,
                init_time: SimDuration::from_millis(1500),
            }],
            findings: vec![Finding {
                package: "nltk.sem".into(),
                library: LibraryId::from_index(0),
                class: UsageClass::Unused,
                utilization: 0.0,
                init_time: SimDuration::from_millis(180),
                init_fraction: 0.0825,
                deferrable: true,
                skip_reason: None,
            }],
        }
    }

    #[test]
    fn report_json_is_well_formed() {
        let json = report_to_json(&report());
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"application\":\"rainbowcake_sentiment_analysis\""));
        assert!(json.contains("\"package\":\"nltk.sem\""));
        assert!(json.contains("\"class\":\"unused\""));
        assert!(json.contains("\"deferrable\":true"));
        // Balanced braces and brackets (cheap well-formedness check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escaping_handles_specials() {
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("tab\there"), "tab\\there");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn numbers_are_finite_or_null() {
        assert_eq!(num(1.5), "1.500000");
        assert_eq!(num(f64::NAN), "null");
        assert_eq!(num(f64::INFINITY), "null");
    }

    #[test]
    fn metrics_json_contains_fields() {
        use slimstart_appmodel::HandlerId;
        use slimstart_platform::invocation::InvocationRecord;
        use slimstart_simcore::time::SimTime;
        let rec = InvocationRecord {
            at: SimTime::ZERO,
            handler: HandlerId::from_index(0),
            cold: true,
            wait_time: SimDuration::ZERO,
            provision_time: SimDuration::from_millis(45),
            runtime_startup_time: SimDuration::from_millis(35),
            load_time: SimDuration::from_millis(400),
            init_latency: SimDuration::from_millis(480),
            exec_latency: SimDuration::from_millis(20),
            e2e_latency: SimDuration::from_millis(500),
            deferred_load_time: SimDuration::ZERO,
            peak_mem_kb: 102_400,
            container: 0,
        };
        let m = AppMetrics::aggregate(&[rec]);
        let json = metrics_to_json(&m);
        assert!(json.contains("\"cold_starts\":1"));
        assert!(json.contains("\"peak_mem_mb\":100.000000"));
    }
}
