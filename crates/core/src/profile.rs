//! Profile data: samples, per-module init observations, and the shared
//! collector store.
//!
//! The paper's profiler buffers samples locally inside the function instance
//! and batch-transfers them asynchronously to external storage (DynamoDB /
//! S3), where a background service analyzes them (§IV-D). [`ProfileStore`]
//! plays the external collector: sampler attachments in every container push
//! their buffers into one shared store, and the analysis side reads it once
//! the profiling window closes.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use slimstart_appmodel::ModuleId;
use slimstart_pyrt::stack::Frame;
use slimstart_simcore::time::SimDuration;

/// One captured stack sample.
///
/// The path is a shared `Arc<[Frame]>`: repeated identical stacks (the
/// common case — long module inits and hot loops sampled many times) all
/// point at one allocation, cloned by reference count instead of by
/// copying frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleRecord {
    /// The call path, outermost frame first.
    pub path: Arc<[Frame]>,
    /// Whether the stack contained a module-init frame (the sample belongs
    /// to the initialization phase, not runtime — paper §IV-A2).
    pub is_init: bool,
}

impl SampleRecord {
    /// The innermost (sampled) frame.
    ///
    /// # Panics
    ///
    /// Panics if the path is empty (samples are only taken under live
    /// frames).
    pub fn leaf(&self) -> &Frame {
        self.path.last().expect("sample path is never empty")
    }
}

/// The collector: aggregated profiling data for one application deployment.
#[derive(Debug, Clone, Default)]
pub struct ProfileStore {
    /// All transferred samples.
    pub samples: Vec<SampleRecord>,
    /// Exact per-module initialization time observed, accumulated across
    /// all cold starts (microseconds).
    pub init_micros_by_module: HashMap<ModuleId, u64>,
    /// Number of completed invocations observed.
    pub invocations: u64,
    /// Number of batches transferred (each paid the flush cost).
    pub batches_transferred: u64,
}

impl ProfileStore {
    /// Creates an empty store behind the shared handle sampler attachments
    /// need.
    pub fn shared() -> Arc<Mutex<ProfileStore>> {
        Arc::new(Mutex::new(ProfileStore::default()))
    }

    /// Total observed init time for `module` across all cold starts.
    pub fn init_time(&self, module: ModuleId) -> SimDuration {
        SimDuration::from_micros(
            self.init_micros_by_module
                .get(&module)
                .copied()
                .unwrap_or(0),
        )
    }

    /// Number of samples classified as runtime (non-init).
    pub fn runtime_sample_count(&self) -> u64 {
        self.samples.iter().filter(|s| !s.is_init).count() as u64
    }

    /// Number of samples classified as initialization.
    pub fn init_sample_count(&self) -> u64 {
        self.samples.iter().filter(|s| s.is_init).count() as u64
    }

    /// Merges a sampler attachment's local state into the store.
    pub fn absorb(
        &mut self,
        samples: Vec<SampleRecord>,
        init_micros: &HashMap<ModuleId, u64>,
        batches: u64,
    ) {
        self.samples.extend(samples);
        for (module, micros) in init_micros {
            *self.init_micros_by_module.entry(*module).or_insert(0) += micros;
        }
        self.batches_transferred += batches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::FunctionId;
    use slimstart_pyrt::stack::FrameKind;

    fn frame(i: usize) -> Frame {
        Frame {
            kind: FrameKind::Call(FunctionId::from_index(i)),
            line: 1,
        }
    }

    #[test]
    fn leaf_is_innermost() {
        let s = SampleRecord {
            path: vec![frame(0), frame(1)].into(),
            is_init: false,
        };
        assert_eq!(s.leaf(), &frame(1));
    }

    #[test]
    fn absorb_accumulates() {
        let mut store = ProfileStore::default();
        let mut init = HashMap::new();
        init.insert(ModuleId::from_index(0), 500u64);
        store.absorb(
            vec![SampleRecord {
                path: vec![frame(0)].into(),
                is_init: true,
            }],
            &init,
            1,
        );
        store.absorb(
            vec![SampleRecord {
                path: vec![frame(1)].into(),
                is_init: false,
            }],
            &init,
            2,
        );
        assert_eq!(store.samples.len(), 2);
        assert_eq!(
            store.init_time(ModuleId::from_index(0)),
            SimDuration::from_micros(1_000)
        );
        assert_eq!(store.init_time(ModuleId::from_index(9)), SimDuration::ZERO);
        assert_eq!(store.batches_transferred, 3);
        assert_eq!(store.runtime_sample_count(), 1);
        assert_eq!(store.init_sample_count(), 1);
    }

    #[test]
    fn shared_handle_is_usable_across_clones() {
        let store = ProfileStore::shared();
        let clone = Arc::clone(&store);
        clone.lock().invocations += 1;
        assert_eq!(store.lock().invocations, 1);
    }
}
