//! The CI/CD pipeline driver (paper §III, Fig. 4 and §V-b methodology).
//!
//! One [`Pipeline::run`] performs the paper's full evaluation cycle for one
//! application:
//!
//! 1. **Baseline** — deploy the unmodified application and measure it under
//!    the evaluation workload (500 cold starts by default);
//! 2. **Gate** — applications whose library-initialization share of
//!    end-to-end time is ≤ 10 % are excluded from optimization;
//! 3. **Profile** — redeploy with the sampler attached and collect samples
//!    plus exact init times (the profiled run also yields Fig. 9's overhead
//!    ratio);
//! 4. **Analyze** — build the CCT, the hierarchical init breakdown and the
//!    utilization metric; detect inefficiencies;
//! 5. **Optimize** — rewrite flagged global imports into deferred imports;
//! 6. **Pre-deployment gate** — run the [`slimstart_analyzer`] pass
//!    framework over the artifact about to ship; error-severity findings
//!    (an unsafe deployed deferral) roll the deployment back to baseline;
//! 7. **Redeploy & measure** — run the optimized application and compute
//!    speedups.
//!
//! Each step is a [`crate::stage::Stage`] composed by a
//! [`crate::stage::StageEngine`]; `Pipeline::run` drives the canonical
//! composition and packages the resulting context into a
//! [`PipelineOutcome`]. Alternate compositions (a strict gate, FaaSLight's
//! strip pass as the optimize stage, …) go through
//! [`Pipeline::run_with_engine`].

use std::fmt;
use std::sync::Arc;

use slimstart_appmodel::Application;
use slimstart_platform::chaos::{ChaosConfig, ChaosPlan};
use slimstart_platform::metrics::{AppMetrics, Speedup};
use slimstart_platform::platform::PlatformConfig;
use slimstart_pyrt::RuntimeFault;
use slimstart_simcore::rng::SimRng;
use slimstart_workload::generator::WorkloadError;

use crate::cct::Cct;
use crate::config::{DetectorConfig, SamplerConfig};
use crate::detect::InefficiencyReport;
use crate::optimizer::OptimizationOutcome;
use crate::resilience::{ResilienceOutcome, RetryPolicy};
use crate::stage::{GateDecision, PipelineCtx, StageEngine};
use crate::utilization::Utilization;

/// Tag XORed into the experiment seed to root the chaos stream, keeping it
/// disjoint from the workload stream (`seed`) and the per-stage platform
/// streams (`seed ^ 0x1..0x3`).
const CHAOS_STREAM_TAG: u64 = 0x5EED_CA05;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Platform parameters for every deployment.
    pub platform: PlatformConfig,
    /// Profiler parameters for the profiling deployment.
    pub sampler: SamplerConfig,
    /// Detector thresholds.
    pub detector: DetectorConfig,
    /// Cold starts per measurement run (paper: 500).
    pub cold_starts: usize,
    /// Experiment seed.
    pub seed: u64,
    /// Ship profile batches over the asynchronous collector channel
    /// (the paper's production transport, §IV-D) instead of the in-process
    /// store. Results are identical; the collector also reports wire bytes.
    pub async_collector: bool,
    /// Fault-injection schedule shared by every deployment of this run.
    /// Defaults to [`ChaosPlan::none`], a zero-overhead passthrough.
    pub chaos: Arc<ChaosPlan>,
    /// Retry budget and backoff shape for profile collection and redeploys.
    pub retry: RetryPolicy,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            platform: PlatformConfig::default(),
            sampler: SamplerConfig::default(),
            detector: DetectorConfig::default(),
            cold_starts: 500,
            seed: 0xC0FFEE,
            async_collector: false,
            chaos: Arc::new(ChaosPlan::none()),
            retry: RetryPolicy::default(),
        }
    }
}

impl PipelineConfig {
    /// Sets the platform parameters.
    #[must_use]
    pub fn with_platform(mut self, platform: PlatformConfig) -> Self {
        self.platform = platform;
        self
    }

    /// Sets the profiler parameters.
    #[must_use]
    pub fn with_sampler(mut self, sampler: SamplerConfig) -> Self {
        self.sampler = sampler;
        self
    }

    /// Sets the detector thresholds.
    #[must_use]
    pub fn with_detector(mut self, detector: DetectorConfig) -> Self {
        self.detector = detector;
        self
    }

    /// Sets the number of cold starts per measurement run.
    #[must_use]
    pub fn with_cold_starts(mut self, cold_starts: usize) -> Self {
        self.cold_starts = cold_starts;
        self
    }

    /// Sets the experiment seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Ships profile batches over the asynchronous collector channel.
    #[must_use]
    pub fn with_async_collector(mut self, enabled: bool) -> Self {
        self.async_collector = enabled;
        self
    }

    /// Enables fault injection per `config`, rooting the chaos stream off
    /// the **current** experiment seed (call after [`Self::with_seed`]).
    /// A fully-zero config keeps the passthrough plan.
    #[must_use]
    pub fn with_chaos(mut self, config: ChaosConfig) -> Self {
        let chaos_seed = SimRng::seed_from(self.seed ^ CHAOS_STREAM_TAG).split_seed();
        self.chaos = Arc::new(ChaosPlan::from_seed(config, chaos_seed));
        self
    }

    /// Installs an already-seeded chaos plan (the fleet orchestrator builds
    /// one per application from its own split seed stream).
    #[must_use]
    pub fn with_chaos_plan(mut self, chaos: Arc<ChaosPlan>) -> Self {
        self.chaos = chaos;
        self
    }

    /// Sets the retry/backoff policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }
}

/// Errors from a pipeline run.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PipelineError {
    /// The workload could not be resolved against the application.
    Workload(WorkloadError),
    /// The application faulted (an unsafe optimization would surface here).
    Fault(RuntimeFault),
    /// A custom stage composition ended without producing the stage
    /// product named here (e.g. halted early, or a required stage was
    /// removed), so no [`PipelineOutcome`] can be formed.
    Incomplete(&'static str),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Workload(e) => write!(f, "workload error: {e}"),
            PipelineError::Fault(e) => write!(f, "runtime fault: {e}"),
            PipelineError::Incomplete(what) => {
                write!(f, "stage composition left `{what}` unproduced")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<WorkloadError> for PipelineError {
    fn from(e: WorkloadError) -> Self {
        PipelineError::Workload(e)
    }
}

impl From<RuntimeFault> for PipelineError {
    fn from(e: RuntimeFault) -> Self {
        PipelineError::Fault(e)
    }
}

/// Everything a pipeline run produces.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// Metrics of the unmodified application.
    pub baseline: AppMetrics,
    /// The observational gate verdict from baseline measurements.
    pub gate: GateDecision,
    /// Metrics of the profiled (sampler-attached) run — its e2e inflation
    /// over the baseline is the profiler overhead (Fig. 9).
    pub profiled: AppMetrics,
    /// The detection report.
    pub report: InefficiencyReport,
    /// The code transformation, when the gate passed and findings existed.
    /// `None` (with the baseline redeployed) when the pre-deployment
    /// analyzer gate rejected the optimized artifact.
    pub optimization: Option<OptimizationOutcome>,
    /// The pre-deployment static-analysis report over the artifact that was
    /// about to ship (before any rollback), fed with profile-observed
    /// usage. Error-severity diagnostics here caused a rollback.
    pub pre_deploy: slimstart_analyzer::AnalysisReport,
    /// The application that ended up deployed (optimized, or the original
    /// when gated out).
    pub final_app: Arc<Application>,
    /// Metrics of the final deployment.
    pub optimized: AppMetrics,
    /// Speedups of optimized over baseline (Table II row).
    pub speedup: Speedup,
    /// The calling-context tree built from the profile.
    pub cct: Cct,
    /// Fault-handling summary: what chaos injected, what the retries
    /// absorbed, and where on the degradation ladder the run landed.
    pub resilience: ResilienceOutcome,
    /// The anti-pattern auto-fix journal — fixes applied with their
    /// measured speedup proof, fixes rejected with reasons. `None` unless
    /// the composition ran an [`AutoFixStage`](crate::autofix::AutoFixStage).
    pub autofix: Option<crate::autofix::AutoFixOutcome>,
}

impl PipelineOutcome {
    /// Profiler overhead ratio: profiled e2e / baseline e2e (Fig. 9).
    pub fn profiler_overhead(&self) -> f64 {
        if self.baseline.mean_e2e_ms == 0.0 {
            0.0
        } else {
            self.profiled.mean_e2e_ms / self.baseline.mean_e2e_ms
        }
    }

    /// Whether the application was optimized at all.
    pub fn optimized_anything(&self) -> bool {
        self.optimization
            .as_ref()
            .is_some_and(|o| !o.edits.is_empty())
    }

    /// Packages a completed stage context into an outcome.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Incomplete`] naming the first missing
    /// stage product when the composition did not run the full cycle.
    pub fn from_ctx(ctx: PipelineCtx) -> Result<Self, PipelineError> {
        let final_app = ctx.final_app();
        let resilience = ResilienceOutcome::from_parts(&ctx.chaos, &ctx.resilience);
        Ok(PipelineOutcome {
            baseline: ctx.baseline.ok_or(PipelineError::Incomplete("baseline"))?,
            gate: ctx.gate.ok_or(PipelineError::Incomplete("gate"))?,
            profiled: ctx.profiled.ok_or(PipelineError::Incomplete("profiled"))?,
            report: ctx.report.ok_or(PipelineError::Incomplete("report"))?,
            optimization: ctx.optimization,
            pre_deploy: ctx
                .pre_deploy
                .ok_or(PipelineError::Incomplete("pre_deploy"))?,
            final_app,
            optimized: ctx
                .optimized
                .ok_or(PipelineError::Incomplete("optimized"))?,
            speedup: ctx.speedup.ok_or(PipelineError::Incomplete("speedup"))?,
            cct: ctx.cct.ok_or(PipelineError::Incomplete("cct"))?,
            resilience,
            autofix: ctx.autofix,
        })
    }
}

/// The pipeline driver.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        Pipeline { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the full cycle for `app` under the handler `mix`.
    ///
    /// # Errors
    ///
    /// Returns an error for unresolvable workloads or runtime faults.
    pub fn run(
        &self,
        app: &Application,
        mix: &[(String, f64)],
    ) -> Result<PipelineOutcome, PipelineError> {
        self.run_with_engine(&StageEngine::canonical(&self.config), app, mix)
    }

    /// Runs an arbitrary stage composition for `app` under the handler
    /// `mix` and packages the result.
    ///
    /// # Errors
    ///
    /// Returns an error for unresolvable workloads, runtime faults, or a
    /// composition that did not produce a complete outcome.
    pub fn run_with_engine(
        &self,
        engine: &StageEngine,
        app: &Application,
        mix: &[(String, f64)],
    ) -> Result<PipelineOutcome, PipelineError> {
        let mut ctx = PipelineCtx::new(self.config.clone(), app, mix)?;
        engine.run(&mut ctx)?;
        PipelineOutcome::from_ctx(ctx)
    }

    /// Runs only the profiling deployment for `app` under `mix` and returns
    /// the utilization metric — what `slimstart lint` feeds the analyzer's
    /// over-approximation auditor without paying for baseline and optimized
    /// measurement runs.
    ///
    /// # Errors
    ///
    /// Returns an error for unresolvable workloads or runtime faults.
    pub fn profile_usage(
        &self,
        app: &Application,
        mix: &[(String, f64)],
    ) -> Result<Utilization, PipelineError> {
        let mut ctx = PipelineCtx::new(self.config.clone(), app, mix)?;
        StageEngine::new()
            .then(crate::stage::ProfileStage)
            .run(&mut ctx)?;
        let store = ctx
            .profile_store
            .as_ref()
            .expect("ProfileStage fills the store")
            .lock();
        Ok(Utilization::from_samples(store.samples.iter(), app))
    }

    /// Runs the CI/CD loop iteratively: each round profiles the previous
    /// round's deployment and applies any newly found optimizations,
    /// stopping at a fixpoint (a round with no code edits) or after
    /// `max_rounds`. Returns the outcome of every round, in order.
    ///
    /// A single round normally converges (the optimizer defers every
    /// deferrable finding at once); the iterative form matters when
    /// detector thresholds are tightened between rounds or when deferred
    /// loads shift utilization enough to expose second-order findings.
    ///
    /// # Errors
    ///
    /// Propagates the first round error.
    ///
    /// # Panics
    ///
    /// Panics if `max_rounds` is zero.
    pub fn run_iterative(
        &self,
        app: &Application,
        mix: &[(String, f64)],
        max_rounds: usize,
    ) -> Result<Vec<PipelineOutcome>, PipelineError> {
        assert!(max_rounds > 0, "need at least one round");
        let mut rounds = Vec::new();
        let mut current: Arc<Application> = Arc::new(app.clone());
        for _ in 0..max_rounds {
            let outcome = self.run(&current, mix)?;
            let changed = outcome.optimized_anything();
            current = Arc::clone(&outcome.final_app);
            rounds.push(outcome);
            if !changed {
                break;
            }
        }
        Ok(rounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::catalog::by_code;

    fn quick_config() -> PipelineConfig {
        PipelineConfig::default()
            .with_cold_starts(40)
            .with_platform(PlatformConfig::default().without_jitter())
    }

    #[test]
    fn graph_bfs_end_to_end_speedup() {
        let entry = by_code("R-GB").unwrap();
        let built = entry.build(11).unwrap();
        let pipeline = Pipeline::new(quick_config());
        let out = pipeline.run(&built.app, &entry.workload_weights()).unwrap();
        assert!(out.report.gate_passed);
        assert!(out.gate.passed, "observational gate agrees");
        assert!(out.optimized_anything());
        // Paper reports 1.71× init / 1.66× e2e for R-GB; the platform's
        // fixed provision+runtime costs dilute it slightly — accept a band.
        assert!(
            out.speedup.init > 1.35 && out.speedup.init < 2.1,
            "init speedup = {:.2}",
            out.speedup.init
        );
        assert!(
            out.speedup.e2e > 1.3,
            "e2e speedup = {:.2}",
            out.speedup.e2e
        );
        assert!(out.speedup.mem > 1.0);
        // The drawing package must be among the deferred ones.
        let opt = out.optimization.as_ref().unwrap();
        assert!(opt.deferred_packages.iter().any(|p| p == "igraph.drawing"));
    }

    #[test]
    fn trivial_app_is_gated_out() {
        let entry = by_code("FWB-FLT").unwrap();
        let built = entry.build(11).unwrap();
        let pipeline = Pipeline::new(quick_config());
        let out = pipeline.run(&built.app, &entry.workload_weights()).unwrap();
        assert!(!out.report.gate_passed);
        assert!(!out.gate.passed, "observational gate agrees");
        assert!(out.optimization.is_none());
        assert_eq!(out.speedup.e2e, 1.0);
        assert_eq!(out.speedup.init, 1.0);
    }

    #[test]
    fn profiler_overhead_is_bounded() {
        let entry = by_code("R-GB").unwrap();
        let built = entry.build(11).unwrap();
        let pipeline = Pipeline::new(quick_config());
        let out = pipeline.run(&built.app, &entry.workload_weights()).unwrap();
        let ratio = out.profiler_overhead();
        assert!(ratio > 1.0, "profiling must cost something: {ratio}");
        assert!(ratio < 1.10, "overhead above 10%: {ratio}");
    }

    #[test]
    fn side_effectful_packages_survive_optimization() {
        let entry = by_code("R-GB").unwrap();
        let built = entry.build(11).unwrap();
        let pipeline = Pipeline::new(quick_config());
        let out = pipeline.run(&built.app, &entry.workload_weights()).unwrap();
        let opt = out.optimization.as_ref().unwrap();
        assert!(opt.skipped.iter().any(|(p, _)| p == "igraph.plugins"));
        // The plugins package stays eagerly imported in the final app.
        let root = out.final_app.module_by_name("igraph").unwrap();
        let plugins = out.final_app.module_by_name("igraph.plugins").unwrap();
        let decl = out
            .final_app
            .imports_of(root)
            .iter()
            .find(|d| d.target == plugins)
            .unwrap();
        assert!(decl.mode.is_global());
    }

    #[test]
    fn deterministic_outcomes() {
        let entry = by_code("R-GB").unwrap();
        let built = entry.build(11).unwrap();
        let pipeline = Pipeline::new(quick_config());
        let a = pipeline.run(&built.app, &entry.workload_weights()).unwrap();
        let b = pipeline.run(&built.app, &entry.workload_weights()).unwrap();
        assert_eq!(a.speedup, b.speedup);
        assert_eq!(a.baseline, b.baseline);
    }

    #[test]
    fn builder_setters_cover_every_field() {
        let cfg = PipelineConfig::default()
            .with_platform(PlatformConfig::default().without_jitter())
            .with_sampler(crate::config::SamplerConfig::default())
            .with_detector(crate::config::DetectorConfig::default())
            .with_cold_starts(77)
            .with_seed(123)
            .with_async_collector(true)
            .with_retry(crate::resilience::RetryPolicy::default())
            .with_chaos(ChaosConfig::uniform(0.5));
        assert_eq!(cfg.cold_starts, 77);
        assert_eq!(cfg.seed, 123);
        assert!(cfg.async_collector);
        assert!(cfg.chaos.is_enabled());
        // Zero-rate config keeps the passthrough plan.
        let quiet = PipelineConfig::default().with_chaos(ChaosConfig::DISABLED);
        assert!(!quiet.chaos.is_enabled());
    }

    #[test]
    fn chaos_stream_seed_follows_the_experiment_seed() {
        let a = PipelineConfig::default()
            .with_seed(1)
            .with_chaos(ChaosConfig::uniform(0.5));
        let b = PipelineConfig::default()
            .with_seed(2)
            .with_chaos(ChaosConfig::uniform(0.5));
        let draws = |cfg: &PipelineConfig| -> Vec<bool> {
            (0..64).map(|_| cfg.chaos.deploy_fails()).collect()
        };
        assert_ne!(draws(&a), draws(&b), "chaos stream must track the seed");
    }

    #[test]
    fn incomplete_composition_is_reported() {
        let entry = by_code("FWB-FLT").unwrap();
        let built = entry.build(11).unwrap();
        let pipeline = Pipeline::new(quick_config());
        // Baseline alone cannot form an outcome.
        let engine = StageEngine::new().then(crate::stage::BaselineStage);
        let err = pipeline
            .run_with_engine(&engine, &built.app, &entry.workload_weights())
            .unwrap_err();
        assert!(matches!(err, PipelineError::Incomplete("gate")));
    }
}
