//! The stage-based pipeline engine.
//!
//! [`crate::pipeline::Pipeline::run`] used to be one monolithic function
//! walking the paper's seven steps (§III Fig. 4). This module decomposes
//! it into composable [`Stage`]s over a shared [`PipelineCtx`]:
//!
//! ```text
//! baseline-measure → gate → profile → analyze → optimize
//!                  → pre-deploy-verify → redeploy-measure
//! ```
//!
//! Each stage reads the products of its predecessors from the context and
//! deposits its own, so a [`StageEngine`] can compose, skip, or swap
//! stages — e.g. replace the profile-guided [`OptimizeStage`] with
//! FaaSLight's static strip pass (`slimstart_faaslight::StripStage`)
//! while keeping the measurement and pre-deployment verification stages
//! identical, for apples-to-apples baseline comparisons.
//!
//! The canonical composition ([`StageEngine::canonical`]) reproduces the
//! monolith byte-for-byte: stage boundaries do not change which seeds are
//! used where (baseline `seed ^ 0x1`, profiling `seed ^ 0x2`, redeploy
//! `seed ^ 0x3`) or how workloads are regenerated for the final artifact.

use std::fmt;
use std::sync::Arc;

use slimstart_appmodel::Application;
use slimstart_platform::chaos::ChaosPlan;
use slimstart_platform::invocation::Invocation;
use slimstart_platform::metrics::{AppMetrics, Speedup};
use slimstart_platform::platform::{Platform, PlatformConfig};
use slimstart_simcore::time::SimDuration;
use slimstart_workload::generator::generate;
use slimstart_workload::spec::WorkloadSpec;

use crate::cct::Cct;
use crate::collector::AsyncCollector;
use crate::detect::{detect, InefficiencyReport};
use crate::initprof::InitBreakdown;
use crate::optimizer::{optimize, optimize_conservative, OptimizationOutcome};
use crate::pipeline::{PipelineConfig, PipelineError};
use crate::profile::ProfileStore;
use crate::resilience::ResilienceLog;
use crate::sampler::SamplerAttachment;
use crate::utilization::Utilization;

use parking_lot::Mutex;

/// The gate verdict taken from baseline measurements (paper step 2).
///
/// The observational gate records the baseline init share against the
/// configured threshold. The *authoritative* optimization gate remains the
/// profile-informed one computed by [`detect`] (the paper gates on the
/// breakdown's init share), so that composing the engine differently
/// cannot silently change which applications get optimized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateDecision {
    /// Baseline library-init share of end-to-end time.
    pub init_ratio: f64,
    /// The configured gate threshold (paper: 10 %).
    pub threshold: f64,
    /// Whether the baseline share clears the threshold.
    pub passed: bool,
}

/// What a stage tells the engine to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageStatus {
    /// Proceed to the next stage.
    Continue,
    /// Stop the run here (e.g. a strict gate); the reason is recorded.
    Halt(&'static str),
}

/// One record of a stage the engine executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageRecord {
    /// The stage's [`Stage::name`].
    pub name: &'static str,
    /// Its resulting status.
    pub status: StageStatus,
}

/// Shared state threaded through the stages of one pipeline run.
///
/// Constructed once per run with the immutable inputs (config, app,
/// workload); every field below the inputs is a stage product that starts
/// out `None` and is filled in by the stage that owns it.
pub struct PipelineCtx {
    /// The pipeline configuration (seeds, platform, detector thresholds).
    pub config: PipelineConfig,
    /// The unmodified application under test.
    pub app: Arc<Application>,
    /// The workload specification derived from the handler mix.
    pub spec: WorkloadSpec,
    /// The invocation stream used by the baseline and profiling runs.
    pub invocations: Vec<Invocation>,
    /// The run's fault-injection schedule (shared with every platform
    /// deployment); [`ChaosPlan::none`] in normal operation.
    pub chaos: Arc<ChaosPlan>,
    /// Fault-handling journal the stages write as they retry and degrade.
    pub resilience: ResilienceLog,

    /// Baseline metrics ([`BaselineStage`]).
    pub baseline: Option<AppMetrics>,
    /// Observational gate verdict ([`GateStage`]).
    pub gate: Option<GateDecision>,
    /// Profiled-run metrics ([`ProfileStage`]).
    pub profiled: Option<AppMetrics>,
    /// The profile store filled by the sampler ([`ProfileStage`]).
    pub profile_store: Option<Arc<Mutex<ProfileStore>>>,
    /// Cold starts observed during profiling ([`ProfileStage`]).
    pub profiled_cold_starts: u64,
    /// Utilization metric over the profile ([`AnalyzeStage`]).
    pub utilization: Option<Utilization>,
    /// The detection report ([`AnalyzeStage`]).
    pub report: Option<InefficiencyReport>,
    /// The calling-context tree ([`AnalyzeStage`]).
    pub cct: Option<Cct>,
    /// The code transformation, when one was produced ([`OptimizeStage`]).
    pub optimization: Option<OptimizationOutcome>,
    /// The candidate artifact to deploy, when an optimize-type stage
    /// produced one that differs from the baseline.
    pub candidate: Option<Arc<Application>>,
    /// Whether the candidate must be redeployed and re-measured (set by
    /// optimize-type stages, cleared by a pre-deployment rollback).
    pub redeploy: bool,
    /// The pre-deployment analysis report ([`PreDeployStage`]).
    pub pre_deploy: Option<slimstart_analyzer::AnalysisReport>,
    /// Final-deployment metrics ([`MeasureStage`]).
    pub optimized: Option<AppMetrics>,
    /// Speedups of the final deployment over baseline ([`MeasureStage`]).
    pub speedup: Option<Speedup>,
    /// The anti-pattern auto-fix journal, when the composition includes an
    /// [`AutoFixStage`](crate::autofix::AutoFixStage).
    pub autofix: Option<crate::autofix::AutoFixOutcome>,
}

impl PipelineCtx {
    /// Prepares a context: resolves the handler mix into a concrete
    /// invocation stream with the experiment seed.
    ///
    /// # Errors
    ///
    /// Returns an error when the workload cannot be resolved against the
    /// application.
    pub fn new(
        config: PipelineConfig,
        app: &Application,
        mix: &[(String, f64)],
    ) -> Result<Self, PipelineError> {
        let spec = WorkloadSpec::cold_starts_with_mix(mix, config.cold_starts);
        let invocations = generate(&spec, app, config.seed)?;
        let chaos = Arc::clone(&config.chaos);
        Ok(PipelineCtx {
            config,
            app: Arc::new(app.clone()),
            spec,
            invocations,
            chaos,
            resilience: ResilienceLog::default(),
            baseline: None,
            gate: None,
            profiled: None,
            profile_store: None,
            profiled_cold_starts: 0,
            utilization: None,
            report: None,
            cct: None,
            optimization: None,
            candidate: None,
            redeploy: false,
            pre_deploy: None,
            optimized: None,
            speedup: None,
            autofix: None,
        })
    }

    /// The artifact that ends up deployed: the candidate when an
    /// optimization survived pre-deployment verification, else the
    /// unmodified application.
    pub fn final_app(&self) -> Arc<Application> {
        self.candidate
            .clone()
            .unwrap_or_else(|| Arc::clone(&self.app))
    }
}

impl fmt::Debug for PipelineCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PipelineCtx")
            .field("app", &self.app.name())
            .field("invocations", &self.invocations.len())
            .field("baseline", &self.baseline.is_some())
            .field("gate", &self.gate)
            .field("profiled", &self.profiled.is_some())
            .field("report", &self.report.is_some())
            .field("optimization", &self.optimization.is_some())
            .field("redeploy", &self.redeploy)
            .field("speedup", &self.speedup)
            .finish()
    }
}

/// One composable unit of pipeline work.
///
/// Stages are shared across worker threads by the fleet orchestrator, so
/// they must be `Send + Sync`; all per-run mutable state lives in the
/// [`PipelineCtx`].
pub trait Stage: Send + Sync {
    /// A stable identifier, used by [`StageEngine::replace`] /
    /// [`StageEngine::without`] and in [`StageRecord`]s.
    fn name(&self) -> &'static str;

    /// Executes the stage against the shared context.
    ///
    /// # Errors
    ///
    /// Returns an error for unresolvable workloads or runtime faults;
    /// the engine aborts the run on the first error.
    fn run(&self, ctx: &mut PipelineCtx) -> Result<StageStatus, PipelineError>;
}

// ---------------------------------------------------------------- stages

/// The platform configuration for one deployment of this run: the
/// configured platform, plus the run's chaos plan when it is live (the
/// passthrough plan is not attached, keeping the disabled path identical
/// to a config that never heard of chaos).
pub(crate) fn deployment_platform(ctx: &PipelineCtx) -> PlatformConfig {
    let base = ctx.config.platform.clone();
    if ctx.chaos.is_enabled() {
        base.with_chaos(Arc::clone(&ctx.chaos))
    } else {
        base
    }
}

/// Step 1: deploy the unmodified application and measure it.
#[derive(Debug, Clone, Copy, Default)]
pub struct BaselineStage;

impl Stage for BaselineStage {
    fn name(&self) -> &'static str {
        "baseline-measure"
    }

    fn run(&self, ctx: &mut PipelineCtx) -> Result<StageStatus, PipelineError> {
        let mut platform = Platform::new(
            Arc::clone(&ctx.app),
            deployment_platform(ctx),
            ctx.config.seed ^ 0x1,
        );
        ctx.baseline = Some(AppMetrics::aggregate(platform.run(&ctx.invocations)?));
        Ok(StageStatus::Continue)
    }
}

/// Step 2: the 10 % init-share gate, from baseline measurements.
///
/// Non-strict by default: it records the [`GateDecision`] and continues,
/// leaving the authoritative optimization decision to the detector's
/// profile-informed gate — exactly the monolith's behavior. In strict
/// mode the engine halts early for below-gate applications, skipping the
/// profiling deployment entirely (useful for fleet sweeps where trivial
/// apps shouldn't pay for profiling).
#[derive(Debug, Clone, Copy)]
pub struct GateStage {
    /// Init-share threshold (paper: 0.10).
    pub threshold: f64,
    /// Halt below-gate runs instead of continuing observationally.
    pub strict: bool,
}

impl Default for GateStage {
    fn default() -> Self {
        GateStage {
            threshold: 0.10,
            strict: false,
        }
    }
}

impl Stage for GateStage {
    fn name(&self) -> &'static str {
        "gate"
    }

    fn run(&self, ctx: &mut PipelineCtx) -> Result<StageStatus, PipelineError> {
        let baseline = ctx
            .baseline
            .as_ref()
            .expect("GateStage requires BaselineStage");
        let init_ratio = baseline.init_ratio();
        let passed = init_ratio > self.threshold;
        ctx.gate = Some(GateDecision {
            init_ratio,
            threshold: self.threshold,
            passed,
        });
        if self.strict && !passed {
            return Ok(StageStatus::Halt("below init-share gate"));
        }
        Ok(StageStatus::Continue)
    }
}

/// Step 3: redeploy with the sampler attached and collect the profile.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProfileStage;

impl Stage for ProfileStage {
    fn name(&self) -> &'static str {
        "profile"
    }

    fn run(&self, ctx: &mut PipelineCtx) -> Result<StageStatus, PipelineError> {
        let sampler_cfg = ctx.config.sampler;
        let async_collector = ctx.config.async_collector;
        let seed = ctx.config.seed ^ 0x2;
        let policy = ctx.config.retry;
        let chaos = Arc::clone(&ctx.chaos);
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            // The sampler either writes straight into the shared store or
            // ships encoded batches to the asynchronous collector, which
            // drains them off the critical path. Each collection attempt
            // gets a fresh store (a lost upload loses the whole payload).
            let store = ProfileStore::shared();
            let mut collector = if async_collector {
                Some(AsyncCollector::start_with_store(Arc::clone(&store)))
            } else {
                None
            };
            let profiled_cfg = match &collector {
                Some(c) => {
                    let sender = c.sender();
                    deployment_platform(ctx).with_observer_factory(Arc::new(move || {
                        Box::new(SamplerAttachment::with_transport(
                            sampler_cfg,
                            sender.clone(),
                        ))
                    }))
                }
                None => {
                    let store_for_factory = Arc::clone(&store);
                    deployment_platform(ctx).with_observer_factory(Arc::new(move || {
                        Box::new(SamplerAttachment::new(
                            sampler_cfg,
                            Arc::clone(&store_for_factory),
                        ))
                    }))
                }
            };
            let mut platform = Platform::new(Arc::clone(&ctx.app), profiled_cfg, seed);
            let records = platform.run(&ctx.invocations)?.to_vec();
            if let Some(c) = collector.as_mut() {
                // Wait until every in-flight batch is decoded into the store.
                c.finish();
            }

            if chaos.upload_lost() {
                if attempt < policy.max_attempts {
                    // Chaos: the profile upload vanished in flight. The
                    // attempt timeout is the virtual time spent detecting
                    // the loss; back off, then re-collect (same platform
                    // seed — the chaos stream advancing is what makes the
                    // retry encounter different faults).
                    ctx.resilience.profile_retries += 1;
                    ctx.resilience.backoff += policy.attempt_timeout
                        + policy.backoff_delay(attempt, chaos.backoff_jitter());
                    continue;
                }
                // Retry budget exhausted: no profile survived. Ship empty
                // data and degrade instead of aborting the cycle.
                let mut s = store.lock();
                s.samples.clear();
                s.init_micros_by_module.clear();
                drop(s);
                ctx.resilience.profile_missing = true;
            } else if let Some(keep) = chaos.upload_truncation() {
                // Chaos: the upload survived but only a prefix arrived.
                let mut s = store.lock();
                let surviving = (s.samples.len() as f64 * keep).floor() as usize;
                s.samples.truncate(surviving);
                drop(s);
                ctx.resilience.profile_truncated = true;
            }

            ctx.profiled_cold_starts = records.iter().filter(|r| r.cold).count() as u64;
            ctx.profiled = Some(AppMetrics::aggregate(&records));
            ctx.profile_store = Some(store);
            return Ok(StageStatus::Continue);
        }
    }
}

/// Step 4: build the init breakdown, utilization and CCT; detect
/// inefficiencies.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnalyzeStage;

impl Stage for AnalyzeStage {
    fn name(&self) -> &'static str {
        "analyze"
    }

    fn run(&self, ctx: &mut PipelineCtx) -> Result<StageStatus, PipelineError> {
        let baseline = ctx
            .baseline
            .as_ref()
            .expect("AnalyzeStage requires BaselineStage");
        let store = ctx
            .profile_store
            .as_ref()
            .expect("AnalyzeStage requires ProfileStage")
            .lock();
        let breakdown = InitBreakdown::from_store(
            &store,
            &ctx.app,
            ctx.profiled_cold_starts.max(1),
            SimDuration::from_millis_f64(baseline.mean_e2e_ms),
        );
        let utilization = Utilization::from_samples(store.samples.iter(), &ctx.app);
        ctx.report = Some(detect(
            &ctx.app,
            &breakdown,
            &utilization,
            &ctx.config.detector,
        ));
        ctx.cct = Some(Cct::from_samples(store.samples.iter()));
        drop(store);
        ctx.utilization = Some(utilization);
        Ok(StageStatus::Continue)
    }
}

/// Step 5: rewrite flagged global imports into deferred imports (the
/// paper's profile-guided optimizer).
#[derive(Debug, Clone, Copy, Default)]
pub struct OptimizeStage;

impl Stage for OptimizeStage {
    fn name(&self) -> &'static str {
        "optimize"
    }

    fn run(&self, ctx: &mut PipelineCtx) -> Result<StageStatus, PipelineError> {
        if ctx.resilience.profile_degraded() {
            // The profile arrived truncated or not at all, so its findings
            // cannot be trusted (a rarely-used package may just have lost
            // its samples). Degrade to conservative mode: defer only
            // packages the static analyzer proves never used, gated on the
            // baseline (profile-free) decision instead of the detector's
            // profile-informed gate.
            let gate_ok = match ctx.gate {
                Some(g) => g.passed,
                None => true,
            };
            if gate_ok {
                let outcome = optimize_conservative(&ctx.app);
                if !outcome.edits.is_empty() {
                    ctx.candidate = Some(Arc::new(outcome.app.clone()));
                    ctx.redeploy = true;
                    ctx.optimization = Some(outcome);
                }
            }
            return Ok(StageStatus::Continue);
        }
        let report = ctx
            .report
            .as_ref()
            .expect("OptimizeStage requires AnalyzeStage");
        if report.gate_passed && !report.findings.is_empty() {
            let outcome = optimize(&ctx.app, report);
            ctx.candidate = Some(Arc::new(outcome.app.clone()));
            ctx.redeploy = !outcome.edits.is_empty();
            ctx.optimization = Some(outcome);
        }
        Ok(StageStatus::Continue)
    }
}

/// Step 6: the pre-deployment gate — run the static-analysis framework
/// over the artifact about to ship, fed with profile-observed usage.
/// Error-severity findings roll the deployment back to baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct PreDeployStage;

impl Stage for PreDeployStage {
    fn name(&self) -> &'static str {
        "pre-deploy-verify"
    }

    fn run(&self, ctx: &mut PipelineCtx) -> Result<StageStatus, PipelineError> {
        let observed = ctx.utilization.as_ref().map(|u| u.to_observed());
        let final_app = ctx.final_app();
        let report = slimstart_analyzer::Analyzer::with_default_passes()
            .analyze(&final_app, observed.as_ref());
        let unsafe_candidate = report.has_errors() && ctx.candidate.is_some();
        ctx.pre_deploy = Some(report);
        if unsafe_candidate {
            // Roll back: ship the baseline instead of the unsafe artifact.
            ctx.optimization = None;
            ctx.candidate = None;
            ctx.redeploy = false;
        }
        Ok(StageStatus::Continue)
    }
}

/// Step 7: redeploy the final artifact (when it differs from baseline)
/// and compute speedups.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeasureStage;

impl Stage for MeasureStage {
    fn name(&self) -> &'static str {
        "redeploy-measure"
    }

    fn run(&self, ctx: &mut PipelineCtx) -> Result<StageStatus, PipelineError> {
        let baseline = ctx
            .baseline
            .as_ref()
            .expect("MeasureStage requires BaselineStage")
            .clone();
        if ctx.redeploy {
            // Chaos: redeploys can fail transiently. Retry with backoff;
            // when the budget is exhausted, roll back to the baseline
            // artifact — the same rollback path the pre-deployment gate
            // takes — and record the degradation.
            let policy = ctx.config.retry;
            let chaos = Arc::clone(&ctx.chaos);
            let mut failures: u32 = 0;
            while chaos.deploy_fails() {
                failures += 1;
                if failures >= policy.max_attempts {
                    ctx.optimization = None;
                    ctx.candidate = None;
                    ctx.redeploy = false;
                    ctx.resilience.deploy_rolled_back = true;
                    break;
                }
                ctx.resilience.deploy_retries += 1;
                ctx.resilience.backoff +=
                    policy.attempt_timeout + policy.backoff_delay(failures, chaos.backoff_jitter());
            }
        }
        let optimized = if ctx.redeploy {
            let cfg = &ctx.config;
            let final_app = ctx.final_app();
            let mut platform = Platform::new(
                Arc::clone(&final_app),
                deployment_platform(ctx),
                cfg.seed ^ 0x3,
            );
            // The optimized artifact has different module identities, so
            // its invocation stream is regenerated (same seed: identical
            // arrival pattern).
            let invocations = generate(&ctx.spec, &final_app, cfg.seed)?;
            AppMetrics::aggregate(platform.run(&invocations)?)
        } else {
            baseline.clone()
        };
        ctx.speedup = Some(Speedup::between(&baseline, &optimized));
        ctx.optimized = Some(optimized);
        Ok(StageStatus::Continue)
    }
}

// ---------------------------------------------------------------- engine

/// An ordered composition of [`Stage`]s.
pub struct StageEngine {
    stages: Vec<Box<dyn Stage>>,
}

impl StageEngine {
    /// An empty engine; push stages with [`StageEngine::then`].
    pub fn new() -> Self {
        StageEngine { stages: Vec::new() }
    }

    /// The paper's canonical seven-stage composition, with thresholds
    /// taken from `config`.
    pub fn canonical(config: &PipelineConfig) -> Self {
        StageEngine::new()
            .then(BaselineStage)
            .then(GateStage {
                threshold: config.detector.gate_threshold,
                strict: false,
            })
            .then(ProfileStage)
            .then(AnalyzeStage)
            .then(OptimizeStage)
            .then(PreDeployStage)
            .then(MeasureStage)
    }

    /// Appends a stage.
    #[must_use]
    pub fn then(mut self, stage: impl Stage + 'static) -> Self {
        self.stages.push(Box::new(stage));
        self
    }

    /// Replaces the (first) stage named `name` with `stage`.
    ///
    /// # Panics
    ///
    /// Panics if no stage has that name — a composition typo, not a
    /// runtime condition.
    #[must_use]
    pub fn replace(mut self, name: &str, stage: impl Stage + 'static) -> Self {
        let i = self
            .position(name)
            .unwrap_or_else(|| panic!("no stage named `{name}` to replace"));
        self.stages[i] = Box::new(stage);
        self
    }

    /// Removes the (first) stage named `name`, if present.
    #[must_use]
    pub fn without(mut self, name: &str) -> Self {
        if let Some(i) = self.position(name) {
            self.stages.remove(i);
        }
        self
    }

    /// The names of the composed stages, in execution order.
    pub fn stage_names(&self) -> Vec<&'static str> {
        self.stages.iter().map(|s| s.name()).collect()
    }

    fn position(&self, name: &str) -> Option<usize> {
        self.stages.iter().position(|s| s.name() == name)
    }

    /// Runs the stages in order against `ctx`, stopping at the first
    /// [`StageStatus::Halt`] or error. Returns one record per executed
    /// stage.
    ///
    /// # Errors
    ///
    /// Propagates the first stage error.
    pub fn run(&self, ctx: &mut PipelineCtx) -> Result<Vec<StageRecord>, PipelineError> {
        let mut records = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            let status = stage.run(ctx)?;
            records.push(StageRecord {
                name: stage.name(),
                status,
            });
            if matches!(status, StageStatus::Halt(_)) {
                break;
            }
        }
        Ok(records)
    }
}

impl Default for StageEngine {
    fn default() -> Self {
        StageEngine::new()
    }
}

impl fmt::Debug for StageEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StageEngine")
            .field("stages", &self.stage_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::catalog::by_code;
    use slimstart_platform::platform::PlatformConfig;

    fn quick_config() -> PipelineConfig {
        PipelineConfig {
            cold_starts: 30,
            platform: PlatformConfig::default().without_jitter(),
            ..PipelineConfig::default()
        }
    }

    fn ctx_for(code: &str) -> PipelineCtx {
        let entry = by_code(code).unwrap();
        let built = entry.build(11).unwrap();
        PipelineCtx::new(quick_config(), &built.app, &entry.workload_weights()).unwrap()
    }

    #[test]
    fn canonical_engine_fills_every_product() {
        let mut ctx = ctx_for("R-GB");
        let records = StageEngine::canonical(&ctx.config).run(&mut ctx).unwrap();
        assert_eq!(records.len(), 7);
        assert!(records.iter().all(|r| r.status == StageStatus::Continue));
        assert!(ctx.baseline.is_some());
        assert!(ctx.gate.is_some());
        assert!(ctx.profiled.is_some());
        assert!(ctx.report.is_some());
        assert!(ctx.cct.is_some());
        assert!(ctx.pre_deploy.is_some());
        assert!(ctx.speedup.is_some());
    }

    #[test]
    fn strict_gate_halts_trivial_apps_before_profiling() {
        let mut ctx = ctx_for("FWB-FLT");
        let engine = StageEngine::canonical(&ctx.config).replace(
            "gate",
            GateStage {
                threshold: 0.10,
                strict: true,
            },
        );
        let records = engine.run(&mut ctx).unwrap();
        assert_eq!(records.len(), 2, "halted at the gate");
        assert!(matches!(records[1].status, StageStatus::Halt(_)));
        assert!(ctx.profiled.is_none(), "profiling was skipped");
        assert!(!ctx.gate.unwrap().passed);
    }

    #[test]
    fn gate_decision_matches_detector_gate() {
        // The observational gate and the profile-informed detector gate
        // agree on clear-cut catalog apps (wide margins on both sides).
        for code in ["R-GB", "FWB-FLT"] {
            let mut ctx = ctx_for(code);
            StageEngine::canonical(&ctx.config).run(&mut ctx).unwrap();
            assert_eq!(
                ctx.gate.unwrap().passed,
                ctx.report.as_ref().unwrap().gate_passed,
                "{code}: gates disagree"
            );
        }
    }

    #[test]
    fn without_and_replace_edit_composition() {
        let engine = StageEngine::canonical(&PipelineConfig::default())
            .without("pre-deploy-verify")
            .then(MeasureStage);
        let names = engine.stage_names();
        assert!(!names.contains(&"pre-deploy-verify"));
        assert_eq!(
            names.iter().filter(|n| **n == "redeploy-measure").count(),
            2
        );
    }

    #[test]
    #[should_panic(expected = "no stage named")]
    fn replace_unknown_stage_panics() {
        let _ = StageEngine::new().replace("nonexistent", MeasureStage);
    }
}
