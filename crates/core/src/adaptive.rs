//! The adaptive mechanism for evolving workloads (paper §IV-C, Eqs. 5–7).
//!
//! SlimStart tracks per-window invocation probabilities `p_i(t)` of each
//! handler and re-triggers profiling (and hence re-optimization) when the
//! aggregate change `Σ_i |Δp_i(t)|` between consecutive windows exceeds the
//! threshold ε. Stable workloads therefore pay no recurring profiling
//! overhead; only genuine shifts do.

use slimstart_appmodel::HandlerId;
use slimstart_simcore::time::SimTime;

use crate::config::AdaptiveConfig;

/// What the monitor decided at a window boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdaptiveDecision {
    /// Workload shifted: re-run profiling and optimization.
    TriggerProfiling {
        /// The observed `Σ|Δp_i(t)|` that crossed ε.
        delta: f64,
    },
}

/// Statistics for one closed window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowStats {
    /// Window start time.
    pub start: SimTime,
    /// Invocations observed in the window.
    pub invocations: u64,
    /// `Σ_i |Δp_i(t)|` against the previous non-empty window.
    pub delta: f64,
    /// The effective threshold applied to this window (equals ε unless
    /// volume-aware thresholding raised it above the noise floor).
    pub effective_epsilon: f64,
    /// Whether the trigger fired.
    pub triggered: bool,
}

/// Online workload-shift monitor.
///
/// # Example
///
/// ```
/// use slimstart_core::adaptive::{AdaptiveDecision, AdaptiveMonitor};
/// use slimstart_core::config::AdaptiveConfig;
/// use slimstart_appmodel::HandlerId;
/// use slimstart_simcore::time::{SimDuration, SimTime};
///
/// let cfg = AdaptiveConfig::default(); // 12 h windows, eps = 0.002
/// let mut monitor = AdaptiveMonitor::new(cfg, 2);
/// let h = HandlerId::from_index(0);
/// let admin = HandlerId::from_index(1);
/// // Window 0: all traffic on handler 0.
/// for _ in 0..100 {
///     monitor.record(h, SimTime::ZERO);
/// }
/// // Window 1: the mix flips — the trigger fires at the boundary.
/// for _ in 0..100 {
///     monitor.record(admin, SimTime::ZERO + SimDuration::from_hours(12));
/// }
/// let decision = monitor.flush();
/// assert!(matches!(decision, Some(AdaptiveDecision::TriggerProfiling { .. })));
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveMonitor {
    config: AdaptiveConfig,
    counts: Vec<u64>,
    window_start: SimTime,
    prev_probs: Option<Vec<f64>>,
    history: Vec<WindowStats>,
}

impl AdaptiveMonitor {
    /// Creates a monitor over `n_handlers` entry points, starting at time
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics if `n_handlers` is zero or the configured window is zero.
    pub fn new(config: AdaptiveConfig, n_handlers: usize) -> Self {
        assert!(n_handlers > 0, "monitor needs at least one handler");
        assert!(!config.window.is_zero(), "window must be positive");
        AdaptiveMonitor {
            config,
            counts: vec![0; n_handlers],
            window_start: SimTime::ZERO,
            prev_probs: None,
            history: Vec::new(),
        }
    }

    /// Records one invocation. Returns a decision when a window boundary is
    /// crossed *and* the shift threshold is exceeded.
    ///
    /// Invocations must arrive in non-decreasing time order.
    ///
    /// # Panics
    ///
    /// Panics if `handler` is out of range or `at` precedes the current
    /// window.
    pub fn record(&mut self, handler: HandlerId, at: SimTime) -> Option<AdaptiveDecision> {
        assert!(
            at >= self.window_start,
            "invocations must arrive in time order"
        );
        let mut decision = None;
        while at >= self.window_start + self.config.window {
            if let Some(d) = self.close_window() {
                decision = Some(d);
            }
        }
        self.counts[handler.index()] += 1;
        decision
    }

    /// Force-closes the current window (e.g. at end of experiment),
    /// returning a trigger decision if warranted.
    pub fn flush(&mut self) -> Option<AdaptiveDecision> {
        self.close_window()
    }

    fn close_window(&mut self) -> Option<AdaptiveDecision> {
        let total: u64 = self.counts.iter().sum();
        let start = self.window_start;
        self.window_start += self.config.window;

        if total == 0 {
            // Empty window: no probability estimate; keep the previous one
            // (profiling an idle app is pointless).
            self.history.push(WindowStats {
                start,
                invocations: 0,
                delta: 0.0,
                effective_epsilon: self.config.epsilon,
                triggered: false,
            });
            return None;
        }

        let probs: Vec<f64> = self
            .counts
            .iter()
            .map(|c| *c as f64 / total as f64)
            .collect();
        let delta = match &self.prev_probs {
            Some(prev) => prev.iter().zip(&probs).map(|(a, b)| (a - b).abs()).sum(),
            None => 0.0,
        };
        let effective_epsilon = if self.config.volume_aware {
            let k = self.counts.len() as f64;
            let noise_floor = self.config.noise_guard * (k / total as f64).sqrt();
            self.config.epsilon.max(noise_floor)
        } else {
            self.config.epsilon
        };
        let triggered = self.prev_probs.is_some() && delta > effective_epsilon;
        self.prev_probs = Some(probs);
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.history.push(WindowStats {
            start,
            invocations: total,
            delta,
            effective_epsilon,
            triggered,
        });
        triggered.then_some(AdaptiveDecision::TriggerProfiling { delta })
    }

    /// All closed windows so far.
    pub fn history(&self) -> &[WindowStats] {
        &self.history
    }

    /// Number of times the trigger fired.
    pub fn trigger_count(&self) -> usize {
        self.history.iter().filter(|w| w.triggered).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_simcore::time::SimDuration;

    fn config() -> AdaptiveConfig {
        AdaptiveConfig {
            window: SimDuration::from_hours(12),
            epsilon: 0.002,
            ..AdaptiveConfig::default()
        }
    }

    fn h(i: usize) -> HandlerId {
        HandlerId::from_index(i)
    }

    fn t_hours(n: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_hours(n)
    }

    #[test]
    fn stable_workload_never_triggers() {
        let mut m = AdaptiveMonitor::new(config(), 2);
        // Three windows with the identical 80/20 mix.
        for w in 0..3u64 {
            for i in 0..100 {
                let handler = if i % 5 == 0 { h(1) } else { h(0) };
                assert_eq!(
                    m.record(handler, t_hours(w * 12) + SimDuration::from_mins(i)),
                    None
                );
            }
        }
        m.flush();
        assert_eq!(m.trigger_count(), 0);
        assert_eq!(m.history().len(), 3);
        assert!(m.history()[2].delta < 0.002);
    }

    #[test]
    fn shift_triggers_profiling() {
        let mut m = AdaptiveMonitor::new(config(), 2);
        // Window 0: all handler 0.
        for i in 0..100 {
            m.record(h(0), t_hours(0) + SimDuration::from_mins(i));
        }
        // Window 1: all handler 1 → Δp = 2.0.
        let mut decision = None;
        for i in 0..100 {
            if let Some(d) = m.record(h(1), t_hours(12) + SimDuration::from_mins(i)) {
                decision = Some(d);
            }
        }
        let d = m.flush();
        assert_eq!(decision, None); // first window close has no prior probs
        assert_eq!(d, Some(AdaptiveDecision::TriggerProfiling { delta: 2.0 }));
        assert_eq!(m.trigger_count(), 1);
    }

    #[test]
    fn small_fluctuations_stay_below_epsilon() {
        let mut m = AdaptiveMonitor::new(config(), 2);
        // 8000/2000 then 7999/2001 → Δp = 0.0002 < ε.
        for i in 0..10_000u64 {
            m.record(if i < 8_000 { h(0) } else { h(1) }, t_hours(0));
        }
        let mut trig = None;
        for i in 0..10_000u64 {
            if let Some(d) = m.record(if i < 7_999 { h(0) } else { h(1) }, t_hours(12)) {
                trig = Some(d);
            }
        }
        assert!(trig.is_none());
        let d = m.flush();
        assert!(d.is_none(), "Δp below ε must not trigger: {d:?}");
    }

    #[test]
    fn empty_windows_are_skipped_gracefully() {
        let mut m = AdaptiveMonitor::new(config(), 2);
        for i in 0..10 {
            m.record(h(0), t_hours(0) + SimDuration::from_mins(i));
        }
        // Jump three windows ahead: two empty windows close in between.
        let d = m.record(h(0), t_hours(48));
        assert_eq!(d, None);
        m.flush();
        let hist = m.history();
        // [0,12), three empty windows, then the flushed [48,60).
        assert_eq!(hist.len(), 5);
        assert_eq!(hist[1].invocations, 0);
        assert_eq!(hist[2].invocations, 0);
        assert_eq!(hist[3].invocations, 0);
        assert!(!hist[1].triggered);
    }

    #[test]
    fn shift_after_idle_gap_still_detected() {
        let mut m = AdaptiveMonitor::new(config(), 2);
        for _ in 0..100 {
            m.record(h(0), t_hours(0));
        }
        // Idle for two windows, then the mix flips.
        for _ in 0..100 {
            m.record(h(1), t_hours(36));
        }
        let d = m.flush();
        assert!(matches!(d, Some(AdaptiveDecision::TriggerProfiling { .. })));
    }

    #[test]
    fn volume_aware_threshold_absorbs_low_volume_noise() {
        let cfg = config().with_volume_awareness();
        let mut m = AdaptiveMonitor::new(cfg, 2);
        // 100 requests/window with ±5 % jitter in the mix: delta ~0.1,
        // below the raised threshold 4*sqrt(2/100) = 0.57.
        for w in 0..4u64 {
            let admin_count = 20 + (w % 2) * 5; // 20 or 25 of 100
            for i in 0..100u64 {
                let h = if i < admin_count { h(1) } else { h(0) };
                m.record(h, t_hours(w * 12));
            }
        }
        m.flush();
        assert_eq!(m.trigger_count(), 0);
        assert!(m.history().iter().all(|w| w.effective_epsilon >= 0.5));
    }

    #[test]
    fn volume_aware_threshold_still_catches_real_shifts() {
        let cfg = config().with_volume_awareness();
        let mut m = AdaptiveMonitor::new(cfg, 2);
        for _ in 0..100 {
            m.record(h(0), t_hours(0));
        }
        for _ in 0..100 {
            m.record(h(1), t_hours(12));
        }
        let d = m.flush();
        assert!(matches!(d, Some(AdaptiveDecision::TriggerProfiling { .. })));
    }

    #[test]
    fn high_volume_windows_keep_paper_epsilon() {
        let cfg = config().with_volume_awareness();
        let mut m = AdaptiveMonitor::new(cfg, 2);
        // 100M requests/window → noise floor 4*sqrt(2/1e8) ≈ 0.00057 < ε.
        // Simulate by feeding counts directly through many records is too
        // slow; instead check the arithmetic via a moderate volume where
        // the floor dips below ε only with an absurd volume — so assert
        // monotonicity: bigger windows → smaller effective ε.
        for _ in 0..200 {
            m.record(h(0), t_hours(0));
        }
        for _ in 0..20_000 {
            m.record(h(0), t_hours(12));
        }
        m.record(h(0), t_hours(24));
        m.flush();
        let hist = m.history();
        assert!(hist[1].effective_epsilon < hist[0].effective_epsilon);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_recording_panics() {
        let mut m = AdaptiveMonitor::new(config(), 1);
        m.record(h(0), t_hours(13));
        m.record(h(0), t_hours(0));
    }

    #[test]
    #[should_panic(expected = "at least one handler")]
    fn zero_handlers_rejected() {
        AdaptiveMonitor::new(config(), 0);
    }
}
