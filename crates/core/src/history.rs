//! Profiling history: multiple collection windows over time.
//!
//! The paper's empirical study (§II-B) profiles deployed applications "over
//! a period of 1 week" and its adaptive mechanism re-profiles as workloads
//! evolve. [`ProfileHistory`] keeps each profiling window's
//! [`ProfileStore`] separately so analyses can look at trends — is a
//! package's utilization rising? — while still offering the merged view the
//! detector consumes for maximum statistical confidence (the
//! law-of-large-numbers argument needs all samples).

use slimstart_appmodel::Application;

use crate::cct::Cct;
use crate::profile::ProfileStore;
use crate::utilization::Utilization;

/// One retained profiling window.
#[derive(Debug, Clone)]
pub struct ProfileWindow {
    /// Human-readable label (e.g. `"day-3"`, `"post-deploy"`).
    pub label: String,
    /// The collected data.
    pub store: ProfileStore,
}

/// An ordered sequence of profiling windows.
#[derive(Debug, Clone, Default)]
pub struct ProfileHistory {
    windows: Vec<ProfileWindow>,
}

impl ProfileHistory {
    /// Creates an empty history.
    pub fn new() -> Self {
        ProfileHistory::default()
    }

    /// Appends a completed window.
    pub fn push(&mut self, label: impl Into<String>, store: ProfileStore) {
        self.windows.push(ProfileWindow {
            label: label.into(),
            store,
        });
    }

    /// The retained windows, oldest first.
    pub fn windows(&self) -> &[ProfileWindow] {
        &self.windows
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no windows have been retained.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Drops all but the most recent `keep` windows (bounded retention for
    /// long-running deployments).
    pub fn truncate_to_recent(&mut self, keep: usize) {
        if self.windows.len() > keep {
            self.windows.drain(..self.windows.len() - keep);
        }
    }

    /// All windows merged into one store — what the detector consumes when
    /// it wants the full week of evidence.
    pub fn merged(&self) -> ProfileStore {
        let mut merged = ProfileStore::default();
        for w in &self.windows {
            merged.absorb(
                w.store.samples.clone(),
                &w.store.init_micros_by_module,
                w.store.batches_transferred,
            );
            merged.invocations += w.store.invocations;
        }
        merged
    }

    /// A CCT over every retained sample.
    pub fn merged_cct(&self) -> Cct {
        let mut cct = Cct::new();
        for w in &self.windows {
            for s in &w.store.samples {
                cct.insert(&s.path, s.is_init);
            }
        }
        cct
    }

    /// Per-window utilization of one package — the trend the adaptive
    /// mechanism's triggers correspond to.
    pub fn utilization_trend(&self, app: &Application, package: &str) -> Vec<f64> {
        self.windows
            .iter()
            .map(|w| Utilization::from_samples(w.store.samples.iter(), app).package(package))
            .collect()
    }

    /// Whether `package`'s utilization crossed `threshold` between the first
    /// and last window, in either direction — a cheap staleness probe for
    /// deployed optimizations.
    pub fn crossed_threshold(&self, app: &Application, package: &str, threshold: f64) -> bool {
        let trend = self.utilization_trend(app, package);
        match (trend.first(), trend.last()) {
            (Some(first), Some(last)) => (first < &threshold) != (last < &threshold),
            _ => false,
        }
    }
}

impl Extend<ProfileWindow> for ProfileHistory {
    fn extend<I: IntoIterator<Item = ProfileWindow>>(&mut self, iter: I) {
        self.windows.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::app::AppBuilder;
    use slimstart_appmodel::{FunctionId, ImportMode};
    use slimstart_pyrt::stack::{Frame, FrameKind};
    use slimstart_simcore::time::SimDuration;

    use crate::profile::SampleRecord;

    /// handler + one library function; utilization is driven by which
    /// fraction of samples touch the library.
    fn app() -> (Application, FunctionId, FunctionId) {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let hm = b.add_app_module("handler", SimDuration::ZERO, 0);
        let lm = b.add_library_module("lib", SimDuration::ZERO, 0, false, lib);
        b.add_import(hm, lm, 2, ImportMode::Global).unwrap();
        let f_lib = b.add_function("f", lm, 1, vec![]);
        let f_main = b.add_function("main", hm, 1, vec![]);
        b.add_handler("main", f_main);
        (b.finish().unwrap(), f_main, f_lib)
    }

    fn store_with(
        lib_samples: usize,
        app_samples: usize,
        f_main: FunctionId,
        f_lib: FunctionId,
    ) -> ProfileStore {
        let mut store = ProfileStore::default();
        let frame = |f: FunctionId| Frame {
            kind: FrameKind::Call(f),
            line: 1,
        };
        for _ in 0..lib_samples {
            store.samples.push(SampleRecord {
                path: vec![frame(f_main), frame(f_lib)].into(),
                is_init: false,
            });
        }
        for _ in 0..app_samples {
            store.samples.push(SampleRecord {
                path: vec![frame(f_main)].into(),
                is_init: false,
            });
        }
        store.invocations = (lib_samples + app_samples) as u64;
        store
    }

    #[test]
    fn merged_accumulates_all_windows() {
        let (_, f_main, f_lib) = app();
        let mut h = ProfileHistory::new();
        h.push("day-1", store_with(5, 5, f_main, f_lib));
        h.push("day-2", store_with(3, 7, f_main, f_lib));
        assert_eq!(h.len(), 2);
        let merged = h.merged();
        assert_eq!(merged.samples.len(), 20);
        assert_eq!(merged.invocations, 20);
        assert_eq!(h.merged_cct().total_samples(), 20);
    }

    #[test]
    fn utilization_trend_tracks_drift() {
        let (app, f_main, f_lib) = app();
        let mut h = ProfileHistory::new();
        h.push("w0", store_with(8, 2, f_main, f_lib)); // 80 % lib use
        h.push("w1", store_with(4, 6, f_main, f_lib)); // 40 %
        h.push("w2", store_with(0, 10, f_main, f_lib)); // dead
        let trend = h.utilization_trend(&app, "lib");
        assert_eq!(trend.len(), 3);
        assert!((trend[0] - 0.8).abs() < 1e-12);
        assert!((trend[1] - 0.4).abs() < 1e-12);
        assert_eq!(trend[2], 0.0);
    }

    #[test]
    fn threshold_crossing_detects_both_directions() {
        let (app, f_main, f_lib) = app();
        let mut dying = ProfileHistory::new();
        dying.push("w0", store_with(8, 2, f_main, f_lib));
        dying.push("w1", store_with(0, 10, f_main, f_lib));
        assert!(dying.crossed_threshold(&app, "lib", 0.02));

        let mut waking = ProfileHistory::new();
        waking.push("w0", store_with(0, 10, f_main, f_lib));
        waking.push("w1", store_with(8, 2, f_main, f_lib));
        assert!(waking.crossed_threshold(&app, "lib", 0.02));

        let mut stable = ProfileHistory::new();
        stable.push("w0", store_with(8, 2, f_main, f_lib));
        stable.push("w1", store_with(7, 3, f_main, f_lib));
        assert!(!stable.crossed_threshold(&app, "lib", 0.02));
    }

    #[test]
    fn retention_keeps_most_recent() {
        let (_, f_main, f_lib) = app();
        let mut h = ProfileHistory::new();
        for i in 0..5 {
            h.push(format!("w{i}"), store_with(i, 1, f_main, f_lib));
        }
        h.truncate_to_recent(2);
        assert_eq!(h.len(), 2);
        assert_eq!(h.windows()[0].label, "w3");
        assert_eq!(h.windows()[1].label, "w4");
        // Truncating to more than we have is a no-op.
        h.truncate_to_recent(10);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn empty_history_behaviour() {
        let (app, _, _) = app();
        let h = ProfileHistory::new();
        assert!(h.is_empty());
        assert_eq!(h.merged().samples.len(), 0);
        assert!(h.utilization_trend(&app, "lib").is_empty());
        assert!(!h.crossed_threshold(&app, "lib", 0.02));
    }
}
