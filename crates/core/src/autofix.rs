//! The verifier-gated auto-fix stage.
//!
//! [`AutoFixStage`] is an alternate *optimize*-type stage: instead of the
//! paper's profile-guided deferral it drives the analyzer's anti-pattern
//! lint catalog ([`slimstart_analyzer::antipattern`]). The analyzer side
//! already gates every fix four ways (deferral-safety verifier, no new
//! analysis errors, the fixed lint gone on re-analysis, no modeled
//! cold-start regression); this stage adds the **in-pipeline speedup
//! proof**: it deploys the original and the fixed application to the
//! simulated platform under the run's own workload and keeps the rewrite
//! only when the measured mean cold-start end-to-end time does not
//! regress. A regressing fix set rolls back exactly like the
//! pre-deployment gate does — the baseline artifact ships and the outcome
//! records why.
//!
//! Swap it into the canonical engine in place of the optimizer:
//!
//! ```
//! use slimstart_core::autofix::AutoFixStage;
//! use slimstart_core::pipeline::PipelineConfig;
//! use slimstart_core::stage::StageEngine;
//!
//! let config = PipelineConfig::default();
//! let engine =
//!     StageEngine::canonical(&config).replace("optimize", AutoFixStage::default());
//! assert!(engine.stage_names().contains(&"auto-fix"));
//! ```

use std::sync::Arc;

use slimstart_analyzer::antipattern::{auto_fix, AntipatternConfig, AutoFixReport};
use slimstart_appmodel::Application;
use slimstart_platform::metrics::{AppMetrics, Speedup};
use slimstart_platform::platform::Platform;
use slimstart_workload::generator::generate;

use crate::pipeline::PipelineError;
use crate::stage::{deployment_platform, PipelineCtx, Stage, StageStatus};

/// What the auto-fix stage did, recorded in `ctx.autofix` and surfaced as
/// [`PipelineOutcome::autofix`](crate::pipeline::PipelineOutcome::autofix).
#[derive(Debug, Clone)]
pub struct AutoFixOutcome {
    /// The analyzer-side journal: fixes applied, fixes rejected, modeled
    /// cold-start estimates before/after.
    pub report: AutoFixReport,
    /// Measured metrics of the pre-fix application under this run's
    /// workload; `None` when no fix was applied (nothing to prove).
    pub before: Option<AppMetrics>,
    /// Measured metrics of the fixed application.
    pub after: Option<AppMetrics>,
    /// Measured speedup of fixed over pre-fix — the in-pipeline proof
    /// attached to the applied rewrites.
    pub speedup: Option<Speedup>,
    /// Whether the measured delta failed the tolerance gate, so the fix
    /// set was rolled back and the baseline artifact shipped.
    pub rolled_back: bool,
}

impl AutoFixOutcome {
    /// Whether any fix survived both the analyzer gates and the measured
    /// speedup proof.
    pub fn fixed_anything(&self) -> bool {
        !self.report.applied.is_empty() && !self.rolled_back
    }
}

/// An alternate optimize-type [`Stage`] that applies verifier-approved
/// anti-pattern fixes and proves each applied set with a simulated
/// cold-start measurement. See the module docs.
#[derive(Debug, Clone)]
pub struct AutoFixStage {
    /// Lint thresholds and the runtime cost profile.
    pub antipattern: AntipatternConfig,
    /// Maximum collect/apply rounds for the analyzer-side fixpoint loop.
    pub max_rounds: usize,
    /// Measured mean-e2e regression tolerance: the fixed application may
    /// be at most this fraction slower before the stage rolls back.
    /// Restore-eager fixes move load cost between init and exec without
    /// changing its total, so a small tolerance absorbs measurement noise
    /// while still rejecting real regressions.
    pub e2e_tolerance: f64,
}

impl Default for AutoFixStage {
    fn default() -> Self {
        AutoFixStage {
            antipattern: AntipatternConfig::default(),
            max_rounds: 4,
            e2e_tolerance: 0.005,
        }
    }
}

impl AutoFixStage {
    /// A stage with custom lint thresholds and defaults elsewhere.
    pub fn with_config(antipattern: AntipatternConfig) -> Self {
        AutoFixStage {
            antipattern,
            ..AutoFixStage::default()
        }
    }
}

/// Deploys `app` on this run's platform (chaos plan and all) under the
/// run's workload spec and measures it. The platform seed is `seed ^ 0x4`:
/// the auto-fix proof gets its own stream, disjoint from the baseline
/// (`^ 0x1`), profiling (`^ 0x2`) and redeploy (`^ 0x3`) stages, so adding
/// this stage never perturbs their measurements.
fn measure(ctx: &PipelineCtx, app: &Arc<Application>) -> Result<AppMetrics, PipelineError> {
    let invocations = generate(&ctx.spec, app, ctx.config.seed)?;
    let mut platform = Platform::new(
        Arc::clone(app),
        deployment_platform(ctx),
        ctx.config.seed ^ 0x4,
    );
    Ok(AppMetrics::aggregate(platform.run(&invocations)?))
}

impl Stage for AutoFixStage {
    fn name(&self) -> &'static str {
        "auto-fix"
    }

    fn run(&self, ctx: &mut PipelineCtx) -> Result<StageStatus, PipelineError> {
        let usage = ctx.utilization.as_ref().map(|u| u.to_observed());
        let base_app = ctx.final_app();
        let result = auto_fix(
            &base_app,
            usage.as_ref(),
            &self.antipattern,
            self.max_rounds,
        );
        if result.report.applied.is_empty() {
            // Nothing passed the analyzer gates; no measurement to prove.
            ctx.autofix = Some(AutoFixOutcome {
                report: result.report,
                before: None,
                after: None,
                speedup: None,
                rolled_back: false,
            });
            return Ok(StageStatus::Continue);
        }
        let fixed = Arc::new(result.app);
        let before = measure(ctx, &base_app)?;
        let after = measure(ctx, &fixed)?;
        let speedup = Speedup::between(&before, &after);
        let within_tolerance = after.mean_e2e_ms <= before.mean_e2e_ms * (1.0 + self.e2e_tolerance);
        if within_tolerance {
            ctx.candidate = Some(fixed);
            ctx.redeploy = true;
        } else {
            // The measured proof failed: roll back to the baseline artifact
            // (the same path the pre-deployment gate takes).
            ctx.optimization = None;
            ctx.candidate = None;
            ctx.redeploy = false;
        }
        ctx.autofix = Some(AutoFixOutcome {
            report: result.report,
            before: Some(before),
            after: Some(after),
            speedup: Some(speedup),
            rolled_back: !within_tolerance,
        });
        Ok(StageStatus::Continue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{Pipeline, PipelineConfig};
    use crate::stage::StageEngine;
    use slimstart_appmodel::app::AppBuilder;
    use slimstart_appmodel::function::{Stmt, StmtKind};
    use slimstart_appmodel::ImportMode;
    use slimstart_platform::platform::PlatformConfig;
    use slimstart_simcore::time::SimDuration;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    /// A hand-built monolithic-init app: the handler only ever calls
    /// `lib.hot`, but `lib.heavy` (100 ms over two modules) loads eagerly
    /// at every cold start.
    fn monolithic_app() -> Application {
        let mut b = AppBuilder::new("mono");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 16);
        let root = b.add_library_module("lib", ms(2), 64, false, lib);
        let hot = b.add_library_module("lib.hot", ms(400), 512, false, lib);
        let heavy = b.add_library_module("lib.heavy", ms(60), 2048, false, lib);
        let heavy2 = b.add_library_module("lib.heavy.sub", ms(40), 1024, false, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        b.add_import(root, hot, 1, ImportMode::Global).unwrap();
        b.add_import(root, heavy, 2, ImportMode::Global).unwrap();
        b.add_import(heavy, heavy2, 1, ImportMode::Global).unwrap();
        let api = b.add_function(
            "api",
            hot,
            3,
            vec![Stmt {
                line: 4,
                kind: StmtKind::Work(ms(3)),
            }],
        );
        let f = b.add_function(
            "main",
            h,
            4,
            vec![
                Stmt {
                    line: 5,
                    kind: StmtKind::Work(ms(1)),
                },
                Stmt {
                    line: 6,
                    kind: StmtKind::call(api),
                },
            ],
        );
        b.add_handler("main", f);
        b.finish().unwrap()
    }

    fn quick_config() -> PipelineConfig {
        PipelineConfig::default()
            .with_cold_starts(40)
            .with_platform(PlatformConfig::default().without_jitter())
    }

    fn engine(config: &PipelineConfig) -> StageEngine {
        StageEngine::canonical(config).replace("optimize", AutoFixStage::default())
    }

    #[test]
    fn autofix_stage_applies_fix_with_measured_proof() {
        let app = monolithic_app();
        let mix = vec![("main".to_string(), 1.0)];
        let pipeline = Pipeline::new(quick_config());
        let out = pipeline
            .run_with_engine(&engine(pipeline.config()), &app, &mix)
            .unwrap();
        let autofix = out.autofix.as_ref().expect("stage records its outcome");
        assert!(autofix.fixed_anything(), "{:?}", autofix.report);
        assert!(!autofix.rolled_back);
        assert!(autofix
            .report
            .applied
            .iter()
            .any(|a| a.lint_id == "eager-monolithic-init" && a.subject.contains("lib.heavy")));
        // Every applied fix carries a non-negative modeled saving...
        assert!(autofix
            .report
            .applied
            .iter()
            .all(|a| a.estimated_saving_ms >= 0.0));
        // ...and the applied set carries a non-negative *measured* proof.
        let speedup = autofix.speedup.as_ref().unwrap();
        assert!(speedup.init > 1.0, "init speedup = {:.3}", speedup.init);
        assert!(speedup.e2e > 1.0, "e2e speedup = {:.3}", speedup.e2e);
        // The fixed artifact shipped: the heavy package is deferred.
        let root = out.final_app.module_by_name("lib").unwrap();
        let heavy = out.final_app.module_by_name("lib.heavy").unwrap();
        let decl = out
            .final_app
            .imports_of(root)
            .iter()
            .find(|d| d.target == heavy)
            .copied()
            .unwrap();
        assert!(decl.mode.is_deferred());
        // End-to-end, the pipeline measured the fixed app faster too.
        assert!(out.speedup.e2e > 1.0);
    }

    #[test]
    fn autofix_stage_reanalysis_shows_fixed_lints_gone() {
        let app = monolithic_app();
        let mix = vec![("main".to_string(), 1.0)];
        let pipeline = Pipeline::new(quick_config());
        let out = pipeline
            .run_with_engine(&engine(pipeline.config()), &app, &mix)
            .unwrap();
        let autofix = out.autofix.as_ref().unwrap();
        assert!(autofix.fixed_anything());
        // Re-running the lint catalog over the shipped artifact reports
        // zero instances of the fixed lints.
        let report =
            slimstart_analyzer::Analyzer::with_antipattern_passes(AntipatternConfig::default())
                .analyze(&out.final_app, None);
        for fix in &autofix.report.applied {
            assert_eq!(
                report.with_lint(fix.lint_id).count(),
                0,
                "{} still fires after auto-fix",
                fix.lint_id
            );
        }
    }

    #[test]
    fn clean_app_records_empty_outcome_without_measuring() {
        // lib.hot is all the app loads and the handler uses it: no lints,
        // no fixes, no proof runs.
        let mut b = AppBuilder::new("clean");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 16);
        let hot = b.add_library_module("lib", ms(5), 64, false, lib);
        b.add_import(h, hot, 2, ImportMode::Global).unwrap();
        let api = b.add_function(
            "api",
            hot,
            3,
            vec![Stmt {
                line: 4,
                kind: StmtKind::Work(ms(2)),
            }],
        );
        let f = b.add_function(
            "main",
            h,
            4,
            vec![Stmt {
                line: 5,
                kind: StmtKind::call(api),
            }],
        );
        b.add_handler("main", f);
        let app = b.finish().unwrap();
        let mix = vec![("main".to_string(), 1.0)];
        let pipeline = Pipeline::new(quick_config());
        let out = pipeline
            .run_with_engine(&engine(pipeline.config()), &app, &mix)
            .unwrap();
        let autofix = out.autofix.as_ref().unwrap();
        assert!(autofix.report.applied.is_empty());
        assert!(autofix.before.is_none() && autofix.after.is_none());
        assert!(!autofix.rolled_back);
        assert_eq!(out.speedup.e2e, 1.0, "baseline shipped unchanged");
    }

    #[test]
    fn canonical_pipeline_has_no_autofix_outcome() {
        let app = monolithic_app();
        let mix = vec![("main".to_string(), 1.0)];
        let pipeline = Pipeline::new(quick_config());
        let out = pipeline.run(&app, &mix).unwrap();
        assert!(out.autofix.is_none());
    }
}
