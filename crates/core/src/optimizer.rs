//! The automated code optimizer (paper §IV-B).
//!
//! For every deferrable flagged package, the optimizer finds the *boundary*
//! global imports — declarations whose importer lies outside the package but
//! whose target lies inside — comments them out, and re-introduces the
//! import at the target's first use point. Package-internal imports are left
//! untouched: when the deferred package finally loads, its own subtree loads
//! with it, preserving Python semantics.
//!
//! Safety: before every deferral the optimizer consults the
//! [`slimstart_analyzer`] deferral-safety verifier against the live
//! application — side-effectful subtrees, side-effectful implicit parents,
//! import-time touches and deferred-import cycles are all refused — so the
//! transformation preserves observable behaviour even when the detector's
//! report is stale or wrong.

use slimstart_analyzer::{boundary_imports, verify_deferral};
use slimstart_appmodel::source::CodeEdit;
use slimstart_appmodel::{Application, FunctionId, ImportMode, ModuleId};

use crate::detect::{InefficiencyReport, SkipReason};

/// The result of applying the optimizer to an application.
#[derive(Debug, Clone)]
pub struct OptimizationOutcome {
    /// The rewritten application (the input is left untouched).
    pub app: Application,
    /// Every line-level edit performed, for auditability.
    pub edits: Vec<CodeEdit>,
    /// Dotted paths of packages whose boundary imports were deferred.
    pub deferred_packages: Vec<String>,
    /// Flagged packages left eager, with the reason.
    pub skipped: Vec<(String, SkipReason)>,
}

impl OptimizationOutcome {
    /// Number of import declarations rewritten.
    pub fn deferred_import_count(&self) -> usize {
        self.edits.len()
    }
}

/// Applies the report's deferrable findings to a copy of `app`.
///
/// # Example
///
/// Running the full pipeline produces a report and applies this function;
/// the outcome records every edit:
///
/// ```
/// use slimstart_core::pipeline::{Pipeline, PipelineConfig};
/// use slimstart_appmodel::catalog::by_code;
///
/// let entry = by_code("R-GB").expect("catalog entry");
/// let built = entry.build(7)?;
/// let mut config = PipelineConfig::default();
/// config.cold_starts = 25;
/// let outcome = Pipeline::new(config).run(&built.app, &entry.workload_weights())?;
/// let opt = outcome.optimization.as_ref().expect("R-GB optimizes");
/// assert!(opt.deferred_packages.iter().any(|p| p == "igraph.drawing"));
/// assert!(opt.edits.iter().all(|e| e.after.starts_with("# import ")));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn optimize(app: &Application, report: &InefficiencyReport) -> OptimizationOutcome {
    let mut optimized = app.clone();
    let mut edits = Vec::new();
    let mut deferred_packages = Vec::new();
    let mut skipped = Vec::new();

    for finding in &report.findings {
        if !finding.deferrable {
            skipped.push((
                finding.package.clone(),
                finding.skip_reason.unwrap_or(SkipReason::SideEffects),
            ));
            continue;
        }
        // Defence in depth: re-verify safety against the live application
        // rather than trusting the report blindly.
        if let Err(violation) = verify_deferral(app, &finding.package) {
            skipped.push((
                finding.package.clone(),
                SkipReason::from_violation(&violation),
            ));
            continue;
        }

        let boundary = boundary_imports(app, &finding.package);
        if boundary.is_empty() {
            continue;
        }
        for (importer, target, line) in boundary {
            optimized.set_import_mode(importer, target, ImportMode::Deferred);
            edits.push(make_edit(app, importer, target, line, &finding.package));
        }
        deferred_packages.push(finding.package.clone());
    }

    OptimizationOutcome {
        app: optimized,
        edits,
        deferred_packages,
        skipped,
    }
}

/// Conservative-mode optimization for runs whose profile was lost or
/// truncated (the resilience ladder's middle rung): the detector's findings
/// cannot be trusted — a rarely-used package may just have lost its samples
/// — so this ignores the profile entirely and defers only packages that are
/// *statically* never used: no handler's transitive call graph reaches
/// them, and the deferral-safety verifier accepts them. Deferral stays
/// behavior-preserving even if the static view is wrong (a deferred import
/// still loads on first use, unlike FaaSLight's stripping), so this rung
/// trades speedup for trust, never correctness.
///
/// Candidates are visited shallow-first (depth, then name) so a whole
/// never-used package defers at its root, its subtree riding along, and
/// the edit list is deterministic.
pub fn optimize_conservative(app: &Application) -> OptimizationOutcome {
    fn within(package: &str, parent: &str) -> bool {
        package == parent
            || (package.len() > parent.len()
                && package.starts_with(parent)
                && package.as_bytes()[parent.len()] == b'.')
    }

    let mut optimized = app.clone();
    let mut edits = Vec::new();
    let mut deferred_packages: Vec<String> = Vec::new();

    let mut candidates: Vec<(usize, &str)> = app
        .modules()
        .iter()
        .filter(|m| m.library().is_some())
        .map(|m| (m.depth(), m.name()))
        .collect();
    candidates.sort_unstable();

    let handler_fns: Vec<FunctionId> = app.handlers().iter().map(|h| h.function()).collect();
    for (_, package) in candidates {
        if deferred_packages.iter().any(|p| within(package, p)) {
            continue;
        }
        let statically_used = handler_fns
            .iter()
            .any(|f| slimstart_appmodel::source::function_uses_package(app, *f, package));
        if statically_used {
            continue;
        }
        if verify_deferral(app, package).is_err() {
            continue;
        }
        let boundary = boundary_imports(app, package);
        if boundary.is_empty() {
            continue;
        }
        for (importer, target, line) in boundary {
            optimized.set_import_mode(importer, target, ImportMode::Deferred);
            edits.push(make_edit(app, importer, target, line, package));
        }
        deferred_packages.push(package.to_string());
    }

    OptimizationOutcome {
        app: optimized,
        edits,
        deferred_packages,
        skipped: Vec::new(),
    }
}

/// Finds a function that (transitively) calls into the deferred `package`,
/// preferring handlers, to describe where the deferred import surfaces.
fn first_use_site(app: &Application, package: &str) -> Option<FunctionId> {
    let handler_fns: Vec<FunctionId> = app.handlers().iter().map(|h| h.function()).collect();
    for f in &handler_fns {
        if slimstart_appmodel::source::function_uses_package(app, *f, package) {
            return Some(*f);
        }
    }
    (0..app.functions().len())
        .map(FunctionId::from_index)
        .find(|f| {
            !app.module(app.function(*f).module()).in_package(package)
                && slimstart_appmodel::source::function_uses_package(app, *f, package)
        })
}

fn make_edit(
    app: &Application,
    importer: ModuleId,
    target: ModuleId,
    line: u32,
    package: &str,
) -> CodeEdit {
    let target_name = app.module(target).name();
    let inserted = match first_use_site(app, package) {
        Some(f) => {
            let func = app.function(f);
            let owner = app.module(func.module());
            format!(
                "import {target_name} inside {}() ({}:{})",
                func.name(),
                owner.file(),
                func.line()
            )
        }
        None => format!("import {target_name} — no live use site; removed from cold path"),
    };
    CodeEdit {
        file: app.module(importer).file().to_string(),
        line,
        before: format!("import {target_name}"),
        after: format!("# import {target_name}  # deferred by slimstart"),
        inserted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::app::AppBuilder;
    use slimstart_appmodel::function::{Stmt, StmtKind};
    use slimstart_appmodel::LibraryId;
    use slimstart_simcore::time::SimDuration;

    use crate::detect::{Finding, UsageClass};

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    fn app() -> Application {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("nltk");
        let h = b.add_app_module("handler", ms(1), 0);
        let root = b.add_library_module("nltk", ms(2), 0, false, lib);
        let sem = b.add_library_module("nltk.sem", ms(40), 0, false, lib);
        let logic = b.add_library_module("nltk.sem.logic", ms(10), 0, false, lib);
        let stem = b.add_library_module("nltk.stem", ms(20), 0, true, lib); // side-effectful
        b.add_import(h, root, 2, slimstart_appmodel::ImportMode::Global)
            .unwrap();
        b.add_import(root, sem, 147, slimstart_appmodel::ImportMode::Global)
            .unwrap();
        b.add_import(sem, logic, 2, slimstart_appmodel::ImportMode::Global)
            .unwrap();
        b.add_import(root, stem, 148, slimstart_appmodel::ImportMode::Global)
            .unwrap();
        let f_sem = b.add_function(
            "parse",
            sem,
            44,
            vec![Stmt {
                line: 45,
                kind: StmtKind::Work(ms(1)),
            }],
        );
        let f = b.add_function(
            "main",
            h,
            4,
            vec![Stmt {
                line: 5,
                kind: StmtKind::call(f_sem),
            }],
        );
        b.add_handler("main", f);
        b.finish().unwrap()
    }

    fn finding(package: &str, deferrable: bool) -> Finding {
        Finding {
            package: package.to_string(),
            library: LibraryId::from_index(0),
            class: UsageClass::Unused,
            utilization: 0.0,
            init_time: ms(40),
            init_fraction: 0.5,
            deferrable,
            skip_reason: (!deferrable).then_some(SkipReason::SideEffects),
        }
    }

    fn report(findings: Vec<Finding>) -> InefficiencyReport {
        InefficiencyReport {
            app_name: "t".into(),
            gate_passed: true,
            total_init: ms(73),
            e2e_mean: ms(80),
            init_share: 0.9,
            libraries: vec![],
            findings,
        }
    }

    #[test]
    fn defers_boundary_import_only() {
        let app = app();
        let out = optimize(&app, &report(vec![finding("nltk.sem", true)]));
        let root = out.app.module_by_name("nltk").unwrap();
        let sem = out.app.module_by_name("nltk.sem").unwrap();
        let logic = out.app.module_by_name("nltk.sem.logic").unwrap();
        // Boundary edge root→sem deferred; internal sem→logic untouched.
        let decl = out
            .app
            .imports_of(root)
            .iter()
            .find(|d| d.target == sem)
            .unwrap();
        assert!(decl.mode.is_deferred());
        let internal = out
            .app
            .imports_of(sem)
            .iter()
            .find(|d| d.target == logic)
            .unwrap();
        assert!(internal.mode.is_global());
        assert_eq!(out.deferred_packages, vec!["nltk.sem".to_string()]);
        assert_eq!(out.deferred_import_count(), 1);
    }

    #[test]
    fn edit_records_the_rewrite() {
        let app = app();
        let out = optimize(&app, &report(vec![finding("nltk.sem", true)]));
        let edit = &out.edits[0];
        assert_eq!(edit.file, "nltk/__init__.py");
        assert_eq!(edit.line, 147);
        assert_eq!(edit.before, "import nltk.sem");
        assert!(edit.after.starts_with("# import nltk.sem"));
        // The first-use site is the handler chain into parse().
        assert!(edit.inserted.contains("main()"), "{}", edit.inserted);
    }

    #[test]
    fn side_effectful_package_is_skipped() {
        let app = app();
        let out = optimize(&app, &report(vec![finding("nltk.stem", false)]));
        assert!(out.edits.is_empty());
        assert_eq!(
            out.skipped,
            vec![("nltk.stem".to_string(), SkipReason::SideEffects)]
        );
        let root = out.app.module_by_name("nltk").unwrap();
        let stem = out.app.module_by_name("nltk.stem").unwrap();
        let decl = out
            .app
            .imports_of(root)
            .iter()
            .find(|d| d.target == stem)
            .unwrap();
        assert!(decl.mode.is_global());
    }

    #[test]
    fn safety_double_check_overrides_bad_report() {
        // A (buggy) report claims the side-effectful package is deferrable;
        // the optimizer must still refuse.
        let app = app();
        let out = optimize(&app, &report(vec![finding("nltk.stem", true)]));
        assert!(out.edits.is_empty());
        assert_eq!(out.skipped.len(), 1);
    }

    #[test]
    fn original_app_is_untouched() {
        let app = app();
        let _ = optimize(&app, &report(vec![finding("nltk.sem", true)]));
        let root = app.module_by_name("nltk").unwrap();
        assert!(app.imports_of(root).iter().all(|d| d.mode.is_global()));
    }

    #[test]
    fn whole_library_deferral_flips_handler_import() {
        let app = app();
        // nltk.stem is side-effectful, so the whole library is not
        // deferrable — use a clean sub-library check via nltk.sem.logic.
        let out = optimize(&app, &report(vec![finding("nltk.sem.logic", true)]));
        let sem = out.app.module_by_name("nltk.sem").unwrap();
        let logic = out.app.module_by_name("nltk.sem.logic").unwrap();
        let decl = out
            .app
            .imports_of(sem)
            .iter()
            .find(|d| d.target == logic)
            .unwrap();
        assert!(decl.mode.is_deferred());
    }

    #[test]
    fn missing_boundary_is_a_no_op() {
        let app = app();
        let out = optimize(&app, &report(vec![finding("totally.absent", true)]));
        assert!(out.edits.is_empty());
        assert!(out.deferred_packages.is_empty());
    }

    #[test]
    fn conservative_defers_only_statically_unused_safe_packages() {
        let app = app();
        let out = optimize_conservative(&app);
        // The handler chain reaches nltk.sem (so nltk and nltk.sem stay
        // eager); nltk.stem is side-effectful (verifier refuses); only the
        // never-called, side-effect-free nltk.sem.logic defers.
        assert_eq!(out.deferred_packages, vec!["nltk.sem.logic".to_string()]);
        let sem = out.app.module_by_name("nltk.sem").unwrap();
        let logic = out.app.module_by_name("nltk.sem.logic").unwrap();
        let decl = out
            .app
            .imports_of(sem)
            .iter()
            .find(|d| d.target == logic)
            .unwrap();
        assert!(decl.mode.is_deferred());
    }

    #[test]
    fn conservative_defers_whole_unused_library_at_its_root() {
        // A handler that never touches the library at all: the root defers
        // and the subtree rides along (no per-child edits).
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("pandas");
        let h = b.add_app_module("handler", ms(1), 0);
        let root = b.add_library_module("pandas", ms(5), 0, false, lib);
        let sub = b.add_library_module("pandas.io", ms(30), 0, false, lib);
        b.add_import(h, root, 2, slimstart_appmodel::ImportMode::Global)
            .unwrap();
        b.add_import(root, sub, 3, slimstart_appmodel::ImportMode::Global)
            .unwrap();
        let f = b.add_function(
            "main",
            h,
            4,
            vec![Stmt {
                line: 5,
                kind: StmtKind::Work(ms(1)),
            }],
        );
        b.add_handler("main", f);
        let app = b.finish().unwrap();

        let out = optimize_conservative(&app);
        assert_eq!(out.deferred_packages, vec!["pandas".to_string()]);
        assert_eq!(
            out.deferred_import_count(),
            1,
            "one boundary edit at the root"
        );
        // The internal pandas→pandas.io edge stays global.
        let root = out.app.module_by_name("pandas").unwrap();
        let sub = out.app.module_by_name("pandas.io").unwrap();
        let internal = out
            .app
            .imports_of(root)
            .iter()
            .find(|d| d.target == sub)
            .unwrap();
        assert!(internal.mode.is_global());
    }

    #[test]
    fn conservative_is_deterministic() {
        let app = app();
        let a = optimize_conservative(&app);
        let b = optimize_conservative(&app);
        assert_eq!(a.deferred_packages, b.deferred_packages);
        assert_eq!(a.edits.len(), b.edits.len());
    }
}
