//! Profile wire format: how sample batches travel to the collector.
//!
//! The paper's profiler writes samples to a local buffer and batch-transfers
//! them asynchronously to external storage (DynamoDB/S3, §IV-D). This module
//! defines the compact binary encoding of one transferred batch, so the
//! simulation can account for real transfer sizes and the asynchronous
//! [`collector`](crate::collector) has an actual byte stream to decode.
//!
//! Layout (little-endian):
//!
//! ```text
//! [magic u32 = 0x534C4D31 ("SLM1")]
//! [sample_count u32]
//!   per sample: [flags u8: bit0 = is_init] [depth u16]
//!     per frame: [kind u8: 0 = module-init, 1 = call] [id u32] [line u32]
//! [init_entry_count u32]
//!   per entry: [module u32] [micros u64]
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::HashMap;

use slimstart_appmodel::{FunctionId, ModuleId};
use slimstart_pyrt::stack::{Frame, FrameKind};

use crate::profile::SampleRecord;

const MAGIC: u32 = 0x534C_4D31;

/// Errors raised while decoding a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The buffer does not start with the batch magic.
    BadMagic,
    /// The buffer ended before the declared contents.
    Truncated,
    /// A frame kind byte was neither 0 nor 1.
    BadFrameKind(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "profile batch has wrong magic"),
            WireError::Truncated => write!(f, "profile batch is truncated"),
            WireError::BadFrameKind(k) => write!(f, "unknown frame kind byte {k}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One batch of profile data in decoded form.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileBatch {
    /// Captured samples.
    pub samples: Vec<SampleRecord>,
    /// Exact per-module init time observations, microseconds.
    pub init_micros: HashMap<ModuleId, u64>,
}

impl ProfileBatch {
    /// Encodes the batch into its wire form.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.encoded_len());
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(self.samples.len() as u32);
        for s in &self.samples {
            buf.put_u8(u8::from(s.is_init));
            buf.put_u16_le(s.path.len() as u16);
            for frame in s.path.iter() {
                match frame.kind {
                    FrameKind::ModuleInit(m) => {
                        buf.put_u8(0);
                        buf.put_u32_le(m.index() as u32);
                    }
                    FrameKind::Call(f) => {
                        buf.put_u8(1);
                        buf.put_u32_le(f.index() as u32);
                    }
                }
                buf.put_u32_le(frame.line);
            }
        }
        buf.put_u32_le(self.init_micros.len() as u32);
        // Deterministic order for reproducible byte streams.
        let mut entries: Vec<(&ModuleId, &u64)> = self.init_micros.iter().collect();
        entries.sort();
        for (module, micros) in entries {
            buf.put_u32_le(module.index() as u32);
            buf.put_u64_le(*micros);
        }
        buf.freeze()
    }

    /// The exact size [`ProfileBatch::encode`] will produce, in bytes —
    /// what the simulated network transfer is charged for.
    pub fn encoded_len(&self) -> usize {
        let samples: usize = self.samples.iter().map(|s| 1 + 2 + s.path.len() * 9).sum();
        4 + 4 + samples + 4 + self.init_micros.len() * 12
    }

    /// Decodes a batch from its wire form.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] on malformed input.
    pub fn decode(mut buf: Bytes) -> Result<ProfileBatch, WireError> {
        fn need(buf: &Bytes, n: usize) -> Result<(), WireError> {
            if buf.remaining() < n {
                Err(WireError::Truncated)
            } else {
                Ok(())
            }
        }
        need(&buf, 8)?;
        if buf.get_u32_le() != MAGIC {
            return Err(WireError::BadMagic);
        }
        let sample_count = buf.get_u32_le() as usize;
        let mut samples = Vec::with_capacity(sample_count.min(1 << 20));
        for _ in 0..sample_count {
            need(&buf, 3)?;
            let flags = buf.get_u8();
            let depth = buf.get_u16_le() as usize;
            let mut path = Vec::with_capacity(depth.min(1 << 10));
            for _ in 0..depth {
                need(&buf, 9)?;
                let kind_byte = buf.get_u8();
                let id = buf.get_u32_le() as usize;
                let line = buf.get_u32_le();
                let kind = match kind_byte {
                    0 => FrameKind::ModuleInit(ModuleId::from_index(id)),
                    1 => FrameKind::Call(FunctionId::from_index(id)),
                    other => return Err(WireError::BadFrameKind(other)),
                };
                path.push(Frame { kind, line });
            }
            samples.push(SampleRecord {
                path: path.into(),
                is_init: flags & 1 != 0,
            });
        }
        need(&buf, 4)?;
        let entry_count = buf.get_u32_le() as usize;
        let mut init_micros = HashMap::with_capacity(entry_count.min(1 << 20));
        for _ in 0..entry_count {
            need(&buf, 12)?;
            let module = ModuleId::from_index(buf.get_u32_le() as usize);
            let micros = buf.get_u64_le();
            init_micros.insert(module, micros);
        }
        Ok(ProfileBatch {
            samples,
            init_micros,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_simcore::rng::SimRng;

    fn frame_call(i: usize, line: u32) -> Frame {
        Frame {
            kind: FrameKind::Call(FunctionId::from_index(i)),
            line,
        }
    }

    fn frame_init(i: usize) -> Frame {
        Frame {
            kind: FrameKind::ModuleInit(ModuleId::from_index(i)),
            line: 1,
        }
    }

    fn batch() -> ProfileBatch {
        let mut init = HashMap::new();
        init.insert(ModuleId::from_index(3), 12_345u64);
        init.insert(ModuleId::from_index(7), 999u64);
        ProfileBatch {
            samples: vec![
                SampleRecord {
                    path: vec![frame_call(0, 5), frame_call(1, 9)].into(),
                    is_init: false,
                },
                SampleRecord {
                    path: vec![frame_init(2)].into(),
                    is_init: true,
                },
            ],
            init_micros: init,
        }
    }

    #[test]
    fn round_trip() {
        let b = batch();
        let encoded = b.encode();
        let decoded = ProfileBatch::decode(encoded).unwrap();
        assert_eq!(decoded, b);
    }

    #[test]
    fn encoded_len_is_exact() {
        let b = batch();
        assert_eq!(b.encode().len(), b.encoded_len());
        let empty = ProfileBatch::default();
        assert_eq!(empty.encode().len(), empty.encoded_len());
        assert_eq!(empty.encoded_len(), 12);
    }

    #[test]
    fn empty_batch_round_trips() {
        let b = ProfileBatch::default();
        assert_eq!(ProfileBatch::decode(b.encode()).unwrap(), b);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut raw = BytesMut::new();
        raw.put_u32_le(0xDEAD_BEEF);
        raw.put_u32_le(0);
        assert_eq!(ProfileBatch::decode(raw.freeze()), Err(WireError::BadMagic));
    }

    #[test]
    fn truncation_detected() {
        let encoded = batch().encode();
        for cut in [0, 4, 7, encoded.len() - 1] {
            let err = ProfileBatch::decode(encoded.slice(..cut)).unwrap_err();
            assert_eq!(err, WireError::Truncated, "cut at {cut}");
        }
    }

    #[test]
    fn bad_frame_kind_detected() {
        let mut raw = BytesMut::new();
        raw.put_u32_le(MAGIC);
        raw.put_u32_le(1); // one sample
        raw.put_u8(0); // flags
        raw.put_u16_le(1); // depth 1
        raw.put_u8(9); // invalid frame kind
        raw.put_u32_le(0);
        raw.put_u32_le(0);
        raw.put_u32_le(0); // no init entries
        assert_eq!(
            ProfileBatch::decode(raw.freeze()),
            Err(WireError::BadFrameKind(9))
        );
    }

    #[test]
    fn random_batches_round_trip() {
        let mut rng = SimRng::seed_from(99);
        for _ in 0..50 {
            let n = rng.next_below(40);
            let samples: Vec<SampleRecord> = (0..n)
                .map(|_| {
                    let depth = 1 + rng.next_below(8);
                    SampleRecord {
                        path: (0..depth)
                            .map(|_| {
                                if rng.chance(0.3) {
                                    frame_init(rng.next_below(100))
                                } else {
                                    frame_call(rng.next_below(100), rng.next_below(500) as u32)
                                }
                            })
                            .collect::<Vec<_>>()
                            .into(),
                        is_init: rng.chance(0.5),
                    }
                })
                .collect();
            let mut init_micros = HashMap::new();
            for _ in 0..rng.next_below(10) {
                init_micros.insert(
                    ModuleId::from_index(rng.next_below(64)),
                    rng.next_u64() >> 20,
                );
            }
            let b = ProfileBatch {
                samples,
                init_micros,
            };
            assert_eq!(ProfileBatch::decode(b.encode()).unwrap(), b);
        }
    }
}
