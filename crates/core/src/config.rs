//! Configuration knobs with the paper's default values.

use slimstart_simcore::time::SimDuration;

/// Sampling-profiler configuration (paper §IV-A2, TC-1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplerConfig {
    /// Sampling period (the paper exposes an API to configure the rate).
    pub period: SimDuration,
    /// Cost of capturing one stack sample (signal handler + traceback walk).
    pub per_sample_cost: SimDuration,
    /// Cost of handing one batch to the asynchronous collector.
    pub flush_cost: SimDuration,
    /// Samples per transferred batch.
    pub batch_size: usize,
    /// Buffer memory per pending sample, bytes (for memory accounting).
    pub bytes_per_sample: u64,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            period: SimDuration::from_millis(5),
            per_sample_cost: SimDuration::from_micros(200),
            flush_cost: SimDuration::from_millis(2),
            batch_size: 512,
            bytes_per_sample: 160,
        }
    }
}

impl SamplerConfig {
    /// Returns a copy with a different sampling period — the overhead /
    /// accuracy knob swept by the ablation benches.
    pub fn with_period(mut self, period: SimDuration) -> Self {
        self.period = period;
        self
    }
}

/// Inefficiency-detector configuration (paper §IV-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectorConfig {
    /// Gate: only applications whose library-initialization time exceeds
    /// this share of end-to-end time are analyzed (paper: 10 %).
    pub gate_threshold: f64,
    /// Packages with utilization below this share of runtime samples are
    /// *rarely used* (paper: 2 %).
    pub rare_threshold: f64,
    /// Packages contributing less than this share of initialization time
    /// are ignored as noise.
    pub min_init_share: f64,
    /// Maximum package depth to descend when a parent is hot (library root
    /// = 1, sub-package = 2 — the paper's granularity). Deeper descent
    /// flags cold corners whose init may still define names the hot code
    /// references, so it trades safety margin for coverage.
    pub max_depth: usize,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            gate_threshold: 0.10,
            rare_threshold: 0.02,
            min_init_share: 0.005,
            max_depth: 2,
        }
    }
}

/// Adaptive-mechanism configuration (paper §IV-C, Fig. 10).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Aggregation window Δt (paper: 12 hours).
    pub window: SimDuration,
    /// Trigger threshold ε on `Σ|Δp_i(t)|` (paper: 0.002).
    pub epsilon: f64,
    /// Volume-aware thresholding: raise the effective ε above the
    /// estimator's sampling-noise floor for low-volume windows. The paper
    /// notes that "Δt and ε can be dynamically adjusted based on observed
    /// workload characteristics"; this is that adjustment. With `N`
    /// invocations over `k` handlers, the noise floor of `Σ|Δp_i|` under a
    /// *stable* workload scales as `sqrt(k / N)`; the effective threshold
    /// becomes `max(ε, noise_guard · sqrt(k / N))`.
    pub volume_aware: bool,
    /// Multiplier on the noise floor when `volume_aware` is set.
    pub noise_guard: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            window: SimDuration::from_hours(12),
            epsilon: 0.002,
            volume_aware: false,
            noise_guard: 4.0,
        }
    }
}

impl AdaptiveConfig {
    /// Returns a copy with volume-aware thresholding enabled.
    pub fn with_volume_awareness(mut self) -> Self {
        self.volume_aware = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let d = DetectorConfig::default();
        assert_eq!(d.gate_threshold, 0.10);
        assert_eq!(d.rare_threshold, 0.02);
        let a = AdaptiveConfig::default();
        assert_eq!(a.epsilon, 0.002);
        assert_eq!(a.window, SimDuration::from_hours(12));
    }

    #[test]
    fn with_period_overrides() {
        let s = SamplerConfig::default().with_period(SimDuration::from_millis(20));
        assert_eq!(s.period, SimDuration::from_millis(20));
        assert_eq!(s.batch_size, SamplerConfig::default().batch_size);
    }
}
