//! Typed identifiers for application-model entities.
//!
//! All entities live in arenas inside an [`Application`](crate::app::Application);
//! these newtypes keep indices from being mixed up ([C-NEWTYPE]).

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(u32);

        impl $name {
            /// Creates an identifier from a raw arena index.
            pub const fn from_index(index: usize) -> Self {
                $name(index as u32)
            }

            /// The raw arena index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a [`Module`](crate::module::Module) within an application.
    ModuleId,
    "m"
);
id_type!(
    /// Identifies a [`Function`](crate::function::Function) within an application.
    FunctionId,
    "f"
);
id_type!(
    /// Identifies a [`Library`](crate::library::Library) within an application.
    LibraryId,
    "lib"
);
id_type!(
    /// Identifies a [`Handler`](crate::app::Handler) (entry point) within an application.
    HandlerId,
    "h"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_index() {
        let id = ModuleId::from_index(42);
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(ModuleId::from_index(1).to_string(), "m1");
        assert_eq!(FunctionId::from_index(2).to_string(), "f2");
        assert_eq!(LibraryId::from_index(3).to_string(), "lib3");
        assert_eq!(HandlerId::from_index(4).to_string(), "h4");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ModuleId::from_index(1) < ModuleId::from_index(2));
    }
}
