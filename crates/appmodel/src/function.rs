//! Functions and their bodies: the call structure the profiler samples.
//!
//! A function body is a sequence of statements: virtual-time [`Work`],
//! [`Call`] sites (direct or indirect — indirect calls model dispatch through
//! tables/callbacks, which static analysis cannot resolve precisely), and
//! probabilistic [`Branch`]es, the mechanism behind *workload-dependent*
//! library usage (e.g. `xmlschema` only runs when the input contains an SBOM,
//! paper §VI-2).
//!
//! [`Work`]: StmtKind::Work
//! [`Call`]: StmtKind::Call
//! [`Branch`]: StmtKind::Branch

use serde::{Deserialize, Serialize};
use slimstart_simcore::time::SimDuration;

use crate::ids::{FunctionId, ModuleId};

/// Whether a call site is resolvable statically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CallKind {
    /// A syntactically visible call: static analysis resolves the target.
    Direct,
    /// A call through a dispatch table or callback: dynamic profiling sees
    /// the real target; static analysis must treat it conservatively.
    Indirect,
}

/// A call site inside a function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CallSite {
    /// The callee.
    pub target: FunctionId,
    /// Direct or indirect dispatch.
    pub kind: CallKind,
}

/// One statement in a function body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Stmt {
    /// Source line of the statement.
    pub line: u32,
    /// What the statement does.
    pub kind: StmtKind,
}

/// Statement payloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StmtKind {
    /// Consume virtual compute time.
    Work(SimDuration),
    /// Invoke another function.
    Call(CallSite),
    /// Access a module attribute (constant, class, table) without calling
    /// into it — Python's `lib.CONSTANT`. Touching a deferred module forces
    /// its load, and static analysis must treat the module as used.
    Touch(ModuleId),
    /// Execute `body` with the given probability per invocation.
    Branch {
        /// Probability in `[0, 1]` that the body executes.
        probability: f64,
        /// Statements guarded by the branch.
        body: Vec<Stmt>,
    },
}

impl StmtKind {
    /// Shorthand for a direct call.
    pub fn call(target: FunctionId) -> StmtKind {
        StmtKind::Call(CallSite {
            target,
            kind: CallKind::Direct,
        })
    }

    /// Shorthand for an indirect call.
    pub fn indirect_call(target: FunctionId) -> StmtKind {
        StmtKind::Call(CallSite {
            target,
            kind: CallKind::Indirect,
        })
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    name: String,
    module: ModuleId,
    line: u32,
    body: Vec<Stmt>,
}

impl Function {
    /// Creates a function named `name` defined in `module` at source `line`.
    pub fn new(name: impl Into<String>, module: ModuleId, line: u32, body: Vec<Stmt>) -> Self {
        Function {
            name: name.into(),
            module,
            line,
            body,
        }
    }

    /// The function's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The module the function is defined in.
    pub fn module(&self) -> ModuleId {
        self.module
    }

    /// Source line of the definition.
    pub fn line(&self) -> u32 {
        self.line
    }

    /// The statement sequence.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }

    /// All call sites in the body, flattening branches (a branch's calls are
    /// statically *possible*, which is how a static analyzer must treat them).
    pub fn call_sites(&self) -> Vec<&CallSite> {
        fn walk<'a>(stmts: &'a [Stmt], out: &mut Vec<&'a CallSite>) {
            for stmt in stmts {
                match &stmt.kind {
                    StmtKind::Call(site) => out.push(site),
                    StmtKind::Branch { body, .. } => walk(body, out),
                    StmtKind::Work(_) | StmtKind::Touch(_) => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out
    }

    /// All modules this function's body touches via attribute access,
    /// flattening branches (statically *possible* touches).
    pub fn touched_modules(&self) -> Vec<ModuleId> {
        fn walk(stmts: &[Stmt], out: &mut Vec<ModuleId>) {
            for stmt in stmts {
                match &stmt.kind {
                    StmtKind::Touch(m) => out.push(*m),
                    StmtKind::Branch { body, .. } => walk(body, out),
                    StmtKind::Work(_) | StmtKind::Call(_) => {}
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out
    }

    /// Total `Work` time in the body assuming every branch executes
    /// (a static upper bound, excluding callee work).
    pub fn max_local_work(&self) -> SimDuration {
        fn walk(stmts: &[Stmt]) -> SimDuration {
            stmts
                .iter()
                .map(|s| match &s.kind {
                    StmtKind::Work(d) => *d,
                    StmtKind::Branch { body, .. } => walk(body),
                    StmtKind::Call(_) | StmtKind::Touch(_) => SimDuration::ZERO,
                })
                .sum()
        }
        walk(&self.body)
    }

    /// All branch probabilities in the body (for validation).
    pub(crate) fn branch_probabilities(&self) -> Vec<f64> {
        fn walk(stmts: &[Stmt], out: &mut Vec<f64>) {
            for stmt in stmts {
                if let StmtKind::Branch { probability, body } = &stmt.kind {
                    out.push(*probability);
                    walk(body, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.body, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fid(i: usize) -> FunctionId {
        FunctionId::from_index(i)
    }

    fn sample_function() -> Function {
        Function::new(
            "f",
            ModuleId::from_index(0),
            1,
            vec![
                Stmt {
                    line: 2,
                    kind: StmtKind::Work(SimDuration::from_millis(1)),
                },
                Stmt {
                    line: 3,
                    kind: StmtKind::call(fid(1)),
                },
                Stmt {
                    line: 4,
                    kind: StmtKind::Branch {
                        probability: 0.1,
                        body: vec![
                            Stmt {
                                line: 5,
                                kind: StmtKind::indirect_call(fid(2)),
                            },
                            Stmt {
                                line: 6,
                                kind: StmtKind::Work(SimDuration::from_millis(2)),
                            },
                        ],
                    },
                },
            ],
        )
    }

    #[test]
    fn call_sites_flatten_branches() {
        let f = sample_function();
        let sites = f.call_sites();
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0].target, fid(1));
        assert_eq!(sites[0].kind, CallKind::Direct);
        assert_eq!(sites[1].target, fid(2));
        assert_eq!(sites[1].kind, CallKind::Indirect);
    }

    #[test]
    fn max_local_work_includes_branches() {
        let f = sample_function();
        assert_eq!(f.max_local_work(), SimDuration::from_millis(3));
    }

    #[test]
    fn branch_probabilities_collected_recursively() {
        let nested = Function::new(
            "g",
            ModuleId::from_index(0),
            1,
            vec![Stmt {
                line: 2,
                kind: StmtKind::Branch {
                    probability: 0.5,
                    body: vec![Stmt {
                        line: 3,
                        kind: StmtKind::Branch {
                            probability: 0.25,
                            body: vec![],
                        },
                    }],
                },
            }],
        );
        assert_eq!(nested.branch_probabilities(), vec![0.5, 0.25]);
    }

    #[test]
    fn touched_modules_collected_through_branches() {
        let f = Function::new(
            "t",
            ModuleId::from_index(0),
            1,
            vec![
                Stmt {
                    line: 2,
                    kind: StmtKind::Touch(ModuleId::from_index(5)),
                },
                Stmt {
                    line: 3,
                    kind: StmtKind::Branch {
                        probability: 0.5,
                        body: vec![Stmt {
                            line: 4,
                            kind: StmtKind::Touch(ModuleId::from_index(6)),
                        }],
                    },
                },
            ],
        );
        assert_eq!(
            f.touched_modules(),
            vec![ModuleId::from_index(5), ModuleId::from_index(6)]
        );
        assert!(f.call_sites().is_empty());
        assert_eq!(f.max_local_work(), SimDuration::ZERO);
    }

    #[test]
    fn accessors() {
        let f = sample_function();
        assert_eq!(f.name(), "f");
        assert_eq!(f.module(), ModuleId::from_index(0));
        assert_eq!(f.line(), 1);
        assert_eq!(f.body().len(), 3);
    }
}
