//! Modules: the unit of loading, initialization cost and memory footprint.
//!
//! A module mirrors a Python module: importing it for the first time executes
//! its top level, which costs [`init_cost`](Module::init_cost) virtual time
//! and pins [`mem_kb`](Module::mem_kb) of memory for the life of the process.
//! Modules flagged [`side_effectful`](Module::side_effectful) perform
//! observable work at import time (registering plugins, opening files) and
//! must therefore never be converted to deferred loading by the optimizer.

use serde::{Deserialize, Serialize};
use slimstart_simcore::time::SimDuration;

use crate::ids::LibraryId;

/// A loadable module.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Module {
    name: String,
    file: String,
    init_cost: SimDuration,
    mem_kb: u64,
    side_effectful: bool,
    library: Option<LibraryId>,
    stripped: bool,
}

impl Module {
    /// Creates a module with the given dotted `name`.
    ///
    /// The source file path is derived from the name the way CPython lays out
    /// packages: `nltk.sem` becomes `nltk/sem/__init__.py` when the module
    /// has children, but since arity is not known up front we use the leaf
    /// form `nltk/sem.py` for plain modules and let
    /// [`Module::mark_package`] switch to the `__init__.py` form.
    pub(crate) fn new(
        name: impl Into<String>,
        init_cost: SimDuration,
        mem_kb: u64,
        side_effectful: bool,
        library: Option<LibraryId>,
    ) -> Self {
        let name = name.into();
        let file = format!("{}.py", name.replace('.', "/"));
        Module {
            name,
            file,
            init_cost,
            mem_kb,
            side_effectful,
            library,
            stripped: false,
        }
    }

    /// The dotted module path, e.g. `nltk.sem.logic`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The modeled source file path, e.g. `nltk/sem/logic.py`.
    pub fn file(&self) -> &str {
        &self.file
    }

    /// Virtual time spent executing this module's top level on first load
    /// (excluding the cost of modules it imports).
    pub fn init_cost(&self) -> SimDuration {
        self.init_cost
    }

    /// Resident memory pinned once the module is loaded, in KiB.
    pub fn mem_kb(&self) -> u64 {
        self.mem_kb
    }

    /// Whether the module's top level performs observable side effects,
    /// making deferral unsafe.
    pub fn side_effectful(&self) -> bool {
        self.side_effectful
    }

    /// The library this module belongs to, or `None` for application code.
    pub fn library(&self) -> Option<LibraryId> {
        self.library
    }

    /// Whether a static optimizer (FaaSLight) removed this module from the
    /// deployment package.
    pub fn stripped(&self) -> bool {
        self.stripped
    }

    /// Marks the module as removed from the package. Calling into a stripped
    /// module at runtime is a fault (see `slimstart-pyrt`).
    pub fn set_stripped(&mut self, stripped: bool) {
        self.stripped = stripped;
    }

    /// Switches the modeled file path to the package form
    /// (`pkg/__init__.py`). Idempotent.
    pub(crate) fn mark_package(&mut self) {
        let dir = self.name.replace('.', "/");
        self.file = format!("{dir}/__init__.py");
    }

    /// Whether this module is rendered as a package `__init__.py`.
    pub fn is_package(&self) -> bool {
        self.file.ends_with("/__init__.py")
    }

    /// The dotted path of the parent package, if any
    /// (`nltk.sem.logic` → `nltk.sem`).
    pub fn parent_package(&self) -> Option<&str> {
        self.name.rsplit_once('.').map(|(parent, _)| parent)
    }

    /// The depth of the module in the package hierarchy
    /// (`nltk` → 1, `nltk.sem.logic` → 3).
    pub fn depth(&self) -> usize {
        self.name.split('.').count()
    }

    /// Whether this module lies inside the dotted package `prefix`
    /// (inclusive: a package contains itself).
    ///
    /// # Example
    ///
    /// prefix `nltk.sem` contains `nltk.sem` and `nltk.sem.logic` but not
    /// `nltk.semantics`.
    pub fn in_package(&self, prefix: &str) -> bool {
        self.name == prefix
            || (self.name.len() > prefix.len()
                && self.name.starts_with(prefix)
                && self.name.as_bytes()[prefix.len()] == b'.')
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module(name: &str) -> Module {
        Module::new(name, SimDuration::from_millis(1), 10, false, None)
    }

    #[test]
    fn file_path_derivation() {
        assert_eq!(module("handler").file(), "handler.py");
        assert_eq!(module("nltk.sem.logic").file(), "nltk/sem/logic.py");
    }

    #[test]
    fn mark_package_switches_to_init_form() {
        let mut m = module("nltk.sem");
        assert!(!m.is_package());
        m.mark_package();
        assert_eq!(m.file(), "nltk/sem/__init__.py");
        assert!(m.is_package());
        m.mark_package();
        assert_eq!(m.file(), "nltk/sem/__init__.py");
    }

    #[test]
    fn parent_package_and_depth() {
        assert_eq!(module("nltk").parent_package(), None);
        assert_eq!(module("nltk.sem.logic").parent_package(), Some("nltk.sem"));
        assert_eq!(module("nltk").depth(), 1);
        assert_eq!(module("nltk.sem.logic").depth(), 3);
    }

    #[test]
    fn in_package_requires_dotted_boundary() {
        let m = module("nltk.semantics");
        assert!(!m.in_package("nltk.sem"));
        assert!(m.in_package("nltk"));
        assert!(m.in_package("nltk.semantics"));
        assert!(module("nltk.sem.logic").in_package("nltk.sem"));
    }

    #[test]
    fn stripped_flag_round_trips() {
        let mut m = module("x");
        assert!(!m.stripped());
        m.set_stripped(true);
        assert!(m.stripped());
    }
}
