//! # slimstart-appmodel
//!
//! The serverless *application model*: a faithful structural simulation of a
//! Python serverless function package, which is the substrate the paper's
//! profile-guided optimization operates on.
//!
//! An [`Application`] bundles:
//!
//! * [`Module`]s — Python-module analogues with an
//!   initialization cost (top-level execution time), a memory footprint and a
//!   side-effect flag (side-effectful modules are unsafe to lazy-load);
//! * [`Library`]s — packages grouping modules under dotted
//!   paths like `nltk.sem.logic`;
//! * import declarations ([`ImportDecl`]) — either
//!   *global* (loaded eagerly when the importer loads, the cold-start cost
//!   the paper attacks) or *deferred* (loaded at first use, the optimized
//!   form);
//! * [`Function`]s — call-tree bodies with virtual-time
//!   work, direct/indirect call sites and probabilistic branches (the source
//!   of workload-dependent library usage);
//! * handlers — the entry points invoked by the platform.
//!
//! The [`synth`] module builds synthetic applications from compact
//! blueprints, and [`catalog`] instantiates the 22 applications evaluated in
//! the paper with their published structural parameters (Table II).
//!
//! # Example
//!
//! ```
//! use slimstart_appmodel::app::AppBuilder;
//! use slimstart_appmodel::function::{Stmt, StmtKind};
//! use slimstart_appmodel::imports::ImportMode;
//! use slimstart_simcore::time::SimDuration;
//!
//! let mut b = AppBuilder::new("demo");
//! let lib = b.add_library("numpy");
//! let app_mod = b.add_app_module("handler", SimDuration::from_micros(100), 64);
//! let np = b.add_library_module("numpy", SimDuration::from_millis(200), 4_096, false, lib);
//! b.add_import(app_mod, np, 2, ImportMode::Global)?;
//! let work = b.add_function(
//!     "fft",
//!     np,
//!     10,
//!     vec![Stmt { line: 11, kind: StmtKind::Work(SimDuration::from_millis(5)) }],
//! );
//! let main = b.add_function(
//!     "handler",
//!     app_mod,
//!     4,
//!     vec![Stmt { line: 5, kind: StmtKind::call(work) }],
//! );
//! b.add_handler("handler", main);
//! let app = b.finish()?;
//! assert_eq!(app.handlers().len(), 1);
//! # Ok::<(), slimstart_appmodel::AppModelError>(())
//! ```

pub mod app;
pub mod catalog;
pub mod dot;
pub mod function;
pub mod ids;
pub mod imports;
pub mod library;
pub mod module;
pub mod names;
pub mod source;
pub mod synth;

mod error;

pub use app::{AppBuilder, Application, Handler};
pub use error::AppModelError;
pub use function::{CallKind, CallSite, Function, Stmt, StmtKind};
pub use ids::{FunctionId, HandlerId, LibraryId, ModuleId};
pub use imports::{ImportDecl, ImportMode};
pub use library::Library;
pub use module::Module;
pub use names::NameTable;
