//! The [`Application`]: modules, libraries, imports, functions and handlers.
//!
//! An application is the unit the platform deploys and SlimStart optimizes.
//! [`AppBuilder`] constructs one incrementally and validates global
//! invariants (acyclic global-import graph, in-range ids, probabilities in
//! `[0, 1]`, at least one handler).

use std::collections::HashSet;

use serde::{Deserialize, Serialize};
use slimstart_simcore::intern::Interner;
use slimstart_simcore::time::SimDuration;

use crate::error::AppModelError;
use crate::function::Function;
use crate::ids::{FunctionId, HandlerId, LibraryId, ModuleId};
use crate::imports::{ImportDecl, ImportMode};
use crate::library::{Library, PackageTree};
use crate::module::Module;

/// An entry point of the application.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Handler {
    name: String,
    function: FunctionId,
}

impl Handler {
    /// The handler's externally visible name (route / trigger).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The function invoked for this entry point.
    pub fn function(&self) -> FunctionId {
        self.function
    }
}

/// A complete serverless application model.
///
/// Construct with [`AppBuilder`]; mutate only through the provided methods
/// (the optimizers flip import modes and strip modules).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Application {
    name: String,
    modules: Vec<Module>,
    imports: Vec<Vec<ImportDecl>>,
    functions: Vec<Function>,
    libraries: Vec<Library>,
    handlers: Vec<Handler>,
}

impl Application {
    /// The application's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All modules, indexable by [`ModuleId::index`].
    pub fn modules(&self) -> &[Module] {
        &self.modules
    }

    /// Looks up a module.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids from this app are always valid).
    pub fn module(&self, id: ModuleId) -> &Module {
        &self.modules[id.index()]
    }

    /// Mutable module access (used by the static optimizer to strip modules).
    pub fn module_mut(&mut self, id: ModuleId) -> &mut Module {
        &mut self.modules[id.index()]
    }

    /// The import declarations of `module`, in source order.
    pub fn imports_of(&self, module: ModuleId) -> &[ImportDecl] {
        &self.imports[module.index()]
    }

    /// All functions, indexable by [`FunctionId::index`].
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Looks up a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FunctionId) -> &Function {
        &self.functions[id.index()]
    }

    /// All libraries.
    pub fn libraries(&self) -> &[Library] {
        &self.libraries
    }

    /// Looks up a library.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn library(&self, id: LibraryId) -> &Library {
        &self.libraries[id.index()]
    }

    /// The entry points.
    pub fn handlers(&self) -> &[Handler] {
        &self.handlers
    }

    /// Looks up a handler.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn handler(&self, id: HandlerId) -> &Handler {
        &self.handlers[id.index()]
    }

    /// Finds a module by dotted name.
    pub fn module_by_name(&self, name: &str) -> Option<ModuleId> {
        self.modules
            .iter()
            .position(|m| m.name() == name)
            .map(ModuleId::from_index)
    }

    /// Finds a handler by name.
    pub fn handler_by_name(&self, name: &str) -> Option<HandlerId> {
        self.handlers
            .iter()
            .position(|h| h.name() == name)
            .map(HandlerId::from_index)
    }

    /// The module containing the handler's function — what the platform
    /// imports first on a cold start.
    pub fn handler_module(&self, id: HandlerId) -> ModuleId {
        self.function(self.handler(id).function()).module()
    }

    /// Flips the mode of the import of `target` inside `importer`.
    ///
    /// Returns `true` if a matching declaration existed.
    pub fn set_import_mode(
        &mut self,
        importer: ModuleId,
        target: ModuleId,
        mode: ImportMode,
    ) -> bool {
        for decl in &mut self.imports[importer.index()] {
            if decl.target == target {
                decl.mode = mode;
                return true;
            }
        }
        false
    }

    /// All `(importer, decl)` pairs in the application.
    pub fn all_imports(&self) -> impl Iterator<Item = (ModuleId, &ImportDecl)> {
        self.imports
            .iter()
            .enumerate()
            .flat_map(|(i, decls)| decls.iter().map(move |d| (ModuleId::from_index(i), d)))
    }

    /// The set of modules loaded eagerly when `root` loads: the transitive
    /// closure over *global* imports, skipping stripped modules. Order is the
    /// depth-first load order the runtime will use.
    pub fn eager_load_set(&self, root: ModuleId) -> Vec<ModuleId> {
        let mut order = Vec::new();
        let mut seen = vec![false; self.modules.len()];
        self.eager_visit(root, &mut seen, &mut order);
        order
    }

    fn eager_visit(&self, m: ModuleId, seen: &mut [bool], order: &mut Vec<ModuleId>) {
        if seen[m.index()] || self.module(m).stripped() {
            return;
        }
        seen[m.index()] = true;
        for decl in self.imports_of(m) {
            if decl.mode.is_global() {
                self.eager_visit(decl.target, seen, order);
            }
        }
        order.push(m);
    }

    /// Total initialization cost of an eager cold start from `root`
    /// (Eq. 1's `T_total_initialization` for that entry).
    pub fn eager_init_cost(&self, root: ModuleId) -> SimDuration {
        self.eager_load_set(root)
            .iter()
            .map(|m| self.module(*m).init_cost())
            .sum()
    }

    /// Total memory pinned by an eager cold start from `root`, in KiB.
    pub fn eager_mem_kb(&self, root: ModuleId) -> u64 {
        self.eager_load_set(root)
            .iter()
            .map(|m| self.module(*m).mem_kb())
            .sum()
    }

    /// The static call graph: adjacency from each function to the targets of
    /// all its call sites (branches flattened — statically *possible* calls).
    pub fn static_call_graph(&self) -> Vec<Vec<FunctionId>> {
        self.functions
            .iter()
            .map(|f| f.call_sites().iter().map(|s| s.target).collect())
            .collect()
    }

    /// The functions defined in each module.
    pub fn functions_by_module(&self) -> Vec<Vec<FunctionId>> {
        let mut by_module = vec![Vec::new(); self.modules.len()];
        for (i, f) in self.functions.iter().enumerate() {
            by_module[f.module().index()].push(FunctionId::from_index(i));
        }
        by_module
    }

    /// Builds the package tree over all modules (Fig. 6 hierarchy).
    pub fn package_tree(&self) -> PackageTree {
        PackageTree::build(
            self.modules
                .iter()
                .enumerate()
                .map(|(i, m)| (ModuleId::from_index(i), m)),
        )
    }

    /// Module ids belonging to `library`.
    pub fn modules_of_library(&self, library: LibraryId) -> &[ModuleId] {
        self.library(library).modules()
    }

    /// Average module depth (the paper's "Avg. Depth" column), over library
    /// modules only.
    pub fn avg_module_depth(&self) -> f64 {
        let lib_modules: Vec<&Module> = self
            .modules
            .iter()
            .filter(|m| m.library().is_some())
            .collect();
        if lib_modules.is_empty() {
            return 0.0;
        }
        lib_modules.iter().map(|m| m.depth() as f64).sum::<f64>() / lib_modules.len() as f64
    }

    /// Validates all cross-entity invariants. [`AppBuilder::finish`] calls
    /// this; re-validate after external mutation if needed.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant (unknown ids, duplicate names or
    /// imports, self-imports, global-import cycles, bad probabilities, no
    /// handlers).
    pub fn validate(&self) -> Result<(), AppModelError> {
        if self.modules.is_empty() {
            return Err(AppModelError::Empty);
        }
        if self.handlers.is_empty() {
            return Err(AppModelError::NoHandlers);
        }
        let mut names = HashSet::new();
        for m in &self.modules {
            if !names.insert(m.name()) {
                return Err(AppModelError::DuplicateModuleName(m.name().to_string()));
            }
        }
        for (i, decls) in self.imports.iter().enumerate() {
            let importer = ModuleId::from_index(i);
            let mut targets = HashSet::new();
            for d in decls {
                if d.target.index() >= self.modules.len() {
                    return Err(AppModelError::UnknownModule(d.target));
                }
                if d.target == importer {
                    return Err(AppModelError::SelfImport(importer));
                }
                if !targets.insert(d.target) {
                    return Err(AppModelError::DuplicateImport {
                        importer,
                        target: d.target,
                    });
                }
            }
        }
        for f in &self.functions {
            if f.module().index() >= self.modules.len() {
                return Err(AppModelError::UnknownModule(f.module()));
            }
            for site in f.call_sites() {
                if site.target.index() >= self.functions.len() {
                    return Err(AppModelError::UnknownFunction(site.target));
                }
            }
            for touched in f.touched_modules() {
                if touched.index() >= self.modules.len() {
                    return Err(AppModelError::UnknownModule(touched));
                }
            }
            for p in f.branch_probabilities() {
                if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                    return Err(AppModelError::InvalidProbability(p));
                }
            }
        }
        for h in &self.handlers {
            if h.function().index() >= self.functions.len() {
                return Err(AppModelError::UnknownFunction(h.function()));
            }
        }
        self.check_import_acyclicity()?;
        Ok(())
    }

    /// Detects cycles in the *global* import graph (deferred imports may
    /// legally form cycles, as in Python).
    fn check_import_acyclicity(&self) -> Result<(), AppModelError> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Gray,
            Black,
        }
        let mut marks = vec![Mark::White; self.modules.len()];
        // Iterative DFS with an explicit stack to survive deep module trees.
        for start in 0..self.modules.len() {
            if marks[start] != Mark::White {
                continue;
            }
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            marks[start] = Mark::Gray;
            while let Some(&mut (node, ref mut edge)) = stack.last_mut() {
                let decls = &self.imports[node];
                let mut advanced = false;
                while *edge < decls.len() {
                    let d = decls[*edge];
                    *edge += 1;
                    if !d.mode.is_global() {
                        continue;
                    }
                    let t = d.target.index();
                    match marks[t] {
                        Mark::Gray => {
                            return Err(AppModelError::ImportCycle(d.target));
                        }
                        Mark::White => {
                            marks[t] = Mark::Gray;
                            stack.push((t, 0));
                            advanced = true;
                            break;
                        }
                        Mark::Black => {}
                    }
                }
                if !advanced && stack.last().map(|&(n, _)| n) == Some(node) {
                    marks[node] = Mark::Black;
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`Application`].
///
/// See the crate-level example for a complete construction.
#[derive(Debug, Clone)]
pub struct AppBuilder {
    app: Application,
    /// Dotted module names interned once; `module_of_symbol[sym]` maps the
    /// dense symbol id back to the module. Avoids one owned-`String` map
    /// entry per module and makes `module_by_name` a fixed-width hash probe.
    module_names: Interner,
    module_of_symbol: Vec<ModuleId>,
}

impl AppBuilder {
    /// Starts building an application named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        AppBuilder {
            app: Application {
                name: name.into(),
                modules: Vec::new(),
                imports: Vec::new(),
                functions: Vec::new(),
                libraries: Vec::new(),
                handlers: Vec::new(),
            },
            module_names: Interner::new(),
            module_of_symbol: Vec::new(),
        }
    }

    /// Registers a library (top-level package) named `name`.
    pub fn add_library(&mut self, name: impl Into<String>) -> LibraryId {
        let id = LibraryId::from_index(self.app.libraries.len());
        self.app.libraries.push(Library::new(name));
        id
    }

    /// Adds an application-code module (not part of any library).
    pub fn add_app_module(
        &mut self,
        name: impl Into<String>,
        init_cost: SimDuration,
        mem_kb: u64,
    ) -> ModuleId {
        self.push_module(Module::new(name, init_cost, mem_kb, false, None))
    }

    /// Adds a module belonging to `library`.
    pub fn add_library_module(
        &mut self,
        name: impl Into<String>,
        init_cost: SimDuration,
        mem_kb: u64,
        side_effectful: bool,
        library: LibraryId,
    ) -> ModuleId {
        let id = self.push_module(Module::new(
            name,
            init_cost,
            mem_kb,
            side_effectful,
            Some(library),
        ));
        self.app.libraries[library.index()].push_module(id);
        id
    }

    fn push_module(&mut self, module: Module) -> ModuleId {
        let id = ModuleId::from_index(self.app.modules.len());
        let sym = self.module_names.intern(module.name());
        if sym.index() == self.module_of_symbol.len() {
            self.module_of_symbol.push(id);
        } else {
            // Duplicate name: keep latest, matching the old HashMap insert
            // semantics. finish() rejects duplicates during validation.
            self.module_of_symbol[sym.index()] = id;
        }
        // A module whose name is a strict prefix of an existing one (or vice
        // versa) is a package; fix file forms lazily in finish().
        self.app.modules.push(module);
        self.app.imports.push(Vec::new());
        id
    }

    /// Looks up a previously added module by dotted name.
    pub fn module_by_name(&self, name: &str) -> Option<ModuleId> {
        self.module_names
            .get(name)
            .map(|sym| self.module_of_symbol[sym.index()])
    }

    /// Declares that `importer` imports `target` at source `line`.
    ///
    /// # Errors
    ///
    /// Returns an error for self-imports, unknown ids or duplicate targets.
    /// (Cycle detection runs in [`AppBuilder::finish`].)
    pub fn add_import(
        &mut self,
        importer: ModuleId,
        target: ModuleId,
        line: u32,
        mode: ImportMode,
    ) -> Result<(), AppModelError> {
        if importer.index() >= self.app.modules.len() {
            return Err(AppModelError::UnknownModule(importer));
        }
        if target.index() >= self.app.modules.len() {
            return Err(AppModelError::UnknownModule(target));
        }
        if importer == target {
            return Err(AppModelError::SelfImport(importer));
        }
        let decls = &mut self.app.imports[importer.index()];
        if decls.iter().any(|d| d.target == target) {
            return Err(AppModelError::DuplicateImport { importer, target });
        }
        decls.push(ImportDecl { target, mode, line });
        Ok(())
    }

    /// Adds a function and returns its id.
    pub fn add_function(
        &mut self,
        name: impl Into<String>,
        module: ModuleId,
        line: u32,
        body: Vec<crate::function::Stmt>,
    ) -> FunctionId {
        let id = FunctionId::from_index(self.app.functions.len());
        self.app
            .functions
            .push(Function::new(name, module, line, body));
        id
    }

    /// Registers `function` as the entry point named `name`.
    pub fn add_handler(&mut self, name: impl Into<String>, function: FunctionId) -> HandlerId {
        let id = HandlerId::from_index(self.app.handlers.len());
        self.app.handlers.push(Handler {
            name: name.into(),
            function,
        });
        id
    }

    /// Finalizes and validates the application.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant; see [`Application::validate`].
    pub fn finish(mut self) -> Result<Application, AppModelError> {
        // Mark modules that have children as packages so their modeled file
        // becomes `pkg/__init__.py`.
        let names: Vec<String> = self
            .app
            .modules
            .iter()
            .map(|m| m.name().to_string())
            .collect();
        let parents: HashSet<&str> = names
            .iter()
            .filter_map(|n| n.rsplit_once('.').map(|(p, _)| p))
            .collect();
        for m in &mut self.app.modules {
            if parents.contains(m.name()) {
                m.mark_package();
            }
        }
        self.app.validate()?;
        Ok(self.app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{Stmt, StmtKind};

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    /// handler.py imports lib root; lib root imports two submodules.
    fn small_app() -> Application {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("ig");
        let h = b.add_app_module("handler", ms(1), 10);
        let root = b.add_library_module("ig", ms(2), 20, false, lib);
        let a = b.add_library_module("ig.a", ms(3), 30, false, lib);
        let d = b.add_library_module("ig.draw", ms(40), 400, false, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        b.add_import(root, a, 2, ImportMode::Global).unwrap();
        b.add_import(root, d, 3, ImportMode::Global).unwrap();
        let fa = b.add_function(
            "bfs",
            a,
            5,
            vec![Stmt {
                line: 6,
                kind: StmtKind::Work(ms(1)),
            }],
        );
        let fh = b.add_function(
            "main",
            h,
            4,
            vec![Stmt {
                line: 5,
                kind: StmtKind::call(fa),
            }],
        );
        b.add_handler("main", fh);
        b.finish().unwrap()
    }

    #[test]
    fn eager_load_set_is_postorder_transitive() {
        let app = small_app();
        let h = app.module_by_name("handler").unwrap();
        let order = app.eager_load_set(h);
        let names: Vec<&str> = order.iter().map(|m| app.module(*m).name()).collect();
        // Children load before their importer, handler last.
        assert_eq!(names, vec!["ig.a", "ig.draw", "ig", "handler"]);
    }

    #[test]
    fn eager_costs_sum() {
        let app = small_app();
        let h = app.module_by_name("handler").unwrap();
        assert_eq!(app.eager_init_cost(h), ms(46));
        assert_eq!(app.eager_mem_kb(h), 460);
    }

    #[test]
    fn deferred_imports_are_excluded_from_eager_set() {
        let mut app = small_app();
        let root = app.module_by_name("ig").unwrap();
        let draw = app.module_by_name("ig.draw").unwrap();
        assert!(app.set_import_mode(root, draw, ImportMode::Deferred));
        let h = app.module_by_name("handler").unwrap();
        let names: Vec<&str> = app
            .eager_load_set(h)
            .iter()
            .map(|m| app.module(*m).name())
            .collect();
        assert!(!names.contains(&"ig.draw"));
        assert_eq!(app.eager_init_cost(h), ms(6));
    }

    #[test]
    fn stripped_modules_are_excluded() {
        let mut app = small_app();
        let draw = app.module_by_name("ig.draw").unwrap();
        app.module_mut(draw).set_stripped(true);
        let h = app.module_by_name("handler").unwrap();
        assert_eq!(app.eager_init_cost(h), ms(6));
    }

    #[test]
    fn set_import_mode_returns_false_for_missing_edge() {
        let mut app = small_app();
        let h = app.module_by_name("handler").unwrap();
        let a = app.module_by_name("ig.a").unwrap();
        assert!(!app.set_import_mode(h, a, ImportMode::Deferred));
    }

    #[test]
    fn package_file_forms_fixed_in_finish() {
        let app = small_app();
        let root = app.module_by_name("ig").unwrap();
        assert_eq!(app.module(root).file(), "ig/__init__.py");
        let leaf = app.module_by_name("ig.a").unwrap();
        assert_eq!(app.module(leaf).file(), "ig/a.py");
    }

    #[test]
    fn builder_rejects_duplicate_import() {
        let mut b = AppBuilder::new("t");
        let m1 = b.add_app_module("a", ms(1), 1);
        let m2 = b.add_app_module("b", ms(1), 1);
        b.add_import(m1, m2, 2, ImportMode::Global).unwrap();
        let err = b.add_import(m1, m2, 3, ImportMode::Global).unwrap_err();
        assert!(matches!(err, AppModelError::DuplicateImport { .. }));
    }

    #[test]
    fn builder_rejects_self_import() {
        let mut b = AppBuilder::new("t");
        let m = b.add_app_module("a", ms(1), 1);
        assert_eq!(
            b.add_import(m, m, 2, ImportMode::Global),
            Err(AppModelError::SelfImport(m))
        );
    }

    #[test]
    fn finish_detects_import_cycle() {
        let mut b = AppBuilder::new("t");
        let m1 = b.add_app_module("a", ms(1), 1);
        let m2 = b.add_app_module("b", ms(1), 1);
        b.add_import(m1, m2, 2, ImportMode::Global).unwrap();
        b.add_import(m2, m1, 2, ImportMode::Global).unwrap();
        let f = b.add_function("f", m1, 3, vec![]);
        b.add_handler("h", f);
        assert!(matches!(b.finish(), Err(AppModelError::ImportCycle(_))));
    }

    #[test]
    fn deferred_cycles_are_allowed() {
        let mut b = AppBuilder::new("t");
        let m1 = b.add_app_module("a", ms(1), 1);
        let m2 = b.add_app_module("b", ms(1), 1);
        b.add_import(m1, m2, 2, ImportMode::Global).unwrap();
        b.add_import(m2, m1, 2, ImportMode::Deferred).unwrap();
        let f = b.add_function("f", m1, 3, vec![]);
        b.add_handler("h", f);
        assert!(b.finish().is_ok());
    }

    #[test]
    fn finish_requires_handlers() {
        let mut b = AppBuilder::new("t");
        b.add_app_module("a", ms(1), 1);
        assert_eq!(b.finish().unwrap_err(), AppModelError::NoHandlers);
    }

    #[test]
    fn empty_app_is_rejected() {
        let b = AppBuilder::new("t");
        assert_eq!(b.finish().unwrap_err(), AppModelError::Empty);
    }

    #[test]
    fn validate_rejects_bad_probability() {
        let mut b = AppBuilder::new("t");
        let m = b.add_app_module("a", ms(1), 1);
        let f = b.add_function(
            "f",
            m,
            1,
            vec![Stmt {
                line: 2,
                kind: StmtKind::Branch {
                    probability: 1.5,
                    body: vec![],
                },
            }],
        );
        b.add_handler("h", f);
        assert!(matches!(
            b.finish(),
            Err(AppModelError::InvalidProbability(_))
        ));
    }

    #[test]
    fn lookup_helpers() {
        let app = small_app();
        assert!(app.module_by_name("nope").is_none());
        let h = app.handler_by_name("main").unwrap();
        assert_eq!(app.handler(h).name(), "main");
        assert_eq!(app.module(app.handler_module(h)).name(), "handler");
        assert_eq!(app.libraries().len(), 1);
        assert_eq!(app.modules_of_library(LibraryId::from_index(0)).len(), 3);
    }

    #[test]
    fn static_call_graph_shape() {
        let app = small_app();
        let cg = app.static_call_graph();
        // main calls bfs; bfs calls nothing.
        let main = app.handler(HandlerId::from_index(0)).function();
        assert_eq!(cg[main.index()].len(), 1);
        assert!(cg[cg[main.index()][0].index()].is_empty());
    }

    #[test]
    fn functions_by_module_partitions() {
        let app = small_app();
        let by_module = app.functions_by_module();
        let total: usize = by_module.iter().map(|v| v.len()).sum();
        assert_eq!(total, app.functions().len());
    }

    #[test]
    fn avg_module_depth_counts_library_modules_only() {
        let app = small_app();
        // Library modules: ig (1), ig.a (2), ig.draw (2) → 5/3.
        assert!((app.avg_module_depth() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_imports_iterates_every_edge() {
        let app = small_app();
        assert_eq!(app.all_imports().count(), 3);
    }
}
