//! Synthetic application construction from compact blueprints.
//!
//! The paper evaluates on real Python applications whose *structural*
//! parameters (library/module counts, average import depth, per-subpackage
//! initialization shares) are published in Table II. This module generates
//! applications with those parameters: package trees with controlled module
//! counts and depth, parent-`__init__`-imports-children edges (the igraph
//! pattern from Table I), API functions with call chains for realistic
//! calling contexts, and handlers whose library usage is controlled per
//! entry point and per branch probability — the raw material of
//! *workload-dependent* library usage.

use std::collections::HashMap;
use std::fmt;

use slimstart_simcore::rng::SimRng;
use slimstart_simcore::time::SimDuration;

use crate::app::{AppBuilder, Application};
use crate::error::AppModelError;
use crate::function::{Stmt, StmtKind};
use crate::ids::{FunctionId, LibraryId, ModuleId};
use crate::imports::ImportMode;

/// Blueprint for one library.
#[derive(Debug, Clone)]
pub struct LibraryBlueprint {
    /// Top-level package name.
    pub name: String,
    /// Total modules in the library (including the root `__init__`).
    pub modules: usize,
    /// Target average module depth (dotted-path segments).
    pub avg_depth: f64,
    /// Total initialization cost across all modules.
    pub init_total: SimDuration,
    /// Total resident memory across all modules, in KiB.
    pub mem_total_kb: u64,
    /// Subpackages; their `module_share`/`init_share`/`mem_share` must each
    /// sum to 1 (± 1 %) across the vector.
    pub subpackages: Vec<SubpackageBlueprint>,
}

/// Blueprint for one subpackage of a library.
#[derive(Debug, Clone)]
pub struct SubpackageBlueprint {
    /// Subpackage name (single path segment under the library root).
    pub name: String,
    /// Fraction of the library's modules in this subpackage.
    pub module_share: f64,
    /// Fraction of the library's init cost in this subpackage.
    pub init_share: f64,
    /// Fraction of the library's memory in this subpackage.
    pub mem_share: f64,
    /// Whether the subpackage's top level performs observable side effects
    /// (unsafe to lazy-load).
    pub side_effectful: bool,
    /// Number of public API functions exposed on the subpackage root.
    pub api_functions: usize,
    /// Compute cost of one API call (split along the internal call chain).
    pub api_call_cost: SimDuration,
}

/// How a handler uses a library subpackage.
#[derive(Debug, Clone)]
pub struct UseSpec {
    /// Library name.
    pub library: String,
    /// Subpackage name within the library.
    pub subpackage: String,
    /// Which API function (modulo the subpackage's `api_functions`).
    pub api_index: usize,
    /// Number of call sites in the handler body.
    pub calls: usize,
    /// If set, wrap the calls in a branch taken with this probability — the
    /// mechanism behind rarely-used libraries (paper §VI-2).
    pub branch_probability: Option<f64>,
    /// Whether the call is dispatched indirectly (opaque to static analysis).
    pub indirect: bool,
}

/// Blueprint for one handler (entry point).
#[derive(Debug, Clone)]
pub struct HandlerBlueprint {
    /// Entry-point name.
    pub name: String,
    /// Handler-local compute time (excludes library work).
    pub local_work: SimDuration,
    /// Library usage.
    pub uses: Vec<UseSpec>,
}

/// Blueprint for a whole application.
#[derive(Debug, Clone)]
pub struct AppBlueprint {
    /// Application name.
    pub name: String,
    /// App-code module init cost (the `handler.py` top level itself).
    pub app_init: SimDuration,
    /// App-code module memory, KiB.
    pub app_mem_kb: u64,
    /// Libraries.
    pub libraries: Vec<LibraryBlueprint>,
    /// Handlers.
    pub handlers: Vec<HandlerBlueprint>,
}

/// Errors raised while instantiating a blueprint.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum BlueprintError {
    /// The shares of a library's subpackages do not sum to 1.
    SharesDontSum {
        /// Library whose shares are inconsistent.
        library: String,
        /// Which share vector (modules/init/mem).
        which: &'static str,
        /// The offending sum.
        sum: f64,
    },
    /// A library needs at least one module per subpackage plus the root.
    TooFewModules {
        /// Library with too few modules.
        library: String,
    },
    /// A `UseSpec` referenced an unknown library or subpackage.
    UnknownUse {
        /// Referenced library.
        library: String,
        /// Referenced subpackage.
        subpackage: String,
    },
    /// A subpackage declares no API functions but a handler uses it.
    NoApiFunctions {
        /// Referenced library.
        library: String,
        /// Referenced subpackage.
        subpackage: String,
    },
    /// The underlying application failed validation.
    Model(AppModelError),
}

impl fmt::Display for BlueprintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlueprintError::SharesDontSum {
                library,
                which,
                sum,
            } => {
                write!(
                    f,
                    "library `{library}`: {which} shares sum to {sum}, expected 1"
                )
            }
            BlueprintError::TooFewModules { library } => {
                write!(
                    f,
                    "library `{library}`: module budget too small for its subpackages"
                )
            }
            BlueprintError::UnknownUse {
                library,
                subpackage,
            } => {
                write!(
                    f,
                    "handler uses unknown subpackage `{library}.{subpackage}`"
                )
            }
            BlueprintError::NoApiFunctions {
                library,
                subpackage,
            } => {
                write!(
                    f,
                    "subpackage `{library}.{subpackage}` exposes no API functions"
                )
            }
            BlueprintError::Model(e) => write!(f, "invalid generated application: {e}"),
        }
    }
}

impl std::error::Error for BlueprintError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BlueprintError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AppModelError> for BlueprintError {
    fn from(e: AppModelError) -> Self {
        BlueprintError::Model(e)
    }
}

/// A built library: handles back into the generated structure.
#[derive(Debug, Clone)]
pub struct BuiltLibrary {
    /// The library id.
    pub id: LibraryId,
    /// The root `__init__` module.
    pub root: ModuleId,
    /// Built subpackages by name.
    pub subpackages: HashMap<String, BuiltSubpackage>,
}

/// A built subpackage.
#[derive(Debug, Clone)]
pub struct BuiltSubpackage {
    /// The subpackage root module (`lib.sub`).
    pub root: ModuleId,
    /// All modules in the subpackage, root first.
    pub modules: Vec<ModuleId>,
    /// Public API functions on the subpackage root.
    pub api: Vec<FunctionId>,
}

/// The result of [`build_app`]: the application plus structural handles used
/// by tests and experiment harnesses.
#[derive(Debug, Clone)]
pub struct BuiltApp {
    /// The validated application.
    pub app: Application,
    /// The application-code module (`handler.py`).
    pub app_module: ModuleId,
    /// Built libraries by name.
    pub libraries: HashMap<String, BuiltLibrary>,
}

const MODULE_BASENAMES: &[&str] = &[
    "core", "util", "io", "ops", "fmt", "net", "db", "calc", "text", "meta",
];

/// Draws an approximately normal value via Box–Muller.
fn normalish(rng: &mut SimRng, mu: f64, sigma: f64) -> f64 {
    let u1 = (1.0 - rng.next_f64()).max(f64::MIN_POSITIVE);
    let u2 = rng.next_f64();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mu + sigma * z
}

/// Splits `total` into `n` positive weights with log-normal spread, summing
/// exactly to `total` (in microseconds).
fn split_cost(total: SimDuration, n: usize, rng: &mut SimRng) -> Vec<SimDuration> {
    if n == 0 {
        return Vec::new();
    }
    let weights: Vec<f64> = (0..n).map(|_| normalish(rng, 0.0, 0.8).exp()).collect();
    let wsum: f64 = weights.iter().sum();
    let micros = total.as_micros();
    let mut out: Vec<SimDuration> = weights
        .iter()
        .map(|w| SimDuration::from_micros((micros as f64 * w / wsum) as u64))
        .collect();
    let assigned: u64 = out.iter().map(|d| d.as_micros()).sum();
    // Put rounding remainder on the first element so totals are exact.
    out[0] += SimDuration::from_micros(micros - assigned.min(micros));
    out
}

/// Splits an integer amount proportionally to weights, summing exactly.
fn split_u64(total: u64, n: usize, rng: &mut SimRng) -> Vec<u64> {
    split_cost(SimDuration::from_micros(total), n, rng)
        .into_iter()
        .map(|d| d.as_micros())
        .collect()
}

fn check_shares(
    library: &str,
    which: &'static str,
    shares: impl Iterator<Item = f64>,
) -> Result<(), BlueprintError> {
    let sum: f64 = shares.sum();
    if (sum - 1.0).abs() > 0.01 {
        return Err(BlueprintError::SharesDontSum {
            library: library.to_string(),
            which,
            sum,
        });
    }
    Ok(())
}

/// Builds one library into `b` per its blueprint.
///
/// # Errors
///
/// Returns an error if the blueprint's shares are inconsistent or the module
/// budget cannot cover the declared subpackages.
pub fn build_library(
    b: &mut AppBuilder,
    bp: &LibraryBlueprint,
    rng: &mut SimRng,
) -> Result<BuiltLibrary, BlueprintError> {
    check_shares(
        &bp.name,
        "module",
        bp.subpackages.iter().map(|s| s.module_share),
    )?;
    check_shares(
        &bp.name,
        "init",
        bp.subpackages.iter().map(|s| s.init_share),
    )?;
    check_shares(&bp.name, "mem", bp.subpackages.iter().map(|s| s.mem_share))?;
    if bp.modules < bp.subpackages.len() + 1 {
        return Err(BlueprintError::TooFewModules {
            library: bp.name.clone(),
        });
    }

    let lib_id = b.add_library(&bp.name);
    // The root `__init__` takes a fixed 2 % slice of init/memory; the
    // remainder is distributed across the subpackages per their shares.
    let root_init = bp.init_total.mul_f64(0.02);
    let root_mem = (bp.mem_total_kb as f64 * 0.02) as u64;
    let root = b.add_library_module(&bp.name, root_init, root_mem, false, lib_id);

    let body_init = bp.init_total - root_init;
    let body_mem = bp.mem_total_kb - root_mem;
    let module_budget = bp.modules - 1;

    // Integer module counts per subpackage, remainder to the largest share.
    let mut counts: Vec<usize> = bp
        .subpackages
        .iter()
        .map(|s| ((module_budget as f64 * s.module_share) as usize).max(1))
        .collect();
    let mut assigned: usize = counts.iter().sum();
    while assigned > module_budget {
        let i = counts
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .expect("non-empty counts");
        if counts[i] > 1 {
            counts[i] -= 1;
            assigned -= 1;
        } else {
            return Err(BlueprintError::TooFewModules {
                library: bp.name.clone(),
            });
        }
    }
    if let Some(first) = counts.first_mut() {
        *first += module_budget - assigned;
    }

    let mut subpackages = HashMap::new();
    // Import lines start at 2 (line 1 is the module header comment).
    for (import_line, (sub_bp, count)) in (2u32..).zip(bp.subpackages.iter().zip(&counts)) {
        let sub = build_subpackage(
            b,
            &bp.name,
            lib_id,
            sub_bp,
            *count,
            body_init.mul_f64(sub_bp.init_share),
            (body_mem as f64 * sub_bp.mem_share) as u64,
            bp.avg_depth,
            rng,
        )?;
        // The library root imports each subpackage root (the igraph pattern).
        b.add_import(root, sub.root, import_line, ImportMode::Global)?;
        subpackages.insert(sub_bp.name.clone(), sub);
    }

    Ok(BuiltLibrary {
        id: lib_id,
        root,
        subpackages,
    })
}

#[allow(clippy::too_many_arguments)]
fn build_subpackage(
    b: &mut AppBuilder,
    lib_name: &str,
    lib_id: LibraryId,
    bp: &SubpackageBlueprint,
    module_count: usize,
    init_total: SimDuration,
    mem_total: u64,
    avg_depth: f64,
    rng: &mut SimRng,
) -> Result<BuiltSubpackage, BlueprintError> {
    let init_costs = split_cost(init_total, module_count, rng);
    let mems = split_u64(mem_total, module_count, rng);

    let root_name = format!("{lib_name}.{}", bp.name);
    let root = b.add_library_module(
        &root_name,
        init_costs[0],
        mems[0],
        bp.side_effectful,
        lib_id,
    );

    // Grow the subtree: each module targets a depth sampled around the
    // library's average; its parent imports it (package-init pattern).
    let mut by_depth: Vec<Vec<(ModuleId, String)>> = vec![Vec::new(); 16];
    by_depth[2].push((root, root_name.clone()));
    let mut modules = vec![root];
    let mut child_counter: HashMap<ModuleId, u32> = HashMap::new();

    for i in 1..module_count {
        let target_depth = normalish(rng, avg_depth, 1.2).round().clamp(3.0, 12.0) as usize;
        // Find the deepest non-empty level at or below target_depth - 1.
        let parent_level = (2..target_depth)
            .rev()
            .find(|d| !by_depth[*d].is_empty())
            .unwrap_or(2);
        let slot = rng.next_below(by_depth[parent_level].len());
        let (parent, parent_name) = by_depth[parent_level][slot].clone();
        let base = MODULE_BASENAMES[i % MODULE_BASENAMES.len()];
        let name = format!("{parent_name}.{base}{i}");
        let module = b.add_library_module(
            &name,
            init_costs[i],
            mems[i],
            bp.side_effectful && rng.chance(0.6),
            lib_id,
        );
        let line = 2 + *child_counter.entry(parent).or_insert(0);
        *child_counter.get_mut(&parent).expect("just inserted") += 1;
        b.add_import(parent, module, line, ImportMode::Global)?;
        by_depth[parent_level + 1].push((module, name));
        modules.push(module);
    }

    // API functions on the subpackage root, each heading a helper chain
    // through the subtree (realistic calling contexts for the CCT).
    let mut api = Vec::new();
    let per_call = if bp.api_functions > 0 {
        bp.api_call_cost
    } else {
        SimDuration::ZERO
    };
    for a in 0..bp.api_functions {
        let chain_len = (modules.len() - 1).min(2);
        let mut costs = split_cost(per_call, chain_len + 1, rng);
        // Build the chain bottom-up so each caller can reference its callee.
        let mut callee: Option<FunctionId> = None;
        for level in (0..chain_len).rev() {
            let m = modules[1 + rng.next_below(modules.len() - 1)];
            let mut body = vec![Stmt {
                line: 61,
                kind: StmtKind::Work(costs.pop().expect("one cost per level")),
            }];
            if let Some(c) = callee {
                body.push(Stmt {
                    line: 62,
                    kind: StmtKind::call(c),
                });
            }
            let fname = format!("_helper_{a}_{level}");
            callee = Some(b.add_function(fname, m, 60, body));
        }
        let mut body = vec![Stmt {
            line: 51,
            kind: StmtKind::Work(costs.pop().expect("api-level cost")),
        }];
        if let Some(c) = callee {
            body.push(Stmt {
                line: 52,
                kind: StmtKind::call(c),
            });
        }
        let fname = format!("api_{a}");
        api.push(b.add_function(fname, root, 50 + a as u32 * 10, body));
    }

    Ok(BuiltSubpackage { root, modules, api })
}

/// Instantiates an [`AppBlueprint`] into a validated [`Application`].
///
/// Deterministic in `(blueprint, seed)`.
///
/// # Errors
///
/// Returns an error for inconsistent shares, unknown `UseSpec` references or
/// model-validation failures.
pub fn build_app(bp: &AppBlueprint, seed: u64) -> Result<BuiltApp, BlueprintError> {
    let mut rng = SimRng::seed_from(seed);
    let mut b = AppBuilder::new(&bp.name);

    let app_module = b.add_app_module("handler", bp.app_init, bp.app_mem_kb);

    let mut libraries = HashMap::new();
    for (line, lib_bp) in (2u32..).zip(bp.libraries.iter()) {
        let built = build_library(&mut b, lib_bp, &mut rng)?;
        b.add_import(app_module, built.root, line, ImportMode::Global)?;
        libraries.insert(lib_bp.name.clone(), built);
    }

    for (h_idx, h) in bp.handlers.iter().enumerate() {
        let mut body = Vec::new();
        let slices = h.uses.len().max(1) as u64 + 1;
        let work_slice = h.local_work / slices;
        let mut stmt_line = 11;
        body.push(Stmt {
            line: stmt_line,
            kind: StmtKind::Work(work_slice),
        });
        for use_spec in &h.uses {
            stmt_line += 1;
            let lib =
                libraries
                    .get(&use_spec.library)
                    .ok_or_else(|| BlueprintError::UnknownUse {
                        library: use_spec.library.clone(),
                        subpackage: use_spec.subpackage.clone(),
                    })?;
            let sub = lib.subpackages.get(&use_spec.subpackage).ok_or_else(|| {
                BlueprintError::UnknownUse {
                    library: use_spec.library.clone(),
                    subpackage: use_spec.subpackage.clone(),
                }
            })?;
            if sub.api.is_empty() {
                return Err(BlueprintError::NoApiFunctions {
                    library: use_spec.library.clone(),
                    subpackage: use_spec.subpackage.clone(),
                });
            }
            let target = sub.api[use_spec.api_index % sub.api.len()];
            let mut calls = Vec::new();
            for c in 0..use_spec.calls.max(1) {
                calls.push(Stmt {
                    line: stmt_line + c as u32,
                    kind: if use_spec.indirect {
                        StmtKind::indirect_call(target)
                    } else {
                        StmtKind::call(target)
                    },
                });
            }
            stmt_line += use_spec.calls.max(1) as u32;
            match use_spec.branch_probability {
                Some(p) => body.push(Stmt {
                    line: stmt_line,
                    kind: StmtKind::Branch {
                        probability: p,
                        body: calls,
                    },
                }),
                None => body.extend(calls),
            }
            stmt_line += 1;
            body.push(Stmt {
                line: stmt_line,
                kind: StmtKind::Work(work_slice),
            });
        }
        let f = b.add_function(&h.name, app_module, 10 + 50 * h_idx as u32, body);
        b.add_handler(&h.name, f);
    }

    let app = b.finish()?;
    Ok(BuiltApp {
        app,
        app_module,
        libraries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    fn sub(name: &str, module_share: f64, init_share: f64, api: usize) -> SubpackageBlueprint {
        SubpackageBlueprint {
            name: name.into(),
            module_share,
            init_share,
            mem_share: init_share,
            side_effectful: false,
            api_functions: api,
            api_call_cost: ms(2),
        }
    }

    fn blueprint() -> AppBlueprint {
        AppBlueprint {
            name: "demo".into(),
            app_init: ms(1),
            app_mem_kb: 100,
            libraries: vec![LibraryBlueprint {
                name: "igraph".into(),
                modules: 86,
                avg_depth: 3.74,
                init_total: ms(400),
                mem_total_kb: 40_000,
                subpackages: vec![
                    sub("community", 0.4, 0.4, 2),
                    sub("drawing", 0.4, 0.37, 1),
                    sub("ops", 0.2, 0.23, 1),
                ],
            }],
            handlers: vec![HandlerBlueprint {
                name: "bfs".into(),
                local_work: ms(10),
                uses: vec![UseSpec {
                    library: "igraph".into(),
                    subpackage: "community".into(),
                    api_index: 0,
                    calls: 2,
                    branch_probability: None,
                    indirect: false,
                }],
            }],
        }
    }

    #[test]
    fn builds_with_exact_module_count() {
        let built = build_app(&blueprint(), 7).unwrap();
        let lib = &built.libraries["igraph"];
        assert_eq!(built.app.library(lib.id).module_count(), 86);
        // 1 app module + 86 library modules.
        assert_eq!(built.app.modules().len(), 87);
    }

    #[test]
    fn init_cost_is_conserved() {
        let built = build_app(&blueprint(), 7).unwrap();
        let lib = &built.libraries["igraph"];
        let total: SimDuration = built
            .app
            .library(lib.id)
            .modules()
            .iter()
            .map(|m| built.app.module(*m).init_cost())
            .sum();
        assert_eq!(total, ms(400));
    }

    #[test]
    fn memory_is_conserved() {
        let built = build_app(&blueprint(), 7).unwrap();
        let lib = &built.libraries["igraph"];
        let total: u64 = built
            .app
            .library(lib.id)
            .modules()
            .iter()
            .map(|m| built.app.module(*m).mem_kb())
            .sum();
        assert_eq!(total, 40_000);
    }

    #[test]
    fn subpackage_init_share_is_respected() {
        let built = build_app(&blueprint(), 7).unwrap();
        let lib = &built.libraries["igraph"];
        let drawing = &lib.subpackages["drawing"];
        let drawing_init: SimDuration = drawing
            .modules
            .iter()
            .map(|m| built.app.module(*m).init_cost())
            .sum();
        let frac = drawing_init.ratio(ms(400));
        // 37 % of the non-root budget (root keeps 2 %).
        assert!((frac - 0.37 * 0.98).abs() < 0.01, "frac = {frac}");
    }

    #[test]
    fn avg_depth_lands_near_target() {
        let built = build_app(&blueprint(), 7).unwrap();
        let depth = built.app.avg_module_depth();
        assert!(
            (depth - 3.74).abs() < 0.8,
            "avg depth {depth} too far from 3.74"
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let a = build_app(&blueprint(), 9).unwrap();
        let b = build_app(&blueprint(), 9).unwrap();
        assert_eq!(a.app, b.app);
        let c = build_app(&blueprint(), 10).unwrap();
        assert_ne!(a.app, c.app);
    }

    #[test]
    fn eager_cold_start_loads_whole_library() {
        let built = build_app(&blueprint(), 7).unwrap();
        let set = built.app.eager_load_set(built.app_module);
        assert_eq!(set.len(), built.app.modules().len());
    }

    #[test]
    fn handler_reaches_used_subpackage() {
        let built = build_app(&blueprint(), 7).unwrap();
        let h = built.app.handlers()[0].function();
        let community_root = built.libraries["igraph"].subpackages["community"].root;
        assert!(crate::source::function_uses_module(
            &built.app,
            h,
            community_root
        ));
        let drawing_root = built.libraries["igraph"].subpackages["drawing"].root;
        assert!(!crate::source::function_uses_module(
            &built.app,
            h,
            drawing_root
        ));
    }

    #[test]
    fn rejects_bad_shares() {
        let mut bp = blueprint();
        bp.libraries[0].subpackages[0].init_share = 0.9;
        let err = build_app(&bp, 1).unwrap_err();
        assert!(matches!(err, BlueprintError::SharesDontSum { .. }));
    }

    #[test]
    fn rejects_unknown_use() {
        let mut bp = blueprint();
        bp.handlers[0].uses[0].subpackage = "nope".into();
        let err = build_app(&bp, 1).unwrap_err();
        assert!(matches!(err, BlueprintError::UnknownUse { .. }));
    }

    #[test]
    fn rejects_too_few_modules() {
        let mut bp = blueprint();
        bp.libraries[0].modules = 3;
        let err = build_app(&bp, 1).unwrap_err();
        assert!(matches!(err, BlueprintError::TooFewModules { .. }));
    }

    #[test]
    fn branch_uses_are_wrapped() {
        let mut bp = blueprint();
        bp.handlers[0].uses[0].branch_probability = Some(0.01);
        let built = build_app(&bp, 7).unwrap();
        let f = built.app.function(built.app.handlers()[0].function());
        let has_branch = f
            .body()
            .iter()
            .any(|s| matches!(s.kind, StmtKind::Branch { .. }));
        assert!(has_branch);
    }

    #[test]
    fn side_effectful_subpackage_flags_modules() {
        let mut bp = blueprint();
        bp.libraries[0].subpackages[1].side_effectful = true;
        let built = build_app(&bp, 7).unwrap();
        let drawing = &built.libraries["igraph"].subpackages["drawing"];
        assert!(built.app.module(drawing.root).side_effectful());
    }
}
