//! Import declarations: the edges the optimizer rewrites.
//!
//! A *global* import sits at a module's top level; loading the importer
//! transitively loads the target — this is the cold-start cost the paper
//! measures. A *deferred* import has been pushed down to the target's first
//! use point; the target's load cost is paid only on executions that
//! actually reach it.

use serde::{Deserialize, Serialize};

use crate::ids::ModuleId;

/// How an import is declared in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ImportMode {
    /// Module-top-level `import X`: the target loads eagerly when the
    /// importer loads.
    Global,
    /// Function-local `import X` inserted at the first use point: the target
    /// loads on first use.
    Deferred,
}

impl ImportMode {
    /// Whether the import is loaded eagerly at importer-load time.
    pub fn is_global(self) -> bool {
        matches!(self, ImportMode::Global)
    }

    /// Whether the import has been deferred to first use.
    pub fn is_deferred(self) -> bool {
        matches!(self, ImportMode::Deferred)
    }
}

/// One import declaration inside a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImportDecl {
    /// The imported module.
    pub target: ModuleId,
    /// Current mode (the optimizer flips `Global` to `Deferred`).
    pub mode: ImportMode,
    /// Source line of the original global declaration.
    pub line: u32,
}

impl ImportDecl {
    /// Creates a global import of `target` at source `line`.
    pub fn global(target: ModuleId, line: u32) -> Self {
        ImportDecl {
            target,
            mode: ImportMode::Global,
            line,
        }
    }

    /// Creates a deferred import of `target` (original declaration at `line`).
    pub fn deferred(target: ModuleId, line: u32) -> Self {
        ImportDecl {
            target,
            mode: ImportMode::Deferred,
            line,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(ImportMode::Global.is_global());
        assert!(!ImportMode::Global.is_deferred());
        assert!(ImportMode::Deferred.is_deferred());
        assert!(!ImportMode::Deferred.is_global());
    }

    #[test]
    fn constructors_set_mode() {
        let t = ModuleId::from_index(3);
        assert_eq!(ImportDecl::global(t, 7).mode, ImportMode::Global);
        assert_eq!(ImportDecl::deferred(t, 7).mode, ImportMode::Deferred);
        assert_eq!(ImportDecl::global(t, 7).line, 7);
    }
}
