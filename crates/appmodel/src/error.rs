//! Error type for application-model construction and validation.

use std::fmt;

use crate::ids::{FunctionId, ModuleId};

/// Errors raised while building or validating an
/// [`Application`](crate::app::Application).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AppModelError {
    /// A module id did not refer to an existing module.
    UnknownModule(ModuleId),
    /// A function id did not refer to an existing function.
    UnknownFunction(FunctionId),
    /// Two modules were given the same dotted name.
    DuplicateModuleName(String),
    /// The same importer declared the same target twice.
    DuplicateImport {
        /// The module containing the duplicate declaration.
        importer: ModuleId,
        /// The doubly-imported target.
        target: ModuleId,
    },
    /// A module imported itself.
    SelfImport(ModuleId),
    /// The global-import graph contains a cycle through this module.
    ImportCycle(ModuleId),
    /// A branch probability was outside `[0, 1]`.
    InvalidProbability(f64),
    /// The application has no handler.
    NoHandlers,
    /// An application must contain at least one module.
    Empty,
}

impl fmt::Display for AppModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppModelError::UnknownModule(id) => write!(f, "unknown module {id}"),
            AppModelError::UnknownFunction(id) => write!(f, "unknown function {id}"),
            AppModelError::DuplicateModuleName(name) => {
                write!(f, "duplicate module name `{name}`")
            }
            AppModelError::DuplicateImport { importer, target } => {
                write!(f, "module {importer} imports {target} more than once")
            }
            AppModelError::SelfImport(id) => write!(f, "module {id} imports itself"),
            AppModelError::ImportCycle(id) => {
                write!(f, "global import graph has a cycle through module {id}")
            }
            AppModelError::InvalidProbability(p) => {
                write!(f, "branch probability {p} is outside [0, 1]")
            }
            AppModelError::NoHandlers => write!(f, "application declares no handlers"),
            AppModelError::Empty => write!(f, "application contains no modules"),
        }
    }
}

impl std::error::Error for AppModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = AppModelError::DuplicateModuleName("nltk".into());
        assert!(e.to_string().contains("nltk"));
        let e = AppModelError::ImportCycle(ModuleId::from_index(3));
        assert!(e.to_string().contains("m3"));
    }
}
