//! Interned name lookup over a finished [`Application`].
//!
//! [`NameTable`] interns every module, function and handler name exactly
//! once (insertion order: modules, then functions, then handlers — so
//! symbol ids are a pure function of the application, independent of
//! hashing, threads or run count) and exposes symbol-keyed lookups. Hot
//! consumers — the `pyrt` loader resolving dotted package ancestry, the
//! CCT renderer — get `&str → Symbol → id` resolution without allocating
//! per query, where `Application::module_by_name` is a linear scan over
//! owned strings.

use slimstart_simcore::intern::{Interner, Symbol};

use crate::app::Application;
use crate::ids::{FunctionId, HandlerId, ModuleId};

/// Interned module/function/handler names for one application.
#[derive(Debug, Clone)]
pub struct NameTable {
    interner: Interner,
    /// Symbol-indexed reverse map; `None` for symbols that are not module
    /// names (e.g. a function that happens to share no module's name).
    module_of_symbol: Vec<Option<ModuleId>>,
    /// ModuleId-indexed symbols, dense.
    module_symbols: Vec<Symbol>,
    function_symbols: Vec<Symbol>,
    handler_symbols: Vec<Symbol>,
}

impl NameTable {
    /// Interns all names of `app`. Symbol ids depend only on the
    /// application's contents, in declaration order.
    pub fn build(app: &Application) -> NameTable {
        let mut interner = Interner::with_capacity(
            app.modules().len() + app.functions().len() + app.handlers().len(),
        );
        let module_symbols: Vec<Symbol> = app
            .modules()
            .iter()
            .map(|m| interner.intern(m.name()))
            .collect();
        let function_symbols: Vec<Symbol> = app
            .functions()
            .iter()
            .map(|f| interner.intern(f.name()))
            .collect();
        let handler_symbols: Vec<Symbol> = app
            .handlers()
            .iter()
            .map(|h| interner.intern(h.name()))
            .collect();
        let mut module_of_symbol = vec![None; interner.len()];
        for (i, sym) in module_symbols.iter().enumerate() {
            module_of_symbol[sym.index()] = Some(ModuleId::from_index(i));
        }
        NameTable {
            interner,
            module_of_symbol,
            module_symbols,
            function_symbols,
            handler_symbols,
        }
    }

    /// The interned symbol of a module's dotted name.
    #[inline]
    pub fn module_symbol(&self, id: ModuleId) -> Symbol {
        self.module_symbols[id.index()]
    }

    /// The interned symbol of a function's name.
    #[inline]
    pub fn function_symbol(&self, id: FunctionId) -> Symbol {
        self.function_symbols[id.index()]
    }

    /// The interned symbol of a handler's name.
    #[inline]
    pub fn handler_symbol(&self, id: HandlerId) -> Symbol {
        self.handler_symbols[id.index()]
    }

    /// Resolves a dotted module name without allocating.
    #[inline]
    pub fn module_by_name(&self, name: &str) -> Option<ModuleId> {
        let sym = self.interner.get(name)?;
        self.module_of_symbol.get(sym.index()).copied().flatten()
    }

    /// The string behind any symbol issued by this table.
    #[inline]
    pub fn resolve(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// The underlying interner (read-only).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppBuilder;
    use slimstart_simcore::time::SimDuration;

    fn app() -> Application {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("pkg");
        let h = b.add_app_module("handler", SimDuration::from_millis(1), 1);
        let root = b.add_library_module("pkg", SimDuration::from_millis(1), 1, false, lib);
        b.add_library_module("pkg.sub", SimDuration::from_millis(1), 1, false, lib);
        b.add_import(h, root, 2, crate::imports::ImportMode::Global)
            .unwrap();
        let f = b.add_function("main", h, 3, vec![]);
        b.add_handler("entry", f);
        b.finish().unwrap()
    }

    #[test]
    fn round_trips_module_names() {
        let app = app();
        let table = NameTable::build(&app);
        for (i, m) in app.modules().iter().enumerate() {
            let id = ModuleId::from_index(i);
            assert_eq!(table.module_by_name(m.name()), Some(id));
            assert_eq!(table.resolve(table.module_symbol(id)), m.name());
        }
        assert_eq!(table.module_by_name("nope"), None);
    }

    #[test]
    fn function_and_handler_symbols_resolve() {
        let app = app();
        let table = NameTable::build(&app);
        assert_eq!(
            table.resolve(table.function_symbol(FunctionId::from_index(0))),
            "main"
        );
        assert_eq!(
            table.resolve(table.handler_symbol(HandlerId::from_index(0))),
            "entry"
        );
    }

    #[test]
    fn symbols_are_deterministic_across_builds() {
        let app = app();
        let a = NameTable::build(&app);
        let b = NameTable::build(&app);
        for i in 0..app.modules().len() {
            let id = ModuleId::from_index(i);
            assert_eq!(a.module_symbol(id), b.module_symbol(id));
        }
        assert_eq!(a.interner().len(), b.interner().len());
    }

    #[test]
    fn agrees_with_linear_lookup() {
        let app = app();
        let table = NameTable::build(&app);
        for m in app.modules() {
            assert_eq!(table.module_by_name(m.name()), app.module_by_name(m.name()));
        }
    }
}
