//! Libraries: named collections of modules organized as package trees.
//!
//! A library is the unit at which the paper reports initialization overhead
//! and utilization (e.g. "nltk contributes 69.93 % of initialization latency
//! at 5.33 % utilization"). The [`PackageNode`] tree provides the
//! hierarchical decomposition of Fig. 6 (library → package → sub-package →
//! module).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::ids::ModuleId;
use crate::module::Module;

/// A library: a top-level package plus all modules beneath it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Library {
    name: String,
    modules: Vec<ModuleId>,
}

impl Library {
    /// Creates an empty library named `name` (the top-level package path).
    pub fn new(name: impl Into<String>) -> Self {
        Library {
            name: name.into(),
            modules: Vec::new(),
        }
    }

    /// The library's top-level package name, e.g. `nltk`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The modules belonging to this library, in creation order.
    pub fn modules(&self) -> &[ModuleId] {
        &self.modules
    }

    /// Number of member modules.
    pub fn module_count(&self) -> usize {
        self.modules.len()
    }

    pub(crate) fn push_module(&mut self, id: ModuleId) {
        self.modules.push(id);
    }
}

/// A node of a library's package tree: a dotted path with aggregated
/// direct-member and descendant modules.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackageNode {
    /// Dotted path of this package (e.g. `nltk.sem`).
    pub path: String,
    /// Modules whose name equals this path or whose parent is this path.
    pub direct_modules: Vec<ModuleId>,
    /// Child package paths.
    pub children: Vec<String>,
}

/// A package tree built from a set of modules, for hierarchical
/// initialization-overhead breakdowns (paper Fig. 6 / Eqs. 1–3).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackageTree {
    nodes: BTreeMap<String, PackageNode>,
    roots: Vec<String>,
}

impl PackageTree {
    /// Builds the tree for the given `(id, module)` pairs.
    ///
    /// Every dotted prefix of every module name becomes a package node; the
    /// module itself is attached as a direct member of its own path's node.
    pub fn build<'a, I>(modules: I) -> Self
    where
        I: IntoIterator<Item = (ModuleId, &'a Module)>,
    {
        let mut tree = PackageTree::default();
        for (id, module) in modules {
            let parts: Vec<&str> = module.name().split('.').collect();
            let mut path = String::new();
            for (i, part) in parts.iter().enumerate() {
                let parent = if i == 0 { None } else { Some(path.clone()) };
                if i > 0 {
                    path.push('.');
                }
                path.push_str(part);
                let is_new = !tree.nodes.contains_key(&path);
                if is_new {
                    tree.nodes.insert(
                        path.clone(),
                        PackageNode {
                            path: path.clone(),
                            direct_modules: Vec::new(),
                            children: Vec::new(),
                        },
                    );
                    match parent {
                        Some(p) => {
                            let parent_node = tree
                                .nodes
                                .get_mut(&p)
                                .expect("parent inserted before child");
                            parent_node.children.push(path.clone());
                        }
                        None => tree.roots.push(path.clone()),
                    }
                }
            }
            tree.nodes
                .get_mut(&path)
                .expect("leaf node just ensured")
                .direct_modules
                .push(id);
        }
        tree
    }

    /// The top-level package paths.
    pub fn roots(&self) -> &[String] {
        &self.roots
    }

    /// Looks up a node by dotted path.
    pub fn node(&self, path: &str) -> Option<&PackageNode> {
        self.nodes.get(path)
    }

    /// All nodes, ordered by dotted path.
    pub fn iter(&self) -> impl Iterator<Item = &PackageNode> {
        self.nodes.values()
    }

    /// All module ids at or beneath `path` (depth-first).
    pub fn modules_under(&self, path: &str) -> Vec<ModuleId> {
        let mut out = Vec::new();
        let mut stack = vec![path.to_string()];
        while let Some(p) = stack.pop() {
            if let Some(node) = self.nodes.get(&p) {
                out.extend(node.direct_modules.iter().copied());
                stack.extend(node.children.iter().cloned());
            }
        }
        out
    }

    /// Number of package nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_simcore::time::SimDuration;

    fn mk(name: &str) -> Module {
        Module::new(name, SimDuration::ZERO, 0, false, None)
    }

    fn mid(i: usize) -> ModuleId {
        ModuleId::from_index(i)
    }

    #[test]
    fn library_collects_modules() {
        let mut lib = Library::new("igraph");
        lib.push_module(mid(0));
        lib.push_module(mid(1));
        assert_eq!(lib.name(), "igraph");
        assert_eq!(lib.module_count(), 2);
        assert_eq!(lib.modules(), &[mid(0), mid(1)]);
    }

    #[test]
    fn package_tree_structure() {
        let m0 = mk("nltk");
        let m1 = mk("nltk.sem");
        let m2 = mk("nltk.sem.logic");
        let m3 = mk("nltk.stem");
        let tree = PackageTree::build([(mid(0), &m0), (mid(1), &m1), (mid(2), &m2), (mid(3), &m3)]);
        assert_eq!(tree.roots(), &["nltk".to_string()]);
        let root = tree.node("nltk").unwrap();
        assert_eq!(root.direct_modules, vec![mid(0)]);
        assert_eq!(root.children.len(), 2);
        assert!(tree.node("nltk.sem").is_some());
        assert!(tree.node("nltk.bogus").is_none());
    }

    #[test]
    fn modules_under_is_transitive() {
        let m0 = mk("nltk");
        let m1 = mk("nltk.sem");
        let m2 = mk("nltk.sem.logic");
        let m3 = mk("nltk.stem");
        let tree = PackageTree::build([(mid(0), &m0), (mid(1), &m1), (mid(2), &m2), (mid(3), &m3)]);
        let mut under = tree.modules_under("nltk.sem");
        under.sort();
        assert_eq!(under, vec![mid(1), mid(2)]);
        let mut all = tree.modules_under("nltk");
        all.sort();
        assert_eq!(all, vec![mid(0), mid(1), mid(2), mid(3)]);
    }

    #[test]
    fn intermediate_packages_exist_without_modules() {
        // a.b.c with no module named a.b still creates node a.b.
        let m = mk("a.b.c");
        let tree = PackageTree::build([(mid(0), &m)]);
        assert_eq!(tree.len(), 3);
        let mid_node = tree.node("a.b").unwrap();
        assert!(mid_node.direct_modules.is_empty());
        assert_eq!(mid_node.children, vec!["a.b.c".to_string()]);
    }

    #[test]
    fn multiple_roots() {
        let m0 = mk("numpy");
        let m1 = mk("scipy");
        let tree = PackageTree::build([(mid(0), &m0), (mid(1), &m1)]);
        assert_eq!(tree.roots().len(), 2);
    }

    #[test]
    fn empty_tree() {
        let tree = PackageTree::build(std::iter::empty());
        assert!(tree.is_empty());
        assert!(tree.modules_under("x").is_empty());
    }
}
