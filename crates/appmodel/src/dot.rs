//! Graphviz/DOT export of application structure.
//!
//! Renders the import graph the way the paper's Fig. 5 draws dependency
//! graphs: eager imports as solid edges, deferred imports as dashed edges,
//! side-effectful modules highlighted, stripped modules greyed out. Useful
//! for eyeballing what an optimization actually changed:
//!
//! ```sh
//! cargo run --release --bin slimstart -- graph R-GB | dot -Tsvg > rgb.svg
//! ```

use std::fmt::Write as _;

use crate::app::Application;
use crate::ids::ModuleId;

/// Escapes a DOT identifier/label.
fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn node_id(m: ModuleId) -> String {
    format!("m{}", m.index())
}

/// Renders the application's module/import graph as a DOT digraph.
///
/// Nodes are modules (labelled with their dotted name and init cost in
/// milliseconds); clusters group library packages; edge style encodes the
/// import mode.
pub fn import_graph_dot(app: &Application) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", esc(app.name()));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=box, fontsize=10];");

    // Cluster per library, app code on its own.
    for (li, lib) in app.libraries().iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{li} {{");
        let _ = writeln!(out, "    label=\"{}\";", esc(lib.name()));
        for m in lib.modules() {
            let module = app.module(*m);
            let style = if module.stripped() {
                ", style=filled, fillcolor=gray80, fontcolor=gray40"
            } else if module.side_effectful() {
                ", style=filled, fillcolor=lightsalmon"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "    {} [label=\"{}\\n{:.1} ms\"{}];",
                node_id(*m),
                esc(module.name()),
                module.init_cost().as_millis_f64(),
                style
            );
        }
        let _ = writeln!(out, "  }}");
    }
    for (i, module) in app.modules().iter().enumerate() {
        if module.library().is_none() {
            let _ = writeln!(
                out,
                "  {} [label=\"{}\\n{:.1} ms\", style=filled, fillcolor=lightblue];",
                node_id(ModuleId::from_index(i)),
                esc(module.name()),
                module.init_cost().as_millis_f64()
            );
        }
    }

    for (importer, decl) in app.all_imports() {
        let style = if decl.mode.is_global() {
            ""
        } else {
            " [style=dashed, color=gray50, label=\"deferred\", fontsize=8]"
        };
        let _ = writeln!(
            out,
            "  {} -> {}{};",
            node_id(importer),
            node_id(decl.target),
            style
        );
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppBuilder;
    use crate::imports::ImportMode;
    use slimstart_simcore::time::SimDuration;

    fn app() -> Application {
        let mut b = AppBuilder::new("demo");
        let lib = b.add_library("nltk");
        let h = b.add_app_module("handler", SimDuration::from_millis(1), 0);
        let root = b.add_library_module("nltk", SimDuration::from_millis(2), 0, false, lib);
        let sem = b.add_library_module("nltk.sem", SimDuration::from_millis(40), 0, false, lib);
        let sfx = b.add_library_module("nltk.plugins", SimDuration::from_millis(5), 0, true, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        b.add_import(root, sem, 2, ImportMode::Deferred).unwrap();
        b.add_import(root, sfx, 3, ImportMode::Global).unwrap();
        let f = b.add_function("main", h, 4, vec![]);
        b.add_handler("main", f);
        b.finish().unwrap()
    }

    #[test]
    fn dot_contains_clusters_nodes_and_edges() {
        let dot = import_graph_dot(&app());
        assert!(dot.starts_with("digraph \"demo\""));
        assert!(dot.contains("subgraph cluster_0"));
        assert!(dot.contains("label=\"nltk\""));
        assert!(dot.contains("handler\\n1.0 ms"));
        assert!(dot.contains("fillcolor=lightblue")); // app code
        assert!(dot.contains("fillcolor=lightsalmon")); // side-effectful
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn deferred_edges_are_dashed() {
        let dot = import_graph_dot(&app());
        let dashed = dot.lines().filter(|l| l.contains("style=dashed")).count();
        assert_eq!(dashed, 1);
        // Eager edges carry no style suffix.
        let eager = dot
            .lines()
            .filter(|l| l.contains(" -> ") && !l.contains("style=dashed"))
            .count();
        assert_eq!(eager, 2);
    }

    #[test]
    fn stripped_modules_are_grey() {
        let mut a = app();
        let sem = a.module_by_name("nltk.sem").unwrap();
        a.module_mut(sem).set_stripped(true);
        let dot = import_graph_dot(&a);
        assert!(dot.contains("fillcolor=gray80"));
    }

    #[test]
    fn balanced_braces() {
        let dot = import_graph_dot(&app());
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
    }
}
