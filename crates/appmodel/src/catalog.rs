//! The 22 evaluated applications, reconstructed from the paper's published
//! structural parameters.
//!
//! Table II gives, per application: the dominant library, library count,
//! module count and average import depth. The motivation study (§II) and the
//! case studies (§VI) give the *composition* of each application's
//! initialization cost:
//!
//! * `frac_static_dead` — init share in modules unreachable from any entry
//!   point (what FaaSLight's reachability analysis removes);
//! * `frac_workload_dead` — init share reachable only from entry points that
//!   the observed workload never invokes (static analysis keeps it, dynamic
//!   profiling proves it unused — the paper's key gap, Observation 2);
//! * `frac_rare` — init share used on a small fraction of requests (< 2 %
//!   utilization; e.g. `xmlschema` behind the SBOM branch in CVE-bin-tool);
//! * `frac_side_effectful` — init share that dynamic profiling flags unused
//!   but the optimizer must keep eager because deferral would change
//!   behaviour (the gap between Fig. 2's upper bound and realized speedup).
//!
//! The remaining share is *hot* — genuinely needed on every request.
//! Published speedups/memory numbers are retained in [`PaperTargets`] so the
//! experiment harness can print paper-vs-measured tables.

use slimstart_simcore::time::SimDuration;

use crate::synth::{
    AppBlueprint, BlueprintError, BuiltApp, HandlerBlueprint, LibraryBlueprint,
    SubpackageBlueprint, UseSpec,
};

/// Which benchmark suite an application comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// RainbowCake benchmark (paper reference 14).
    RainbowCake,
    /// FaaSLight benchmark (paper reference 13).
    FaasLight,
    /// FaaSWorkbench / FunctionBench (paper reference 16).
    FaasWorkbench,
    /// The four real-world applications (§V-a).
    RealWorld,
}

impl Suite {
    /// Human-readable suite name as used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Suite::RainbowCake => "RainbowCake",
            Suite::FaasLight => "FaaSLight",
            Suite::FaasWorkbench => "FaaS Workbench",
            Suite::RealWorld => "Real-World",
        }
    }
}

/// Published evaluation numbers for one application (Tables II & III,
/// Figs. 2 & 8), kept for paper-vs-measured reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperTargets {
    /// Table II "Initialization Speedup (times)".
    pub init_speedup: f64,
    /// Table II "Execution Speedup (times)" (end-to-end).
    pub e2e_speedup: f64,
    /// Table II 99th-percentile initialization speedup.
    pub p99_init_speedup: f64,
    /// Table II 99th-percentile end-to-end speedup.
    pub p99_e2e_speedup: f64,
    /// Fig. 8 memory reduction factor.
    pub mem_reduction: f64,
    /// Fig. 2 dynamic-profiling upper bound (% of init overhead), FaaSLight
    /// apps only.
    pub fig2_dyn_pct: Option<f64>,
    /// Fig. 2 static-reachability share (% of init overhead), FaaSLight apps
    /// only.
    pub fig2_stat_pct: Option<f64>,
}

/// Knobs that deliberately plant anti-patterns in a synthesized app.
///
/// The published catalog entries never set these; [`antipattern_apps`] uses
/// them to grow positive fixtures for the analyzer's anti-pattern lint
/// catalog and the verifier-gated auto-fix stage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AntipatternSeed {
    /// Override the main handler's consecutive core-API call count. Four or
    /// more back-to-back calls to the same client API trip the
    /// `missing-connection-reuse` lint.
    pub chatty_calls: Option<usize>,
    /// Defer the handler-module import of the main library after building,
    /// so every entry point pays the lazy load inside the request
    /// (`init-in-handler` / `handler-hot-import`).
    pub deferred_hot: bool,
    /// If non-zero, add a `legacysdk` library with this many modules that no
    /// handler ever calls (`unused-heavy-library`; with 64+ modules it also
    /// trips `oversized-dependency-tree`).
    pub unused_lib_modules: usize,
    /// Eager initialization cost of the planted unused library, ms.
    pub unused_lib_init_ms: f64,
}

/// One catalog application: published structure plus the latent composition
/// used to synthesize it.
#[derive(Debug, Clone)]
pub struct CatalogApp {
    /// Short code used in the paper's figures (e.g. `R-DV`).
    pub code: &'static str,
    /// Full application name.
    pub name: &'static str,
    /// Source benchmark suite.
    pub suite: Suite,
    /// Dominant library (Table II "Library" column).
    pub main_library: &'static str,
    /// Application domain (Table II "Type" column).
    pub lib_type: &'static str,
    /// Number of libraries (Table II).
    pub n_libs: usize,
    /// Number of modules (Table II).
    pub n_modules: usize,
    /// Average import depth (Table II).
    pub avg_depth: f64,
    /// Baseline cold-start end-to-end latency, ms.
    pub e2e_ms: f64,
    /// Fraction of end-to-end time spent in library initialization (Fig. 1).
    pub init_share: f64,
    /// Init share in statically unreachable modules.
    pub frac_static_dead: f64,
    /// Init share reachable only from workload-dead entry points.
    pub frac_workload_dead: f64,
    /// Init share used on < 2 % of requests.
    pub frac_rare: f64,
    /// Init share that is unused but side-effectful (undeferrable).
    pub frac_side_effectful: f64,
    /// Per-request probability of the rare path.
    pub rare_probability: f64,
    /// If set, the rare share is materialized as its own library with this
    /// name (the CVE-bin-tool / `xmlschema` pattern).
    pub rare_as_library: Option<&'static str>,
    /// Name of the workload-dead subpackage (e.g. `sem` for nltk in R-SA,
    /// `drawing` for igraph in R-GB).
    pub wdead_sub: &'static str,
    /// Baseline peak memory, MB.
    pub mem_before_mb: f64,
    /// Fraction of baseline memory attributable to libraries.
    pub mem_lib_frac: f64,
    /// Fraction of library memory that sits in deferrable subpackages.
    pub mem_saveable_frac: f64,
    /// Whether one extra-library use is dispatched indirectly.
    pub indirect_extra: bool,
    /// Whether the app has a third, occasionally used entry point.
    pub extra_handler: bool,
    /// Deliberately planted anti-patterns (`None` for published entries).
    pub antipattern: Option<AntipatternSeed>,
    /// Published numbers for comparison.
    pub paper: PaperTargets,
}

/// Fraction of a request stream routed to the `admin` (workload-dead)
/// handler in the evaluation workload: zero, per Observation 3's skew.
pub const ADMIN_WEIGHT: f64 = 0.0;
/// Fraction routed to the occasional `batch` handler where present.
pub const BATCH_WEIGHT: f64 = 0.08;

const EXTRA_LIB_NAMES: &[&str] = &[
    "six", "dateutil", "urllib3", "chardet", "attrs", "yamlcfg", "certifi", "requests",
];

impl CatalogApp {
    /// The hot (always-needed) fraction of initialization cost.
    pub fn frac_hot(&self) -> f64 {
        1.0 - self.frac_static_dead
            - self.frac_workload_dead
            - self.frac_rare
            - self.frac_side_effectful
    }

    /// Whether the app clears the paper's 10 % initialization-overhead gate
    /// (§IV-A1): apps below it are excluded from optimization.
    pub fn above_gate(&self) -> bool {
        self.init_share > 0.10
    }

    /// The deferrable init fraction a perfect profile-guided optimizer can
    /// avoid on the hot path (Fig. 2's DYN upper bound includes
    /// `frac_side_effectful`, which cannot be realized).
    pub fn frac_deferrable(&self) -> f64 {
        self.frac_static_dead + self.frac_workload_dead + self.frac_rare
    }

    /// Handler names and their invocation weights in the evaluation
    /// workload.
    pub fn workload_weights(&self) -> Vec<(String, f64)> {
        let mut w = Vec::new();
        if self.extra_handler {
            w.push(("handler".to_string(), 1.0 - BATCH_WEIGHT));
            w.push(("batch".to_string(), BATCH_WEIGHT));
        } else {
            w.push(("handler".to_string(), 1.0));
        }
        if self.has_admin_handler() {
            w.push(("admin".to_string(), ADMIN_WEIGHT));
        }
        w
    }

    fn has_admin_handler(&self) -> bool {
        self.frac_workload_dead > 0.0 || self.frac_side_effectful > 0.0
    }

    /// Expands this entry into a synthesizable [`AppBlueprint`].
    pub fn blueprint(&self) -> AppBlueprint {
        let init_total_ms = self.e2e_ms * self.init_share;
        let exec_total_ms = self.e2e_ms - init_total_ms;
        let app_init = SimDuration::from_millis_f64(init_total_ms * 0.01);

        let extras = if self.n_libs <= 1 {
            0
        } else {
            (self.n_libs - 1).min(8).min(self.n_modules / 24)
        };
        let rare_lib_modules = if self.rare_as_library.is_some() {
            (self.n_modules / 12).max(8)
        } else {
            0
        };
        let extras_init_frac = if extras == 0 {
            0.0
        } else {
            0.12f64.min((self.frac_hot() - 0.06).max(0.02))
        };

        // --- memory budgets -------------------------------------------------
        let lib_mem_total_kb = (self.mem_before_mb * self.mem_lib_frac * 1024.0) as u64;
        let base_mem_mb = self.mem_before_mb * (1.0 - self.mem_lib_frac);
        // 35 MB models the language runtime; the remainder is app-code state.
        let app_mem_kb = (((base_mem_mb - 35.0).max(4.0)) * 1024.0) as u64;
        let extras_mem_frac = extras_init_frac; // extras' memory tracks their init share
        let rare_lib_init_frac = if self.rare_as_library.is_some() {
            self.frac_rare
        } else {
            0.0
        };
        // Memory in deferrable subpackages, as a fraction of *all* library
        // memory; the main library holds all of it.
        let saveable = self.mem_saveable_frac.min(0.95);

        let mut libraries = Vec::new();

        // --- main library ---------------------------------------------------
        let main_modules = self.n_modules
            - extras * self.extra_modules_each(extras, rare_lib_modules)
            - rare_lib_modules;
        let main_init_frac = 1.0 - 0.01 - extras_init_frac - rare_lib_init_frac;
        let main_mem_frac = 1.0 - extras_mem_frac - rare_lib_init_frac;
        let core_frac = (self.frac_hot() - 0.01 - extras_init_frac).max(0.02);

        let mut subs: Vec<(&str, f64, bool, usize, f64)> = Vec::new();
        // (name, init frac of total, side_effectful, api_functions, mem frac of all-lib mem)
        let defer_total = self.frac_static_dead
            + self.frac_workload_dead
            + if self.rare_as_library.is_none() {
                self.frac_rare
            } else {
                0.0
            };
        let mem_of = |init_frac: f64| {
            if defer_total <= 0.0 {
                0.0
            } else {
                saveable * init_frac / defer_total
            }
        };
        let hot_mem = (1.0 - extras_mem_frac - rare_lib_init_frac - saveable).max(0.0);
        let sfx_mem_frac = if self.frac_side_effectful > 0.0 {
            hot_mem * 0.15
        } else {
            0.0
        };
        subs.push(("core", core_frac, false, 3, hot_mem - sfx_mem_frac));
        if self.frac_static_dead > 0.0 {
            subs.push((
                "compat",
                self.frac_static_dead,
                false,
                1,
                mem_of(self.frac_static_dead),
            ));
        }
        if self.frac_workload_dead > 0.0 {
            subs.push((
                self.wdead_sub,
                self.frac_workload_dead,
                false,
                1,
                mem_of(self.frac_workload_dead),
            ));
        }
        if self.frac_rare > 0.0 && self.rare_as_library.is_none() {
            subs.push(("xmlio", self.frac_rare, false, 1, mem_of(self.frac_rare)));
        }
        if self.frac_side_effectful > 0.0 {
            subs.push(("plugins", self.frac_side_effectful, true, 1, sfx_mem_frac));
        }

        let init_norm: f64 = subs.iter().map(|s| s.1).sum();
        let mem_norm: f64 = subs.iter().map(|s| s.4).sum::<f64>().max(1e-9);
        let module_weights: Vec<f64> = subs.iter().map(|s| s.1.max(0.06)).collect();
        let module_norm: f64 = module_weights.iter().sum();

        let main_api_cost = self.per_call_cost_ms(exec_total_ms, extras);
        libraries.push(LibraryBlueprint {
            name: self.main_library.to_string(),
            modules: main_modules,
            avg_depth: self.avg_depth,
            init_total: SimDuration::from_millis_f64(init_total_ms * main_init_frac),
            mem_total_kb: (lib_mem_total_kb as f64 * main_mem_frac) as u64,
            subpackages: subs
                .iter()
                .zip(&module_weights)
                .map(|((name, init, sfx, api, mem), mw)| SubpackageBlueprint {
                    name: name.to_string(),
                    module_share: mw / module_norm,
                    init_share: init / init_norm,
                    mem_share: mem / mem_norm,
                    side_effectful: *sfx,
                    api_functions: *api,
                    api_call_cost: SimDuration::from_millis_f64(if *name == "core" {
                        main_api_cost
                    } else {
                        8.0
                    }),
                })
                .collect(),
        });

        // --- extra (hot) libraries -------------------------------------------
        for i in 0..extras {
            libraries.push(LibraryBlueprint {
                name: EXTRA_LIB_NAMES[i % EXTRA_LIB_NAMES.len()].to_string(),
                modules: self.extra_modules_each(extras, rare_lib_modules),
                avg_depth: (self.avg_depth - 1.0).max(2.5),
                init_total: SimDuration::from_millis_f64(
                    init_total_ms * extras_init_frac / extras as f64,
                ),
                mem_total_kb: (lib_mem_total_kb as f64 * extras_mem_frac / extras as f64) as u64,
                subpackages: vec![SubpackageBlueprint {
                    name: "core".to_string(),
                    module_share: 1.0,
                    init_share: 1.0,
                    mem_share: 1.0,
                    side_effectful: false,
                    api_functions: 1,
                    api_call_cost: SimDuration::from_millis_f64(
                        self.per_call_cost_ms(exec_total_ms, extras),
                    ),
                }],
            });
        }

        // --- rare library (CVE / xmlschema pattern) ---------------------------
        if let Some(rare_name) = self.rare_as_library {
            libraries.push(LibraryBlueprint {
                name: rare_name.to_string(),
                modules: rare_lib_modules,
                avg_depth: (self.avg_depth - 1.5).max(2.5),
                init_total: SimDuration::from_millis_f64(init_total_ms * self.frac_rare),
                mem_total_kb: (lib_mem_total_kb as f64 * rare_lib_init_frac) as u64,
                subpackages: vec![SubpackageBlueprint {
                    name: "validator".to_string(),
                    module_share: 1.0,
                    init_share: 1.0,
                    mem_share: 1.0,
                    side_effectful: false,
                    api_functions: 1,
                    // The rare path does real work when it fires (an SBOM
                    // validation is a full scan), which is what gives the
                    // library its small-but-nonzero utilization (paper:
                    // 0.78 %).
                    api_call_cost: SimDuration::from_millis_f64(exec_total_ms * 0.75),
                }],
            });
        }

        // --- planted unused library (anti-pattern seeding) --------------------
        if let Some(seed) = &self.antipattern {
            if seed.unused_lib_modules > 0 {
                libraries.push(LibraryBlueprint {
                    name: "legacysdk".to_string(),
                    modules: seed.unused_lib_modules,
                    avg_depth: (self.avg_depth - 1.0).max(2.5),
                    init_total: SimDuration::from_millis_f64(seed.unused_lib_init_ms),
                    mem_total_kb: 4096,
                    // No handler ever references it; the eager import from the
                    // handler module is the whole anti-pattern.
                    subpackages: vec![SubpackageBlueprint {
                        name: "core".to_string(),
                        module_share: 1.0,
                        init_share: 1.0,
                        mem_share: 1.0,
                        side_effectful: false,
                        api_functions: 1,
                        api_call_cost: SimDuration::from_millis(5),
                    }],
                });
            }
        }

        // --- handlers ----------------------------------------------------------
        let mut handlers = Vec::new();
        let core_calls = self.antipattern.and_then(|s| s.chatty_calls).unwrap_or(2);
        let mut main_uses = vec![UseSpec {
            library: self.main_library.to_string(),
            subpackage: "core".to_string(),
            api_index: 0,
            calls: core_calls,
            branch_probability: None,
            indirect: false,
        }];
        for i in 0..extras {
            main_uses.push(UseSpec {
                library: EXTRA_LIB_NAMES[i % EXTRA_LIB_NAMES.len()].to_string(),
                subpackage: "core".to_string(),
                api_index: 0,
                calls: 1,
                branch_probability: None,
                indirect: self.indirect_extra && i == 0,
            });
        }
        if self.frac_rare > 0.0 {
            let (lib, sub) = match self.rare_as_library {
                Some(r) => (r.to_string(), "validator".to_string()),
                None => (self.main_library.to_string(), "xmlio".to_string()),
            };
            main_uses.push(UseSpec {
                library: lib,
                subpackage: sub,
                api_index: 0,
                calls: 1,
                branch_probability: Some(self.rare_probability),
                indirect: false,
            });
        }
        handlers.push(HandlerBlueprint {
            name: "handler".to_string(),
            local_work: SimDuration::from_millis_f64(exec_total_ms * 0.4),
            uses: main_uses,
        });

        if self.extra_handler {
            handlers.push(HandlerBlueprint {
                name: "batch".to_string(),
                local_work: SimDuration::from_millis_f64(exec_total_ms * 0.5),
                uses: vec![UseSpec {
                    library: self.main_library.to_string(),
                    subpackage: "core".to_string(),
                    api_index: 1,
                    calls: 3,
                    branch_probability: None,
                    indirect: false,
                }],
            });
        }

        if self.has_admin_handler() {
            let mut uses = Vec::new();
            if self.frac_workload_dead > 0.0 {
                uses.push(UseSpec {
                    library: self.main_library.to_string(),
                    subpackage: self.wdead_sub.to_string(),
                    api_index: 0,
                    calls: 1,
                    branch_probability: None,
                    indirect: false,
                });
            }
            if self.frac_side_effectful > 0.0 {
                uses.push(UseSpec {
                    library: self.main_library.to_string(),
                    subpackage: "plugins".to_string(),
                    api_index: 0,
                    calls: 1,
                    branch_probability: None,
                    indirect: false,
                });
            }
            handlers.push(HandlerBlueprint {
                name: "admin".to_string(),
                local_work: SimDuration::from_millis(20),
                uses,
            });
        }

        AppBlueprint {
            name: self.name.to_string(),
            app_init,
            app_mem_kb,
            libraries,
            handlers,
        }
    }

    fn extra_modules_each(&self, extras: usize, rare_lib_modules: usize) -> usize {
        if extras == 0 {
            return 0;
        }
        let pool = (self.n_modules - rare_lib_modules) as f64 * 0.28;
        ((pool / extras as f64) as usize).max(6)
    }

    fn per_call_cost_ms(&self, exec_total_ms: f64, extras: usize) -> f64 {
        let total_calls = 2 + extras;
        exec_total_ms * 0.6 / total_calls as f64
    }

    /// Builds the application deterministically from `seed`.
    ///
    /// # Errors
    ///
    /// Propagates blueprint validation failures (none occur for shipped
    /// catalog entries; covered by tests).
    pub fn build(&self, seed: u64) -> Result<BuiltApp, BlueprintError> {
        let mut built = crate::synth::build_app(&self.blueprint(), seed)?;
        if self.antipattern.is_some_and(|s| s.deferred_hot) {
            // Ship the app with the hot main library deferred: every handler
            // then pays the library load inside the request, the
            // `init-in-handler` anti-pattern.
            let root = built.libraries[self.main_library].root;
            let flipped = built.app.set_import_mode(
                built.app_module,
                root,
                crate::imports::ImportMode::Deferred,
            );
            debug_assert!(flipped, "handler module always imports the main library");
        }
        Ok(built)
    }
}

/// The full 22-application catalog: 17 Table II applications plus the five
/// below the 10 % initialization-overhead gate.
pub fn catalog() -> Vec<CatalogApp> {
    let mut apps = vec![
        // ---------------- RainbowCake ----------------
        CatalogApp {
            code: "R-DV",
            name: "dna-visualisation",
            suite: Suite::RainbowCake,
            main_library: "numpy",
            lib_type: "Scientific Computing",
            n_libs: 2,
            n_modules: 242,
            avg_depth: 4.75,
            e2e_ms: 2500.0,
            init_share: 0.987,
            frac_static_dead: 0.18,
            frac_workload_dead: 0.345,
            frac_rare: 0.04,
            frac_side_effectful: 0.02,
            rare_probability: 0.01,
            rare_as_library: None,
            wdead_sub: "polynomial",
            mem_before_mb: 180.0,
            mem_lib_frac: 0.6,
            mem_saveable_frac: 0.385,
            indirect_extra: false,
            extra_handler: true,
            antipattern: None,
            paper: PaperTargets {
                init_speedup: 2.30,
                e2e_speedup: 2.26,
                p99_init_speedup: 2.03,
                p99_e2e_speedup: 1.99,
                mem_reduction: 1.30,
                fig2_dyn_pct: None,
                fig2_stat_pct: None,
            },
        },
        CatalogApp {
            code: "R-GB",
            name: "graph-bfs",
            suite: Suite::RainbowCake,
            main_library: "igraph",
            lib_type: "Graph Processing",
            n_libs: 1,
            n_modules: 86,
            avg_depth: 3.74,
            e2e_ms: 900.0,
            init_share: 0.958,
            frac_static_dead: 0.12,
            frac_workload_dead: 0.265,
            frac_rare: 0.03,
            frac_side_effectful: 0.02,
            rare_probability: 0.01,
            rare_as_library: None,
            wdead_sub: "drawing",
            mem_before_mb: 95.0,
            mem_lib_frac: 0.6,
            mem_saveable_frac: 0.217,
            indirect_extra: false,
            extra_handler: false,
            antipattern: None,
            paper: PaperTargets {
                init_speedup: 1.71,
                e2e_speedup: 1.66,
                p99_init_speedup: 1.55,
                p99_e2e_speedup: 1.54,
                mem_reduction: 1.15,
                fig2_dyn_pct: None,
                fig2_stat_pct: None,
            },
        },
        CatalogApp {
            code: "R-GM",
            name: "graph-mst",
            suite: Suite::RainbowCake,
            main_library: "igraph",
            lib_type: "Graph Processing",
            n_libs: 1,
            n_modules: 86,
            avg_depth: 3.74,
            e2e_ms: 910.0,
            init_share: 0.968,
            frac_static_dead: 0.12,
            frac_workload_dead: 0.275,
            frac_rare: 0.03,
            frac_side_effectful: 0.02,
            rare_probability: 0.01,
            rare_as_library: None,
            wdead_sub: "drawing",
            mem_before_mb: 95.0,
            mem_lib_frac: 0.6,
            mem_saveable_frac: 0.217,
            indirect_extra: false,
            extra_handler: false,
            antipattern: None,
            paper: PaperTargets {
                init_speedup: 1.74,
                e2e_speedup: 1.70,
                p99_init_speedup: 1.67,
                p99_e2e_speedup: 1.64,
                mem_reduction: 1.15,
                fig2_dyn_pct: None,
                fig2_stat_pct: None,
            },
        },
        CatalogApp {
            code: "R-GPR",
            name: "graph-pagerank",
            suite: Suite::RainbowCake,
            main_library: "igraph",
            lib_type: "Graph Processing",
            n_libs: 1,
            n_modules: 86,
            avg_depth: 3.74,
            e2e_ms: 950.0,
            init_share: 0.929,
            frac_static_dead: 0.12,
            frac_workload_dead: 0.262,
            frac_rare: 0.03,
            frac_side_effectful: 0.02,
            rare_probability: 0.01,
            rare_as_library: None,
            wdead_sub: "drawing",
            mem_before_mb: 96.0,
            mem_lib_frac: 0.6,
            mem_saveable_frac: 0.205,
            indirect_extra: false,
            extra_handler: false,
            antipattern: None,
            paper: PaperTargets {
                init_speedup: 1.70,
                e2e_speedup: 1.62,
                p99_init_speedup: 1.69,
                p99_e2e_speedup: 1.64,
                mem_reduction: 1.14,
                fig2_dyn_pct: None,
                fig2_stat_pct: None,
            },
        },
        CatalogApp {
            code: "R-SA",
            name: "sentiment-analysis",
            suite: Suite::RainbowCake,
            main_library: "nltk",
            lib_type: "Natural Language Processing",
            n_libs: 4,
            n_modules: 265,
            avg_depth: 5.13,
            e2e_ms: 2200.0,
            init_share: 0.957,
            frac_static_dead: 0.0,
            frac_workload_dead: 0.26,
            frac_rare: 0.0,
            frac_side_effectful: 0.02,
            rare_probability: 0.01,
            rare_as_library: None,
            wdead_sub: "sem",
            mem_before_mb: 160.0,
            mem_lib_frac: 0.6,
            mem_saveable_frac: 0.109,
            indirect_extra: false,
            extra_handler: true,
            antipattern: None,
            paper: PaperTargets {
                init_speedup: 1.35,
                e2e_speedup: 1.33,
                p99_init_speedup: 1.37,
                p99_e2e_speedup: 1.34,
                mem_reduction: 1.07,
                fig2_dyn_pct: None,
                fig2_stat_pct: None,
            },
        },
        // ---------------- FaaSLight ----------------
        CatalogApp {
            code: "FL-PMP",
            name: "price-ml-predict",
            suite: Suite::FaasLight,
            main_library: "scipy",
            lib_type: "Machine Learning",
            n_libs: 3,
            n_modules: 832,
            avg_depth: 7.98,
            e2e_ms: 3184.67,
            init_share: 0.9755,
            frac_static_dead: 0.10,
            frac_workload_dead: 0.113,
            frac_rare: 0.024,
            frac_side_effectful: 0.015,
            rare_probability: 0.01,
            rare_as_library: None,
            wdead_sub: "signal",
            mem_before_mb: 123.64,
            mem_lib_frac: 0.566,
            mem_saveable_frac: 0.061,
            indirect_extra: false,
            extra_handler: true,
            antipattern: None,
            paper: PaperTargets {
                init_speedup: 1.31,
                e2e_speedup: 1.30,
                p99_init_speedup: 1.37,
                p99_e2e_speedup: 1.36,
                mem_reduction: 1.04,
                fig2_dyn_pct: Some(25.2),
                fig2_stat_pct: Some(10.0),
            },
        },
        CatalogApp {
            code: "FL-SN",
            name: "skimage-numpy",
            suite: Suite::FaasLight,
            main_library: "scipy",
            lib_type: "Image Processing",
            n_libs: 14,
            n_modules: 656,
            avg_depth: 5.32,
            e2e_ms: 1821.73,
            init_share: 0.9103,
            frac_static_dead: 0.22,
            frac_workload_dead: 0.042,
            frac_rare: 0.029,
            frac_side_effectful: 0.189,
            rare_probability: 0.01,
            rare_as_library: None,
            wdead_sub: "restoration",
            mem_before_mb: 112.09,
            mem_lib_frac: 0.642,
            mem_saveable_frac: 0.0,
            indirect_extra: false,
            extra_handler: false,
            antipattern: None,
            paper: PaperTargets {
                init_speedup: 1.41,
                e2e_speedup: 1.36,
                p99_init_speedup: 1.41,
                p99_e2e_speedup: 1.37,
                mem_reduction: 1.00,
                fig2_dyn_pct: Some(48.0),
                fig2_stat_pct: Some(22.0),
            },
        },
        CatalogApp {
            code: "FL-PWM",
            name: "predict-wine-ml",
            suite: Suite::FaasLight,
            main_library: "pandas",
            lib_type: "Machine Learning",
            n_libs: 6,
            n_modules: 1385,
            avg_depth: 7.57,
            e2e_ms: 6201.17,
            init_share: 0.9375,
            frac_static_dead: 0.25,
            frac_workload_dead: 0.139,
            frac_rare: 0.043,
            frac_side_effectful: 0.088,
            rare_probability: 0.01,
            rare_as_library: None,
            wdead_sub: "plotting",
            mem_before_mb: 252.08,
            mem_lib_frac: 0.583,
            mem_saveable_frac: 0.432,
            indirect_extra: false,
            extra_handler: true,
            antipattern: None,
            paper: PaperTargets {
                init_speedup: 1.76,
                e2e_speedup: 1.68,
                p99_init_speedup: 1.59,
                p99_e2e_speedup: 1.52,
                mem_reduction: 1.34,
                fig2_dyn_pct: Some(52.0),
                fig2_stat_pct: Some(25.0),
            },
        },
        CatalogApp {
            code: "FL-TWM",
            name: "train-wine-ml",
            suite: Suite::FaasLight,
            main_library: "pandas",
            lib_type: "Machine Learning",
            n_libs: 6,
            n_modules: 1385,
            avg_depth: 7.57,
            e2e_ms: 5154.34,
            init_share: 0.755,
            frac_static_dead: 0.21,
            frac_workload_dead: 0.187,
            frac_rare: 0.044,
            frac_side_effectful: 0.058,
            rare_probability: 0.01,
            rare_as_library: None,
            wdead_sub: "plotting",
            mem_before_mb: 251.91,
            mem_lib_frac: 0.577,
            mem_saveable_frac: 0.441,
            indirect_extra: false,
            extra_handler: true,
            antipattern: None,
            paper: PaperTargets {
                init_speedup: 1.79,
                e2e_speedup: 1.50,
                p99_init_speedup: 1.72,
                p99_e2e_speedup: 1.46,
                mem_reduction: 1.34,
                fig2_dyn_pct: Some(49.9),
                fig2_stat_pct: Some(21.0),
            },
        },
        CatalogApp {
            code: "FL-SA",
            name: "sentiment-analysis-fl",
            suite: Suite::FaasLight,
            main_library: "pandas",
            lib_type: "Natural Language Processing",
            n_libs: 6,
            n_modules: 1081,
            avg_depth: 6.8,
            e2e_ms: 4331.43,
            init_share: 0.985,
            frac_static_dead: 0.18,
            frac_workload_dead: 0.272,
            frac_rare: 0.05,
            frac_side_effectful: 0.281,
            rare_probability: 0.01,
            rare_as_library: None,
            wdead_sub: "plotting",
            mem_before_mb: 203.54,
            mem_lib_frac: 0.673,
            mem_saveable_frac: 0.502,
            indirect_extra: false,
            extra_handler: true,
            antipattern: None,
            paper: PaperTargets {
                init_speedup: 2.01,
                e2e_speedup: 2.01,
                p99_init_speedup: 2.15,
                p99_e2e_speedup: 2.15,
                mem_reduction: 1.51,
                fig2_dyn_pct: Some(78.32),
                fig2_stat_pct: Some(18.0),
            },
        },
        // ---------------- FaaS Workbench ----------------
        CatalogApp {
            code: "FWB-CML",
            name: "chameleon",
            suite: Suite::FaasWorkbench,
            main_library: "pkg_resources",
            lib_type: "Package Management",
            n_libs: 3,
            n_modules: 102,
            avg_depth: 4.8,
            e2e_ms: 650.0,
            init_share: 0.328,
            frac_static_dead: 0.05,
            frac_workload_dead: 0.075,
            frac_rare: 0.02,
            frac_side_effectful: 0.02,
            rare_probability: 0.01,
            rare_as_library: None,
            wdead_sub: "vendor",
            mem_before_mb: 80.0,
            mem_lib_frac: 0.55,
            mem_saveable_frac: 0.049,
            indirect_extra: false,
            extra_handler: false,
            antipattern: None,
            paper: PaperTargets {
                init_speedup: 1.17,
                e2e_speedup: 1.05,
                p99_init_speedup: 1.24,
                p99_e2e_speedup: 1.07,
                mem_reduction: 1.03,
                fig2_dyn_pct: None,
                fig2_stat_pct: None,
            },
        },
        CatalogApp {
            code: "FWB-MT",
            name: "model-training",
            suite: Suite::FaasWorkbench,
            main_library: "scipy",
            lib_type: "Machine Learning",
            n_libs: 5,
            n_modules: 1307,
            avg_depth: 8.16,
            e2e_ms: 4200.0,
            init_share: 0.476,
            frac_static_dead: 0.06,
            frac_workload_dead: 0.084,
            frac_rare: 0.03,
            frac_side_effectful: 0.02,
            rare_probability: 0.01,
            rare_as_library: None,
            wdead_sub: "sparse",
            mem_before_mb: 260.0,
            mem_lib_frac: 0.6,
            mem_saveable_frac: 0.123,
            indirect_extra: false,
            extra_handler: true,
            antipattern: None,
            paper: PaperTargets {
                init_speedup: 1.21,
                e2e_speedup: 1.09,
                p99_init_speedup: 1.20,
                p99_e2e_speedup: 1.09,
                mem_reduction: 1.08,
                fig2_dyn_pct: None,
                fig2_stat_pct: None,
            },
        },
        CatalogApp {
            code: "FWB-MS",
            name: "model-serving",
            suite: Suite::FaasWorkbench,
            main_library: "scipy",
            lib_type: "Machine Learning",
            n_libs: 16,
            n_modules: 1463,
            avg_depth: 7.97,
            e2e_ms: 4800.0,
            init_share: 0.486,
            frac_static_dead: 0.06,
            frac_workload_dead: 0.097,
            frac_rare: 0.03,
            frac_side_effectful: 0.02,
            rare_probability: 0.01,
            rare_as_library: None,
            wdead_sub: "sparse",
            mem_before_mb: 300.0,
            mem_lib_frac: 0.6,
            mem_saveable_frac: 0.152,
            indirect_extra: true,
            extra_handler: true,
            antipattern: None,
            paper: PaperTargets {
                init_speedup: 1.23,
                e2e_speedup: 1.10,
                p99_init_speedup: 1.22,
                p99_e2e_speedup: 1.10,
                mem_reduction: 1.10,
                fig2_dyn_pct: None,
                fig2_stat_pct: None,
            },
        },
        // ---------------- Real-world ----------------
        CatalogApp {
            code: "OCR",
            name: "ocrmypdf",
            suite: Suite::RealWorld,
            main_library: "pdfminer",
            lib_type: "Document Processing",
            n_libs: 20,
            n_modules: 586,
            avg_depth: 6.4,
            e2e_ms: 3500.0,
            init_share: 0.539,
            frac_static_dead: 0.10,
            frac_workload_dead: 0.166,
            frac_rare: 0.03,
            frac_side_effectful: 0.02,
            rare_probability: 0.01,
            rare_as_library: None,
            wdead_sub: "cmap",
            mem_before_mb: 220.0,
            mem_lib_frac: 0.6,
            mem_saveable_frac: 0.179,
            indirect_extra: true,
            extra_handler: true,
            antipattern: None,
            paper: PaperTargets {
                init_speedup: 1.42,
                e2e_speedup: 1.19,
                p99_init_speedup: 1.63,
                p99_e2e_speedup: 1.00,
                mem_reduction: 1.12,
                fig2_dyn_pct: None,
                fig2_stat_pct: None,
            },
        },
        CatalogApp {
            code: "CVE",
            name: "cve-bin-tool",
            suite: Suite::RealWorld,
            main_library: "cve_bin_tool",
            lib_type: "Security",
            n_libs: 6,
            n_modules: 760,
            avg_depth: 6.15,
            e2e_ms: 5200.0,
            init_share: 0.784,
            frac_static_dead: 0.06,
            frac_workload_dead: 0.07,
            frac_rare: 0.083,
            frac_side_effectful: 0.02,
            rare_probability: 0.008,
            rare_as_library: Some("xmlschema"),
            wdead_sub: "checkers_extra",
            mem_before_mb: 310.0,
            mem_lib_frac: 0.6,
            mem_saveable_frac: 0.289,
            indirect_extra: false,
            extra_handler: true,
            antipattern: None,
            paper: PaperTargets {
                init_speedup: 1.27,
                e2e_speedup: 1.20,
                p99_init_speedup: 1.08,
                p99_e2e_speedup: 1.01,
                mem_reduction: 1.21,
                fig2_dyn_pct: None,
                fig2_stat_pct: None,
            },
        },
        CatalogApp {
            code: "SensorTD",
            name: "sensor-telemetry-data",
            suite: Suite::RealWorld,
            main_library: "prophet",
            lib_type: "IoT Predictive Analysis",
            n_libs: 5,
            n_modules: 777,
            avg_depth: 5.9,
            e2e_ms: 6000.0,
            init_share: 0.166,
            frac_static_dead: 0.15,
            frac_workload_dead: 0.307,
            frac_rare: 0.04,
            frac_side_effectful: 0.02,
            rare_probability: 0.01,
            rare_as_library: None,
            wdead_sub: "diagnostics",
            mem_before_mb: 420.0,
            mem_lib_frac: 0.6,
            mem_saveable_frac: 0.333,
            indirect_extra: false,
            extra_handler: true,
            antipattern: None,
            paper: PaperTargets {
                init_speedup: 1.99,
                e2e_speedup: 1.09,
                p99_init_speedup: 1.83,
                p99_e2e_speedup: 1.10,
                mem_reduction: 1.25,
                fig2_dyn_pct: None,
                fig2_stat_pct: None,
            },
        },
        CatalogApp {
            code: "HFP",
            name: "heart-failure-prediction",
            suite: Suite::RealWorld,
            main_library: "scipy",
            lib_type: "Health Care",
            n_libs: 5,
            n_modules: 982,
            avg_depth: 8.79,
            e2e_ms: 2800.0,
            init_share: 0.838,
            frac_static_dead: 0.09,
            frac_workload_dead: 0.155,
            frac_rare: 0.03,
            frac_side_effectful: 0.02,
            rare_probability: 0.01,
            rare_as_library: None,
            wdead_sub: "integrate",
            mem_before_mb: 190.0,
            mem_lib_frac: 0.6,
            mem_saveable_frac: 0.217,
            indirect_extra: false,
            extra_handler: false,
            antipattern: None,
            paper: PaperTargets {
                init_speedup: 1.38,
                e2e_speedup: 1.30,
                p99_init_speedup: 1.46,
                p99_e2e_speedup: 1.39,
                mem_reduction: 1.15,
                fig2_dyn_pct: None,
                fig2_stat_pct: None,
            },
        },
    ];

    // The five applications below the 10 % initialization-overhead gate
    // (17 of 22 show inefficiencies; these five are excluded by the gate).
    apps.extend(trivial_apps());
    apps
}

fn trivial_apps() -> Vec<CatalogApp> {
    let trivial = |code: &'static str,
                   name: &'static str,
                   suite: Suite,
                   lib: &'static str,
                   e2e: f64,
                   init_share: f64| CatalogApp {
        code,
        name,
        suite,
        main_library: lib,
        lib_type: "Utility",
        n_libs: 1,
        n_modules: 24,
        avg_depth: 3.0,
        e2e_ms: e2e,
        init_share,
        frac_static_dead: 0.0,
        frac_workload_dead: 0.0,
        frac_rare: 0.0,
        frac_side_effectful: 0.0,
        rare_probability: 0.0,
        rare_as_library: None,
        wdead_sub: "unused",
        mem_before_mb: 60.0,
        mem_lib_frac: 0.3,
        mem_saveable_frac: 0.0,
        indirect_extra: false,
        extra_handler: false,
        antipattern: None,
        paper: PaperTargets {
            init_speedup: 1.0,
            e2e_speedup: 1.0,
            p99_init_speedup: 1.0,
            p99_e2e_speedup: 1.0,
            mem_reduction: 1.0,
            fig2_dyn_pct: None,
            fig2_stat_pct: None,
        },
    };
    vec![
        trivial(
            "R-UL",
            "uploader",
            Suite::RainbowCake,
            "boto_stub",
            420.0,
            0.06,
        ),
        trivial(
            "R-TN",
            "thumbnailer",
            Suite::RainbowCake,
            "pillow_lite",
            380.0,
            0.08,
        ),
        trivial(
            "FWB-FLT",
            "float-ops",
            Suite::FaasWorkbench,
            "mathkit",
            120.0,
            0.03,
        ),
        trivial(
            "FWB-JSN",
            "json-dumps",
            Suite::FaasWorkbench,
            "jsonkit",
            150.0,
            0.07,
        ),
        trivial(
            "FL-HW",
            "hello-rest",
            Suite::FaasLight,
            "microweb",
            90.0,
            0.05,
        ),
    ]
}

/// Returns the catalog entry with the given short code.
///
/// Resolves the published 22-app catalog first, then the anti-pattern
/// fixture apps ([`antipattern_apps`], codes `AP-*`).
pub fn by_code(code: &str) -> Option<CatalogApp> {
    catalog()
        .into_iter()
        .find(|a| a.code == code)
        .or_else(|| antipattern_apps().into_iter().find(|a| a.code == code))
}

/// Five deliberately mis-structured applications, each bearing at least one
/// anti-pattern from the analyzer's lint catalog.
///
/// They derive from `R-GB` (the smallest above-gate entry, so lint fixtures
/// stay fast to build) and are kept **out of** [`catalog`] so the published
/// evaluation set is untouched; [`by_code`] resolves their `AP-*` codes.
///
/// | code | planted anti-pattern | expected lints |
/// |------|----------------------|----------------|
/// | `AP-MONO`  | monolithic eager init (inherited from R-GB) | `eager-monolithic-init` |
/// | `AP-TREE`  | 96-module library nobody calls | `oversized-dependency-tree`, `unused-heavy-library` |
/// | `AP-HEAVY` | compact but expensive unused library | `unused-heavy-library` |
/// | `AP-CHAT`  | six back-to-back client calls per request | `missing-connection-reuse` |
/// | `AP-LAZY`  | hot main library shipped deferred | `init-in-handler`, `handler-hot-import` |
pub fn antipattern_apps() -> Vec<CatalogApp> {
    let base = |code: &'static str, name: &'static str, seed: Option<AntipatternSeed>| {
        let mut app = catalog()
            .into_iter()
            .find(|a| a.code == "R-GB")
            .expect("R-GB is in the catalog");
        app.code = code;
        app.name = name;
        app.antipattern = seed;
        app
    };
    let mut lazy = base(
        "AP-LAZY",
        "ap-hot-deferral",
        Some(AntipatternSeed {
            deferred_hot: true,
            ..AntipatternSeed::default()
        }),
    );
    // The restore-eager fix must pass the safety verifier, so the deferred
    // main library carries no side-effectful modules.
    lazy.frac_side_effectful = 0.0;
    vec![
        base("AP-MONO", "ap-monolithic-init", None),
        base(
            "AP-TREE",
            "ap-oversized-tree",
            Some(AntipatternSeed {
                unused_lib_modules: 96,
                unused_lib_init_ms: 120.0,
                ..AntipatternSeed::default()
            }),
        ),
        base(
            "AP-HEAVY",
            "ap-unused-heavy-library",
            Some(AntipatternSeed {
                unused_lib_modules: 24,
                unused_lib_init_ms: 160.0,
                ..AntipatternSeed::default()
            }),
        ),
        base(
            "AP-CHAT",
            "ap-chatty-client",
            Some(AntipatternSeed {
                chatty_calls: Some(6),
                ..AntipatternSeed::default()
            }),
        ),
        lazy,
    ]
}

/// Returns a deterministic population of `n` anti-pattern-bearing apps by
/// cycling [`antipattern_apps`] in order, mirroring [`fleet_population`].
pub fn antipattern_population(n: usize) -> Vec<CatalogApp> {
    let base = antipattern_apps();
    (0..n).map(|i| base[i % base.len()].clone()).collect()
}

/// Returns a deterministic population of `n` applications for fleet-scale
/// experiments by cycling the 22-entry catalog in order.
///
/// Entry `i` is `catalog()[i % 22]`; the fleet orchestrator diversifies
/// repeated entries through per-app build seeds, so two copies of the same
/// catalog entry still synthesize distinct module structures.
pub fn fleet_population(n: usize) -> Vec<CatalogApp> {
    let base = catalog();
    (0..n).map(|i| base[i % base.len()].clone()).collect()
}

/// Returns a deterministic population of `n` *lightweight* applications
/// by cycling the five single-library, below-gate fixture apps (`R-UL`,
/// `R-TN`, `FWB-FLT`, `FWB-JSN`, `FL-HW`).
///
/// Each entry simulates in well under a millisecond, so 10k-app fleets
/// finish in seconds — this is the population behind the orchestrator
/// scaling bench and the scale-out determinism suite, where per-app cost
/// would otherwise drown the scheduling behavior under test.
pub fn light_population(n: usize) -> Vec<CatalogApp> {
    let base = trivial_apps();
    (0..n).map(|i| base[i % base.len()].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_22_apps() {
        assert_eq!(catalog().len(), 22);
    }

    #[test]
    fn fleet_population_cycles_catalog() {
        let pop = fleet_population(50);
        assert_eq!(pop.len(), 50);
        assert_eq!(pop[0].code, catalog()[0].code);
        assert_eq!(pop[22].code, catalog()[0].code);
        assert_eq!(pop[23].code, catalog()[1].code);
        assert!(fleet_population(0).is_empty());
    }

    #[test]
    fn light_population_cycles_the_trivial_fixtures() {
        let pop = light_population(12);
        assert_eq!(pop.len(), 12);
        assert_eq!(pop[0].code, "R-UL");
        assert_eq!(pop[4].code, "FL-HW");
        assert_eq!(pop[5].code, "R-UL");
        assert!(pop.iter().all(|a| a.n_libs == 1));
        assert!(light_population(0).is_empty());
    }

    #[test]
    fn seventeen_apps_clear_the_gate() {
        let above = catalog().iter().filter(|a| a.above_gate()).count();
        assert_eq!(above, 17);
    }

    #[test]
    fn fractions_are_consistent() {
        for app in catalog() {
            let hot = app.frac_hot();
            assert!(
                hot > 0.0 && hot <= 1.0,
                "{}: hot fraction {hot} out of range",
                app.code
            );
            assert!(app.frac_deferrable() < 1.0, "{}", app.code);
            assert!((0.0..=1.0).contains(&app.init_share), "{}", app.code);
        }
    }

    #[test]
    fn every_entry_builds_and_validates() {
        for app in catalog() {
            let built = app
                .build(17)
                .unwrap_or_else(|e| panic!("{} failed to build: {e}", app.code));
            assert!(!built.app.handlers().is_empty(), "{}", app.code);
        }
    }

    #[test]
    fn module_counts_match_table_ii() {
        for app in catalog() {
            let built = app.build(17).unwrap();
            // 1 app module + n_modules library modules.
            assert_eq!(
                built.app.modules().len(),
                app.n_modules + 1,
                "{}: module count mismatch",
                app.code
            );
        }
    }

    #[test]
    fn eager_init_cost_matches_target() {
        for app in catalog().iter().filter(|a| a.above_gate()) {
            let built = app.build(17).unwrap();
            let init = built.app.eager_init_cost(built.app_module);
            let target = app.e2e_ms * app.init_share;
            let err = (init.as_millis_f64() - target).abs() / target;
            assert!(
                err < 0.02,
                "{}: init {} vs target {target}ms",
                app.code,
                init.as_millis_f64()
            );
        }
    }

    #[test]
    fn deferrable_fraction_realizes_target_speedup() {
        // Structural check: removing the deferrable subpackages' init cost
        // should reproduce the paper's initialization speedup within ~10 %.
        for app in catalog().iter().filter(|a| a.above_gate()) {
            let expected = 1.0 / (1.0 - app.frac_deferrable());
            let rel = (expected - app.paper.init_speedup).abs() / app.paper.init_speedup;
            assert!(
                rel < 0.12,
                "{}: structural speedup {expected:.2} vs paper {:.2}",
                app.code,
                app.paper.init_speedup
            );
        }
    }

    #[test]
    fn workload_weights_are_normalized() {
        for app in catalog() {
            let sum: f64 = app.workload_weights().iter().map(|(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: weights sum {sum}", app.code);
        }
    }

    #[test]
    fn admin_handler_exists_for_workload_dead_apps() {
        let rsa = by_code("R-SA").unwrap();
        let built = rsa.build(3).unwrap();
        assert!(built.app.handler_by_name("admin").is_some());
        let weights = rsa.workload_weights();
        let admin_w = weights.iter().find(|(n, _)| n == "admin").unwrap().1;
        assert_eq!(admin_w, 0.0);
    }

    #[test]
    fn cve_rare_library_is_xmlschema() {
        let cve = by_code("CVE").unwrap();
        let built = cve.build(3).unwrap();
        assert!(built.libraries.contains_key("xmlschema"));
        assert!(built.app.module_by_name("xmlschema").is_some());
    }

    #[test]
    fn rsa_wdead_subpackage_is_sem() {
        let rsa = by_code("R-SA").unwrap();
        let built = rsa.build(3).unwrap();
        assert!(built.app.module_by_name("nltk.sem").is_some());
    }

    #[test]
    fn by_code_lookup() {
        assert!(by_code("R-DV").is_some());
        assert!(by_code("NOPE").is_none());
    }

    #[test]
    fn builds_are_deterministic() {
        let a = by_code("R-GB").unwrap().build(5).unwrap();
        let b = by_code("R-GB").unwrap().build(5).unwrap();
        assert_eq!(a.app, b.app);
    }

    #[test]
    fn antipattern_apps_build_and_stay_out_of_the_catalog() {
        let apps = antipattern_apps();
        assert_eq!(apps.len(), 5);
        for app in &apps {
            let built = app
                .build(11)
                .unwrap_or_else(|e| panic!("{} failed to build: {e}", app.code));
            assert!(!built.app.handlers().is_empty(), "{}", app.code);
            assert!(by_code(app.code).is_some(), "{}", app.code);
        }
        // Seeding never grows the published evaluation set.
        assert_eq!(catalog().len(), 22);
        assert!(catalog().iter().all(|a| a.antipattern.is_none()));
    }

    #[test]
    fn antipattern_population_cycles_fixture_apps() {
        let pop = antipattern_population(7);
        assert_eq!(pop.len(), 7);
        assert_eq!(pop[5].code, pop[0].code);
        assert_eq!(pop[6].code, pop[1].code);
        assert!(antipattern_population(0).is_empty());
    }

    #[test]
    fn planted_unused_library_is_never_called() {
        let built = by_code("AP-HEAVY").unwrap().build(11).unwrap();
        assert!(built.libraries.contains_key("legacysdk"));
        let root = built.app.module_by_name("legacysdk").unwrap();
        for h in built.app.handlers() {
            assert!(
                !crate::source::function_uses_module(&built.app, h.function(), root),
                "{} reaches legacysdk",
                h.name()
            );
        }
        // But the handler module still imports it eagerly — the anti-pattern.
        assert!(built
            .app
            .imports_of(built.app_module)
            .iter()
            .any(|d| d.target == root && d.mode == crate::imports::ImportMode::Global));
    }

    #[test]
    fn oversized_fixture_has_at_least_64_planted_modules() {
        let built = by_code("AP-TREE").unwrap().build(11).unwrap();
        let lib = &built.libraries["legacysdk"];
        assert!(built.app.library(lib.id).module_count() >= 64);
    }

    #[test]
    fn chatty_fixture_makes_six_consecutive_client_calls() {
        let built = by_code("AP-CHAT").unwrap().build(11).unwrap();
        let f = built
            .app
            .handlers()
            .iter()
            .find(|h| h.name() == "handler")
            .unwrap()
            .function();
        let body = built.app.function(f).body();
        let mut best = 0usize;
        let mut run = 0usize;
        let mut last = None;
        for stmt in body {
            match &stmt.kind {
                crate::function::StmtKind::Call(site) if last == Some(site.target) => {
                    run += 1;
                    best = best.max(run);
                }
                crate::function::StmtKind::Call(site) => {
                    last = Some(site.target);
                    run = 1;
                    best = best.max(run);
                }
                _ => {
                    last = None;
                    run = 0;
                }
            }
        }
        assert!(best >= 6, "longest same-target call run is {best}");
    }

    #[test]
    fn deferred_hot_fixture_ships_with_lazy_main_import() {
        let app = by_code("AP-LAZY").unwrap();
        assert_eq!(app.frac_side_effectful, 0.0);
        let built = app.build(11).unwrap();
        let root = built.libraries["igraph"].root;
        let decl = built
            .app
            .imports_of(built.app_module)
            .iter()
            .find(|d| d.target == root)
            .expect("handler module imports igraph");
        assert_eq!(decl.mode, crate::imports::ImportMode::Deferred);
        // Every entry point statically reaches the deferred library.
        for h in built.app.handlers() {
            assert!(
                crate::source::function_uses_package(&built.app, h.function(), "igraph"),
                "{} does not reach igraph",
                h.name()
            );
        }
    }
}
