//! Source projection: renders a module as Python-like source text.
//!
//! The model, not text, is the source of truth; this module *projects* a
//! module into readable code so that optimization reports can show
//! before/after diffs in the style of the paper's Table I, and so the
//! optimizer's edits are human-auditable.

use std::fmt::Write as _;

use crate::app::Application;
use crate::function::{Stmt, StmtKind};
use crate::ids::ModuleId;

/// Renders `module` as Python-like source text reflecting its *current*
/// import modes: global imports appear at the top level, deferred imports
/// appear commented out at the top level and re-inserted inside the first
/// function that reaches them.
pub fn render_module(app: &Application, module: ModuleId) -> String {
    let m = app.module(module);
    let mut out = String::new();
    let _ = writeln!(out, "# {}", m.file());
    for decl in app.imports_of(module) {
        let target = app.module(decl.target);
        if decl.mode.is_global() {
            let _ = writeln!(out, "import {}  # line {}", target.name(), decl.line);
        } else {
            let _ = writeln!(
                out,
                "# import {}  # line {} (deferred by slimstart)",
                target.name(),
                decl.line
            );
        }
    }
    let by_module = app.functions_by_module();
    for fid in &by_module[module.index()] {
        let f = app.function(*fid);
        let _ = writeln!(out);
        let _ = writeln!(out, "def {}():  # line {}", f.name(), f.line());
        let deferred: Vec<_> = app
            .imports_of(module)
            .iter()
            .filter(|d| d.mode.is_deferred())
            .collect();
        // Deferred imports surface inside functions that use the target.
        for d in &deferred {
            if function_uses_module(app, *fid, d.target) {
                let _ = writeln!(
                    out,
                    "    import {}  # deferred by slimstart",
                    app.module(d.target).name()
                );
            }
        }
        render_stmts(app, f.body(), 1, &mut out);
        if f.body().is_empty() {
            let _ = writeln!(out, "    pass");
        }
    }
    out
}

fn render_stmts(app: &Application, stmts: &[Stmt], indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::Work(d) => {
                let _ = writeln!(
                    out,
                    "{pad}compute({:.3})  # line {}",
                    d.as_millis_f64(),
                    stmt.line
                );
            }
            StmtKind::Call(site) => {
                let callee = app.function(site.target);
                let owner = app.module(callee.module());
                let _ = writeln!(
                    out,
                    "{pad}{}.{}()  # line {}",
                    owner.name(),
                    callee.name(),
                    stmt.line
                );
            }
            StmtKind::Touch(m) => {
                let _ = writeln!(
                    out,
                    "{pad}_ = {}.CONSTANT  # line {}",
                    app.module(*m).name(),
                    stmt.line
                );
            }
            StmtKind::Branch { probability, body } => {
                let _ = writeln!(
                    out,
                    "{pad}if request_condition(p={probability}):  # line {}",
                    stmt.line
                );
                render_stmts(app, body, indent + 1, out);
                if body.is_empty() {
                    let _ = writeln!(out, "{pad}    pass");
                }
            }
        }
    }
}

/// Whether `function` (transitively) calls into `target_module`.
///
/// Used to decide where a deferred import surfaces in rendered source and by
/// the optimizer to locate first-use points.
pub fn function_uses_module(
    app: &Application,
    function: crate::ids::FunctionId,
    target_module: ModuleId,
) -> bool {
    let mut seen = vec![false; app.functions().len()];
    let mut stack = vec![function];
    while let Some(f) = stack.pop() {
        if seen[f.index()] {
            continue;
        }
        seen[f.index()] = true;
        let func = app.function(f);
        if func.module() == target_module || func.touched_modules().contains(&target_module) {
            return true;
        }
        for site in func.call_sites() {
            stack.push(site.target);
        }
    }
    false
}

/// Whether `function` (transitively) calls into any module of the dotted
/// `package` subtree.
pub fn function_uses_package(
    app: &Application,
    function: crate::ids::FunctionId,
    package: &str,
) -> bool {
    let mut seen = vec![false; app.functions().len()];
    let mut stack = vec![function];
    while let Some(f) = stack.pop() {
        if seen[f.index()] {
            continue;
        }
        seen[f.index()] = true;
        let func = app.function(f);
        if app.module(func.module()).in_package(package)
            || func
                .touched_modules()
                .iter()
                .any(|m| app.module(*m).in_package(package))
        {
            return true;
        }
        for site in func.call_sites() {
            stack.push(site.target);
        }
    }
    false
}

/// A single line-level edit made by an optimizer, for report rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeEdit {
    /// The file the edit applies to.
    pub file: String,
    /// The 1-based line of the original global import.
    pub line: u32,
    /// The original statement text.
    pub before: String,
    /// The replacement at the original site (commented-out import).
    pub after: String,
    /// Description of where the deferred import was inserted.
    pub inserted: String,
}

impl std::fmt::Display for CodeEdit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{}:{}", self.file, self.line)?;
        writeln!(f, "  - {}", self.before)?;
        writeln!(f, "  + {}", self.after)?;
        write!(f, "  + {}", self.inserted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::AppBuilder;
    use crate::imports::ImportMode;
    use slimstart_simcore::time::SimDuration;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    fn demo_app() -> Application {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("nltk");
        let h = b.add_app_module("handler", ms(1), 1);
        let root = b.add_library_module("nltk", ms(1), 1, false, lib);
        let sem = b.add_library_module("nltk.sem", ms(1), 1, false, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        b.add_import(root, sem, 2, ImportMode::Global).unwrap();
        let fs = b.add_function(
            "parse",
            sem,
            4,
            vec![Stmt {
                line: 5,
                kind: StmtKind::Work(ms(1)),
            }],
        );
        let fh = b.add_function(
            "main",
            h,
            4,
            vec![Stmt {
                line: 5,
                kind: StmtKind::call(fs),
            }],
        );
        b.add_handler("main", fh);
        b.finish().unwrap()
    }

    #[test]
    fn global_imports_render_at_top_level() {
        let app = demo_app();
        let h = app.module_by_name("handler").unwrap();
        let src = render_module(&app, h);
        assert!(src.contains("import nltk  # line 2"));
        assert!(src.contains("def main():"));
    }

    #[test]
    fn deferred_imports_render_commented_and_inside_user() {
        let mut app = demo_app();
        let root = app.module_by_name("nltk").unwrap();
        let sem = app.module_by_name("nltk.sem").unwrap();
        app.set_import_mode(root, sem, ImportMode::Deferred);
        let src = render_module(&app, root);
        assert!(src.contains("# import nltk.sem"));
        assert!(src.contains("(deferred by slimstart)"));
    }

    #[test]
    fn function_uses_module_is_transitive() {
        let app = demo_app();
        let fh = app.handlers()[0].function();
        let sem = app.module_by_name("nltk.sem").unwrap();
        let root = app.module_by_name("nltk").unwrap();
        assert!(function_uses_module(&app, fh, sem));
        assert!(!function_uses_module(&app, fh, root)); // no function in nltk root
    }

    #[test]
    fn code_edit_display_shows_diff() {
        let edit = CodeEdit {
            file: "nltk/__init__.py".into(),
            line: 2,
            before: "import nltk.sem".into(),
            after: "# import nltk.sem".into(),
            inserted: "import nltk.sem at nltk/sem_user.py:10".into(),
        };
        let shown = edit.to_string();
        assert!(shown.contains("nltk/__init__.py:2"));
        assert!(shown.contains("- import nltk.sem"));
    }
}
