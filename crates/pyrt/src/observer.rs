//! Execution observers: the attachment point for sampling profilers.
//!
//! The paper's profiler attaches to a running function without instrumenting
//! it (TC-1): it observes time passing and snapshots the stack at sample
//! points. [`ExecutionObserver`] is that seam. The runtime reports every
//! virtual-time advance; the observer may charge *overhead* time back (the
//! cost of taking samples), which is exactly what Fig. 9 measures.

use slimstart_appmodel::Application;
use slimstart_simcore::time::{SimDuration, SimTime};

use crate::stack::CallStack;

/// Context handed to an observer on each virtual-time advance.
#[derive(Debug)]
pub struct AdvanceContext<'a> {
    /// The application being executed.
    pub app: &'a Application,
    /// The live call stack during the advance (constant over the interval —
    /// the runtime only advances time within one statement).
    pub stack: &'a CallStack,
    /// Start of the interval.
    pub from: SimTime,
    /// End of the interval (exclusive).
    pub to: SimTime,
}

/// An attachment that observes a process's execution.
///
/// Implementations must be deterministic: they see virtual time only.
pub trait ExecutionObserver {
    /// Called for every virtual-time advance while code executes.
    ///
    /// Returns the *overhead* the observer imposes during this interval
    /// (e.g. per-sample capture cost); the runtime adds it to the clock, so
    /// profiled runs are measurably slower — the paper's Fig. 9 effect.
    fn on_advance(&mut self, ctx: AdvanceContext<'_>) -> SimDuration;

    /// Called when an invocation completes; returns flush/teardown overhead
    /// (e.g. handing the local sample buffer to the asynchronous collector).
    fn on_invocation_end(&mut self, app: &Application) -> SimDuration {
        let _ = app;
        SimDuration::ZERO
    }

    /// Additional resident memory the attachment pins (sample buffer), KiB.
    fn extra_mem_kb(&self) -> u64 {
        0
    }
}

/// The default no-op observer: zero overhead, observes nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl ExecutionObserver for NullObserver {
    fn on_advance(&mut self, _ctx: AdvanceContext<'_>) -> SimDuration {
        SimDuration::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_is_free() {
        let mut b = slimstart_appmodel::app::AppBuilder::new("t");
        let m = b.add_app_module("handler", SimDuration::ZERO, 0);
        let f = b.add_function("main", m, 1, vec![]);
        b.add_handler("h", f);
        let app = b.finish().unwrap();
        let stack = CallStack::new();
        let mut obs = NullObserver;
        let d = obs.on_advance(AdvanceContext {
            app: &app,
            stack: &stack,
            from: SimTime::ZERO,
            to: SimTime::from_millis(5),
        });
        assert_eq!(d, SimDuration::ZERO);
        assert_eq!(obs.on_invocation_end(&app), SimDuration::ZERO);
        assert_eq!(obs.extra_mem_kb(), 0);
    }
}
