//! Cold-start snapshots: memoized init replays.
//!
//! The cost model makes every cold start of a deployment a deterministic
//! replay of the same transitive import sequence — the loader plan walk,
//! the per-module init charges, the memory growth. A [`Snapshot`] captures
//! the complete outcome of one such replay (load order, per-module raw
//! init charges and memory, the resulting module-cache bitset) so the
//! second and later cold starts of the same deployment restore it in
//! O(modules) straight-line work instead of re-walking the plan.
//!
//! A [`SnapshotStore`] keys snapshots by [`SnapshotKey`]: the entry module
//! plus a fingerprint over everything that shapes the replay — module
//! names, `stripped` flags, init costs, memory sizes, and the
//! eager-vs-deferred mode of every import. Redeploying an optimized
//! application (deferred imports, stripped modules) therefore misses the
//! cache and re-snapshots; the platform additionally folds its chaos
//! configuration into the fingerprint so perturbed experiments never share
//! entries with clean ones.
//!
//! Restores are byte-exact: [`crate::process::Process::restore_snapshot`]
//! re-applies the stored raw charges through the restoring process's own
//! `time_scale` with the same per-module rounding the loader uses, so
//! load events, clocks, and memory are identical to a real replay at any
//! jittered container speed. Snapshots are only taken from — and only
//! restored into — unobserved processes: a profiling deployment must run
//! its observer callbacks for real.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use fxhash::FxHasher;
use slimstart_appmodel::{Application, ModuleId};
use slimstart_simcore::time::SimDuration;

/// Identifies one memoized cold-start outcome: the entry module plus a
/// fingerprint of the deployment (and any platform perturbation) it was
/// captured under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SnapshotKey {
    /// The handler's entry module the cold start began at.
    pub root: ModuleId,
    /// [`deployment_fingerprint`] of the application, optionally mixed
    /// with platform-level perturbation state via [`SnapshotKey::mix`].
    pub fingerprint: u64,
}

impl SnapshotKey {
    /// Creates a key for `root` under `fingerprint`.
    pub fn new(root: ModuleId, fingerprint: u64) -> SnapshotKey {
        SnapshotKey { root, fingerprint }
    }

    /// Folds extra perturbation state (e.g. a chaos-config hash) into the
    /// fingerprint. Mixing is order-sensitive and collision-resistant
    /// enough for cache keying (splitmix-style finalizer).
    pub fn mix(self, extra: u64) -> SnapshotKey {
        let mut z = self.fingerprint ^ extra.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SnapshotKey {
            root: self.root,
            fingerprint: z ^ (z >> 31),
        }
    }
}

/// One module load in a captured init replay: the module plus its *raw*
/// (unscaled) charges, so a restore can re-apply them through any
/// container's `time_scale`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapLoad {
    /// The module that loaded.
    pub module: ModuleId,
    /// Its nominal top-level init cost (unscaled).
    pub init_cost: SimDuration,
    /// Its resident size, KiB.
    pub mem_kb: u64,
}

/// The memoized outcome of one cold-start replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Every load in replay order, with raw charges.
    pub loads: Box<[SnapLoad]>,
    /// The loaded-module bitset after the replay (one bit per module id).
    pub loaded: Box<[u64]>,
    /// Number of set bits in `loaded`.
    pub loaded_count: usize,
    /// Cumulative nominal (unscaled) init latency of the replay.
    pub nominal_init: SimDuration,
}

/// A concurrent map from [`SnapshotKey`] to captured [`Snapshot`]s, shared
/// behind an `Arc` by every container of a deployment (the platform) or of
/// an app's run set (the fleet orchestrator, which keeps one store per app
/// so thread scheduling can never leak state across apps).
#[derive(Debug, Default)]
pub struct SnapshotStore {
    map: Mutex<HashMap<SnapshotKey, Arc<Snapshot>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl SnapshotStore {
    /// Creates an empty store.
    pub fn new() -> SnapshotStore {
        SnapshotStore::default()
    }

    /// Creates a shared handle to a fresh store, or `None` when snapshots
    /// are disabled via the `SLIMSTART_NO_SNAPSHOT=1` escape hatch.
    pub fn default_for_env() -> Option<Arc<SnapshotStore>> {
        if std::env::var_os("SLIMSTART_NO_SNAPSHOT").is_some_and(|v| v == *"1") {
            None
        } else {
            Some(Arc::new(SnapshotStore::new()))
        }
    }

    /// Looks up a snapshot, counting a hit or miss.
    pub fn get(&self, key: &SnapshotKey) -> Option<Arc<Snapshot>> {
        let found = self
            .map
            .lock()
            .expect("snapshot store poisoned")
            .get(key)
            .cloned();
        match found {
            Some(s) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(s)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or replaces) the snapshot for `key`.
    pub fn insert(&self, key: SnapshotKey, snapshot: Snapshot) -> Arc<Snapshot> {
        let snapshot = Arc::new(snapshot);
        self.map
            .lock()
            .expect("snapshot store poisoned")
            .insert(key, Arc::clone(&snapshot));
        snapshot
    }

    /// Number of memoized snapshots.
    pub fn len(&self) -> usize {
        self.map.lock().expect("snapshot store poisoned").len()
    }

    /// Whether the store holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits so far. Diagnostic only — never serialized into reports.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far. Diagnostic only — never serialized into
    /// reports.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// Fingerprints everything about `app` that shapes a cold-start replay:
/// module names, `stripped` flags, init costs, memory sizes, and each
/// import's target and eager-vs-deferred mode. Two application states with
/// equal fingerprints replay identically; any optimizer edit (deferring an
/// import, stripping a module) changes the fingerprint and invalidates
/// every snapshot captured before the redeploy.
pub fn deployment_fingerprint(app: &Application) -> u64 {
    let mut h = FxHasher::default();
    app.name().hash(&mut h);
    app.modules().len().hash(&mut h);
    for (i, module) in app.modules().iter().enumerate() {
        module.name().hash(&mut h);
        module.stripped().hash(&mut h);
        module.init_cost().as_micros().hash(&mut h);
        module.mem_kb().hash(&mut h);
        for decl in app.imports_of(ModuleId::from_index(i)) {
            decl.target.index().hash(&mut h);
            decl.mode.is_global().hash(&mut h);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_changes_fingerprint_and_keeps_root() {
        let key = SnapshotKey::new(ModuleId::from_index(3), 42);
        let mixed = key.mix(7);
        assert_eq!(mixed.root, key.root);
        assert_ne!(mixed.fingerprint, key.fingerprint);
        // Deterministic and sensitive to the extra value.
        assert_eq!(key.mix(7), key.mix(7));
        assert_ne!(key.mix(7), key.mix(8));
    }

    #[test]
    fn store_counts_hits_and_misses() {
        let store = SnapshotStore::new();
        let key = SnapshotKey::new(ModuleId::from_index(0), 1);
        assert!(store.get(&key).is_none());
        assert_eq!((store.hits(), store.misses()), (0, 1));
        store.insert(
            key,
            Snapshot {
                loads: Box::new([]),
                loaded: Box::new([]),
                loaded_count: 0,
                nominal_init: SimDuration::ZERO,
            },
        );
        assert!(store.get(&key).is_some());
        assert_eq!((store.hits(), store.misses()), (1, 1));
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }
}
