//! Cold-start snapshots: memoized init replays with working-set restores
//! and byte-accounted capacity limits.
//!
//! The cost model makes every cold start of a deployment a deterministic
//! replay of the same transitive import sequence — the loader plan walk,
//! the per-module init charges, the memory growth. A [`Snapshot`] captures
//! the complete outcome of one such replay (load order, per-module raw
//! init charges and memory, the resulting module-cache bitset) so the
//! second and later cold starts of the same deployment restore it in
//! O(modules) straight-line work instead of re-walking the plan.
//!
//! Two refinements sit on top of the PR 5 full-stream design:
//!
//! * **Working sets (REAP-style).** After an invocation has run, the
//!   platform records which modules the handler actually touched and
//!   refines the stored snapshot with that bitmap
//!   ([`SnapshotStore::refine`]). A store created in lazy-restore mode
//!   then replays only the working set eagerly
//!   ([`crate::process::Process::restore_snapshot_lazy`]); everything
//!   else faults in on first import through the ordinary deferred-load
//!   path, paying its real init cost through the same per-load
//!   `mul_f64(time_scale)` rounding. Unrefined snapshots (no invocation
//!   observed yet) always restore the full stream.
//! * **Byte-accounted budgets.** A store built with
//!   [`SnapshotStore::with_limits`] tracks the modeled resident bytes of
//!   every entry (the memory a restore of it would map in) and evicts
//!   cost-ineffective entries whenever an insert or a working-set growth
//!   pushes it over budget. The eviction score is rebuild-cost saved per
//!   resident byte, compared exactly via cross-multiplication; ties fall
//!   back to least-recently-used on *sim-clock* timestamps (never
//!   wall-clock) and then to the entry key, so eviction order is a pure
//!   function of the store's operation sequence.
//!
//! A [`SnapshotStore`] keys snapshots by [`SnapshotKey`]: the entry module
//! plus a fingerprint over everything that shapes the replay — module
//! names, `stripped` flags, init costs, memory sizes, and the
//! eager-vs-deferred mode of every import. Redeploying an optimized
//! application misses the cache, and [`SnapshotStore::invalidate_stale`]
//! lets the platform evict the stale generation outright; the platform
//! additionally folds its chaos configuration into the fingerprint so
//! perturbed experiments never share entries with clean ones.
//!
//! Restores are byte-exact: [`crate::process::Process::restore_snapshot`]
//! re-applies the stored raw charges through the restoring process's own
//! `time_scale` with the same per-module rounding the loader uses, so
//! load events, clocks, and memory are identical to a real replay at any
//! jittered container speed. With a full working set the lazy path is
//! byte-identical to the full stream — the retained differential oracle.
//! Snapshots are only taken from — and only restored into — unobserved
//! processes: a profiling deployment must run its observer callbacks for
//! real.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use fxhash::FxHasher;
use slimstart_appmodel::{Application, ModuleId};
use slimstart_simcore::time::{SimDuration, SimTime};

/// Identifies one memoized cold-start outcome: the entry module plus a
/// fingerprint of the deployment (and any platform perturbation) it was
/// captured under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SnapshotKey {
    /// The handler's entry module the cold start began at.
    pub root: ModuleId,
    /// [`deployment_fingerprint`] of the application, optionally mixed
    /// with platform-level perturbation state via [`SnapshotKey::mix`].
    pub fingerprint: u64,
}

impl SnapshotKey {
    /// Creates a key for `root` under `fingerprint`.
    pub fn new(root: ModuleId, fingerprint: u64) -> SnapshotKey {
        SnapshotKey { root, fingerprint }
    }

    /// Folds extra perturbation state (e.g. a chaos-config hash) into the
    /// fingerprint. Mixing is order-sensitive and collision-resistant
    /// enough for cache keying (splitmix-style finalizer).
    pub fn mix(self, extra: u64) -> SnapshotKey {
        let mut z = self.fingerprint ^ extra.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SnapshotKey {
            root: self.root,
            fingerprint: z ^ (z >> 31),
        }
    }
}

/// One module load in a captured init replay: the module plus its *raw*
/// (unscaled) charges, so a restore can re-apply them through any
/// container's `time_scale`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnapLoad {
    /// The module that loaded.
    pub module: ModuleId,
    /// Its nominal top-level init cost (unscaled).
    pub init_cost: SimDuration,
    /// Its resident size, KiB.
    pub mem_kb: u64,
}

/// The memoized outcome of one cold-start replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Every load in replay order, with raw charges.
    pub loads: Box<[SnapLoad]>,
    /// The loaded-module bitset after the replay (one bit per module id).
    pub loaded: Box<[u64]>,
    /// Number of set bits in `loaded`.
    pub loaded_count: usize,
    /// Cumulative nominal (unscaled) init latency of the replay.
    pub nominal_init: SimDuration,
    /// The recorded working set (one bit per module id), a subset of
    /// `loaded`: the modules a handler invocation actually touched, closed
    /// under package ancestry. `None` means no invocation has refined this
    /// snapshot yet, so a restore must replay the full stream.
    pub working: Option<Box<[u64]>>,
}

#[inline]
fn bit_set(words: &[u64], index: usize) -> bool {
    words[index / 64] & (1u64 << (index % 64)) != 0
}

impl Snapshot {
    /// Whether `module` is in the recorded working set. Unrefined
    /// snapshots treat every loaded module as working.
    pub fn in_working_set(&self, module: ModuleId) -> bool {
        match &self.working {
            Some(w) => bit_set(w, module.index()),
            None => bit_set(&self.loaded, module.index()),
        }
    }

    /// Modeled bytes a restore of this snapshot maps in eagerly: the
    /// working-set loads when refined, every load otherwise.
    pub fn resident_bytes(&self) -> u64 {
        self.loads
            .iter()
            .filter(|l| self.in_working_set(l.module))
            .map(|l| l.mem_kb * 1024)
            .sum()
    }
}

/// Entry bookkeeping inside a [`SnapshotStore`].
#[derive(Debug)]
struct StoreEntry {
    snapshot: Arc<Snapshot>,
    /// Modeled eagerly-restored bytes ([`Snapshot::resident_bytes`]).
    bytes: u64,
    /// Rebuild cost this entry saves per hit, in nominal µs.
    cost_micros: u64,
    /// Sim-clock timestamp of the last hit/insert/refinement (LRU
    /// tiebreak; never wall-clock, so eviction stays deterministic).
    last_used: SimTime,
}

#[derive(Debug, Default)]
struct StoreInner {
    map: HashMap<SnapshotKey, StoreEntry>,
    resident_bytes: u64,
}

/// Lifetime counters of one [`SnapshotStore`], snapshotted atomically
/// enough for reporting (each field is individually consistent).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Restores served from the cache.
    pub hits: u64,
    /// Lookups that found no entry.
    pub misses: u64,
    /// Entries removed by budget pressure or fingerprint invalidation.
    pub evictions: u64,
    /// Module loads paid lazily because a working-set restore omitted
    /// them and the handler faulted them in on first use.
    pub faulted_loads: u64,
    /// Modeled bytes currently resident across all entries.
    pub resident_bytes: u64,
    /// Number of memoized snapshots currently held.
    pub entries: usize,
}

/// A concurrent map from [`SnapshotKey`] to captured [`Snapshot`]s, shared
/// behind an `Arc` by every container of a deployment (the platform) or of
/// an app's run set (the fleet orchestrator, which keeps one store — one
/// node-pool shard — per app so thread scheduling can never leak state
/// across apps).
#[derive(Debug, Default)]
pub struct SnapshotStore {
    inner: Mutex<StoreInner>,
    /// Byte budget; `None` = unlimited (the PR 5 behavior).
    budget_bytes: Option<u64>,
    /// Whether restores from this store may replay only the working set.
    lazy_restore: bool,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    faulted: AtomicU64,
}

impl SnapshotStore {
    /// Creates an empty, unlimited, full-stream store — byte-invisible
    /// PR 5 semantics, used by the platform/pipeline default.
    pub fn new() -> SnapshotStore {
        SnapshotStore::default()
    }

    /// The explicit constructor: `budget_bytes` caps the modeled resident
    /// bytes (`None` = unlimited), `lazy_restore` enables working-set
    /// restores. This is what the fleet's node pool uses instead of env
    /// sniffing.
    pub fn with_limits(budget_bytes: Option<u64>, lazy_restore: bool) -> SnapshotStore {
        SnapshotStore {
            budget_bytes,
            lazy_restore,
            ..SnapshotStore::default()
        }
    }

    /// Creates a shared handle to a fresh unlimited store, or `None` when
    /// snapshots are disabled via the `SLIMSTART_NO_SNAPSHOT=1` escape
    /// hatch. The env var is resolved once per process and cached.
    pub fn default_for_env() -> Option<Arc<SnapshotStore>> {
        static DISABLED: OnceLock<bool> = OnceLock::new();
        let disabled = *DISABLED
            .get_or_init(|| std::env::var_os("SLIMSTART_NO_SNAPSHOT").is_some_and(|v| v == *"1"));
        if disabled {
            None
        } else {
            Some(Arc::new(SnapshotStore::new()))
        }
    }

    /// Whether restores from this store replay only the working set.
    pub fn lazy_restore(&self) -> bool {
        self.lazy_restore
    }

    /// The byte budget, if any.
    pub fn budget_bytes(&self) -> Option<u64> {
        self.budget_bytes
    }

    /// Looks up a snapshot at sim-time `now`, counting a hit or miss and
    /// refreshing the entry's LRU timestamp on a hit.
    pub fn get(&self, key: &SnapshotKey, now: SimTime) -> Option<Arc<Snapshot>> {
        let mut inner = self.inner.lock().expect("snapshot store poisoned");
        match inner.map.get_mut(key) {
            Some(entry) => {
                if now > entry.last_used {
                    entry.last_used = now;
                }
                let snapshot = Arc::clone(&entry.snapshot);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(snapshot)
            }
            None => {
                drop(inner);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or replaces) the snapshot for `key` at sim-time `now`,
    /// then evicts lowest-score entries until the store is back within
    /// budget. An entry that alone exceeds the budget is rejected outright
    /// (the returned handle is still usable for the current restore), so
    /// resident bytes can never exceed the budget.
    pub fn insert(&self, key: SnapshotKey, snapshot: Snapshot, now: SimTime) -> Arc<Snapshot> {
        let snapshot = Arc::new(snapshot);
        let bytes = snapshot.resident_bytes();
        if self.budget_bytes.is_some_and(|b| bytes > b) {
            return snapshot;
        }
        let cost_micros = snapshot.nominal_init.as_micros();
        let mut inner = self.inner.lock().expect("snapshot store poisoned");
        if let Some(old) = inner.map.insert(
            key,
            StoreEntry {
                snapshot: Arc::clone(&snapshot),
                bytes,
                cost_micros,
                last_used: now,
            },
        ) {
            inner.resident_bytes -= old.bytes;
        }
        inner.resident_bytes += bytes;
        self.evict_over_budget(&mut inner, &key);
        snapshot
    }

    /// Merges `working` (a bitset over module ids, already intersected
    /// with the snapshot's loaded set and closed under ancestry by the
    /// caller) into the stored working set for `key`. The first
    /// refinement replaces the implicit full working set; later ones
    /// union in, so the set only grows. A growth that pushes the store
    /// over budget triggers eviction of *other* entries.
    pub fn refine(&self, key: &SnapshotKey, working: &[u64], now: SimTime) {
        let mut inner = self.inner.lock().expect("snapshot store poisoned");
        let Some(entry) = inner.map.get_mut(key) else {
            return;
        };
        debug_assert_eq!(
            working.len(),
            entry.snapshot.loaded.len(),
            "working set from a different application shape"
        );
        debug_assert!(
            working
                .iter()
                .zip(entry.snapshot.loaded.iter())
                .all(|(w, l)| w & !l == 0),
            "working set not a subset of the snapshot's loaded set"
        );
        let merged: Box<[u64]> = match &entry.snapshot.working {
            Some(old) => {
                if old.iter().zip(working.iter()).all(|(o, w)| w & !o == 0) {
                    // No new bits: keep the existing Arc (the steady state
                    // after the working set stabilizes).
                    if now > entry.last_used {
                        entry.last_used = now;
                    }
                    return;
                }
                old.iter().zip(working.iter()).map(|(o, w)| o | w).collect()
            }
            None => working.to_vec().into_boxed_slice(),
        };
        let mut refined = (*entry.snapshot).clone();
        refined.working = Some(merged);
        let bytes = refined.resident_bytes();
        let old_bytes = entry.bytes;
        entry.snapshot = Arc::new(refined);
        entry.bytes = bytes;
        if now > entry.last_used {
            entry.last_used = now;
        }
        inner.resident_bytes = inner.resident_bytes - old_bytes + bytes;
        let key = *key;
        self.evict_over_budget(&mut inner, &key);
    }

    /// Evicts every entry whose key fingerprint differs from
    /// `fingerprint` — the redeploy-invalidation path: stale generations
    /// are removed from the pool, not merely missed. Returns how many
    /// entries were evicted.
    pub fn invalidate_stale(&self, fingerprint: u64) -> u64 {
        let mut inner = self.inner.lock().expect("snapshot store poisoned");
        let before = inner.map.len();
        let mut freed = 0u64;
        inner.map.retain(|key, entry| {
            let keep = key.fingerprint == fingerprint;
            if !keep {
                freed += entry.bytes;
            }
            keep
        });
        let evicted = (before - inner.map.len()) as u64;
        inner.resident_bytes -= freed;
        drop(inner);
        self.evictions.fetch_add(evicted, Ordering::Relaxed);
        evicted
    }

    /// Records `n` lazily-faulted module loads (working-set misses paid
    /// by a handler at first use).
    pub fn record_faults(&self, n: u64) {
        if n > 0 {
            self.faulted.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Evicts lowest-score entries (never `keep`) until resident bytes
    /// fit the budget. Score = rebuild-cost saved ÷ resident bytes,
    /// compared exactly by cross-multiplication; ties evict the least
    /// recently used (sim-clock), then the smallest key.
    fn evict_over_budget(&self, inner: &mut StoreInner, keep: &SnapshotKey) {
        let Some(budget) = self.budget_bytes else {
            return;
        };
        while inner.resident_bytes > budget {
            let victim = inner
                .map
                .iter()
                .filter(|(key, _)| *key != keep)
                .min_by(|(ka, a), (kb, b)| {
                    let score_a = a.cost_micros as u128 * b.bytes as u128;
                    let score_b = b.cost_micros as u128 * a.bytes as u128;
                    score_a
                        .cmp(&score_b)
                        .then_with(|| a.last_used.cmp(&b.last_used))
                        .then_with(|| {
                            (ka.root.index(), ka.fingerprint)
                                .cmp(&(kb.root.index(), kb.fingerprint))
                        })
                })
                .map(|(key, _)| *key);
            let Some(victim) = victim else {
                // Only the just-touched entry remains; admission control
                // guarantees it fits on its own.
                break;
            };
            let entry = inner.map.remove(&victim).expect("victim vanished");
            inner.resident_bytes -= entry.bytes;
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of memoized snapshots.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("snapshot store poisoned")
            .map
            .len()
    }

    /// Whether the store holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Modeled bytes currently resident across all entries.
    pub fn resident_bytes(&self) -> u64 {
        self.inner
            .lock()
            .expect("snapshot store poisoned")
            .resident_bytes
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted so far (budget pressure + invalidation).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Lazily-faulted module loads recorded so far.
    pub fn faulted_loads(&self) -> u64 {
        self.faulted.load(Ordering::Relaxed)
    }

    /// All lifetime counters plus current occupancy, for reports.
    pub fn stats(&self) -> SnapshotStats {
        let (resident_bytes, entries) = {
            let inner = self.inner.lock().expect("snapshot store poisoned");
            (inner.resident_bytes, inner.map.len())
        };
        SnapshotStats {
            hits: self.hits(),
            misses: self.misses(),
            evictions: self.evictions(),
            faulted_loads: self.faulted_loads(),
            resident_bytes,
            entries,
        }
    }
}

/// Fingerprints everything about `app` that shapes a cold-start replay:
/// module names, `stripped` flags, init costs, memory sizes, and each
/// import's target and eager-vs-deferred mode. Two application states with
/// equal fingerprints replay identically; any optimizer edit (deferring an
/// import, stripping a module) changes the fingerprint and invalidates
/// every snapshot captured before the redeploy.
pub fn deployment_fingerprint(app: &Application) -> u64 {
    let mut h = FxHasher::default();
    app.name().hash(&mut h);
    app.modules().len().hash(&mut h);
    for (i, module) in app.modules().iter().enumerate() {
        module.name().hash(&mut h);
        module.stripped().hash(&mut h);
        module.init_cost().as_micros().hash(&mut h);
        module.mem_kb().hash(&mut h);
        for decl in app.imports_of(ModuleId::from_index(i)) {
            decl.target.index().hash(&mut h);
            decl.mode.is_global().hash(&mut h);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(loads: &[(usize, u64, u64)]) -> Snapshot {
        // (module index, init ms, mem kb) triples; bitset sized for 64.
        let loads: Box<[SnapLoad]> = loads
            .iter()
            .map(|&(i, ms, kb)| SnapLoad {
                module: ModuleId::from_index(i),
                init_cost: SimDuration::from_millis(ms),
                mem_kb: kb,
            })
            .collect();
        let mut loaded = [0u64];
        for l in loads.iter() {
            loaded[0] |= 1 << l.module.index();
        }
        let loaded_count = loaded[0].count_ones() as usize;
        let nominal_init = loads.iter().map(|l| l.init_cost).sum();
        Snapshot {
            loads,
            loaded: Box::new(loaded),
            loaded_count,
            nominal_init,
            working: None,
        }
    }

    fn at(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn mix_changes_fingerprint_and_keeps_root() {
        let key = SnapshotKey::new(ModuleId::from_index(3), 42);
        let mixed = key.mix(7);
        assert_eq!(mixed.root, key.root);
        assert_ne!(mixed.fingerprint, key.fingerprint);
        // Deterministic and sensitive to the extra value.
        assert_eq!(key.mix(7), key.mix(7));
        assert_ne!(key.mix(7), key.mix(8));
    }

    #[test]
    fn store_counts_hits_and_misses() {
        let store = SnapshotStore::new();
        let key = SnapshotKey::new(ModuleId::from_index(0), 1);
        assert!(store.get(&key, at(0)).is_none());
        assert_eq!((store.hits(), store.misses()), (0, 1));
        store.insert(key, snap(&[]), at(1));
        assert!(store.get(&key, at(2)).is_some());
        assert_eq!((store.hits(), store.misses()), (1, 1));
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn unlimited_store_never_evicts() {
        let store = SnapshotStore::new();
        for i in 0..8 {
            store.insert(
                SnapshotKey::new(ModuleId::from_index(i), 1),
                snap(&[(i, 10, 1 << 20)]),
                at(i as u64),
            );
        }
        assert_eq!(store.len(), 8);
        assert_eq!(store.evictions(), 0);
        assert!(!store.lazy_restore());
        assert_eq!(store.budget_bytes(), None);
    }

    #[test]
    fn budget_evicts_lowest_score_first() {
        // 3000-byte budget; each entry is 1024 bytes. Entry 0 saves 1ms,
        // entry 1 saves 100ms, entry 2 saves 50ms. Inserting entry 3
        // (10ms) must evict entry 0: lowest cost per byte.
        let store = SnapshotStore::with_limits(Some(3 * 1024), false);
        for (i, ms) in [(0, 1), (1, 100), (2, 50)] {
            store.insert(
                SnapshotKey::new(ModuleId::from_index(i), 1),
                snap(&[(i, ms, 1)]),
                at(i as u64),
            );
        }
        assert_eq!(store.resident_bytes(), 3 * 1024);
        store.insert(
            SnapshotKey::new(ModuleId::from_index(3), 1),
            snap(&[(3, 10, 1)]),
            at(10),
        );
        assert_eq!(store.len(), 3);
        assert_eq!(store.evictions(), 1);
        assert!(store
            .get(&SnapshotKey::new(ModuleId::from_index(0), 1), at(11))
            .is_none());
        for i in [1usize, 2, 3] {
            assert!(
                store
                    .get(&SnapshotKey::new(ModuleId::from_index(i), 1), at(12))
                    .is_some(),
                "entry {i} should have survived"
            );
        }
        assert!(store.resident_bytes() <= 3 * 1024);
    }

    #[test]
    fn eviction_ties_break_by_lru_then_key() {
        // Three identical-score entries; the least recently used goes
        // first. Touching entry 0 via get() protects it.
        let store = SnapshotStore::with_limits(Some(2 * 1024), false);
        for i in 0..2 {
            store.insert(
                SnapshotKey::new(ModuleId::from_index(i), 1),
                snap(&[(i, 10, 1)]),
                at(i as u64),
            );
        }
        store.get(&SnapshotKey::new(ModuleId::from_index(0), 1), at(5));
        store.insert(
            SnapshotKey::new(ModuleId::from_index(2), 1),
            snap(&[(2, 10, 1)]),
            at(6),
        );
        // Entry 1 (last used at t=1) lost; entry 0 (refreshed at t=5) kept.
        assert!(store
            .get(&SnapshotKey::new(ModuleId::from_index(1), 1), at(7))
            .is_none());
        assert!(store
            .get(&SnapshotKey::new(ModuleId::from_index(0), 1), at(7))
            .is_some());
    }

    #[test]
    fn oversized_entry_is_rejected_not_resident() {
        let store = SnapshotStore::with_limits(Some(1024), false);
        let handle = store.insert(
            SnapshotKey::new(ModuleId::from_index(0), 1),
            snap(&[(0, 10, 2)]), // 2 KiB > 1 KiB budget
            at(0),
        );
        assert_eq!(handle.loads.len(), 1); // still usable by the caller
        assert_eq!(store.len(), 0);
        assert_eq!(store.resident_bytes(), 0);
    }

    #[test]
    fn refine_shrinks_resident_bytes_and_merges_unions() {
        let store = SnapshotStore::with_limits(Some(1 << 30), true);
        let key = SnapshotKey::new(ModuleId::from_index(0), 1);
        store.insert(key, snap(&[(0, 1, 1), (1, 1, 1), (2, 1, 1)]), at(0));
        assert_eq!(store.resident_bytes(), 3 * 1024);
        // First refinement: only module 0 in the working set.
        store.refine(&key, &[0b001], at(1));
        assert_eq!(store.resident_bytes(), 1024);
        let s = store.get(&key, at(2)).unwrap();
        assert_eq!(s.working.as_deref(), Some(&[0b001u64][..]));
        // Second refinement unions in module 2; module 1 stays omitted.
        store.refine(&key, &[0b100], at(3));
        assert_eq!(store.resident_bytes(), 2 * 1024);
        let s = store.get(&key, at(4)).unwrap();
        assert_eq!(s.working.as_deref(), Some(&[0b101u64][..]));
        // A no-new-bits refinement keeps the same Arc.
        let before = Arc::as_ptr(&store.get(&key, at(5)).unwrap());
        store.refine(&key, &[0b001], at(6));
        assert_eq!(Arc::as_ptr(&store.get(&key, at(7)).unwrap()), before);
    }

    #[test]
    fn invalidate_stale_evicts_other_fingerprints() {
        let store = SnapshotStore::new();
        let stale = SnapshotKey::new(ModuleId::from_index(0), 1);
        let fresh = SnapshotKey::new(ModuleId::from_index(0), 2);
        store.insert(stale, snap(&[(0, 1, 1)]), at(0));
        store.insert(fresh, snap(&[(0, 1, 1)]), at(1));
        assert_eq!(store.invalidate_stale(2), 1);
        assert_eq!(store.len(), 1);
        assert_eq!(store.evictions(), 1);
        assert_eq!(store.resident_bytes(), 1024);
        assert!(store.get(&stale, at(2)).is_none());
        assert!(store.get(&fresh, at(3)).is_some());
    }

    #[test]
    fn stats_snapshot_reflects_counters() {
        let store = SnapshotStore::with_limits(Some(1 << 20), true);
        let key = SnapshotKey::new(ModuleId::from_index(0), 1);
        store.get(&key, at(0));
        store.insert(key, snap(&[(0, 1, 1)]), at(1));
        store.get(&key, at(2));
        store.record_faults(3);
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.faulted_loads, 3);
        assert_eq!(stats.resident_bytes, 1024);
        assert_eq!(stats.entries, 1);
    }
}
