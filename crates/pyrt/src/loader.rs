//! Precomputed, shareable loader metadata for one application.
//!
//! Every [`Process`](crate::process::Process) used to rebuild a
//! `HashMap<String, ModuleId>` name index on construction and re-derive
//! dotted-prefix ancestry (allocating a `String` and probing the map per
//! prefix) on every load. A [`LoaderPlan`] computes all of that once per
//! application — ancestor chains eagerly, transitive import closures
//! lazily — and is shared between processes behind an `Arc`, so container
//! cold starts pay zero name-resolution work.
//!
//! The closure bitsets are a pure *fast path*: when everything a module
//! transitively needs is already loaded, the loader skips the recursive
//! import walk entirely. When anything is missing it falls back to the
//! exact ordered walk, because load order is observable (load events,
//! stack shapes under the sampler) and must not change.

use std::sync::OnceLock;

use slimstart_appmodel::{Application, ModuleId, NameTable};

/// A bitset over module ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleSet {
    words: Box<[u64]>,
}

impl ModuleSet {
    fn empty(modules: usize) -> ModuleSet {
        ModuleSet {
            words: vec![0u64; modules.div_ceil(64)].into_boxed_slice(),
        }
    }

    #[inline]
    fn insert(&mut self, m: ModuleId) {
        self.words[m.index() / 64] |= 1u64 << (m.index() % 64);
    }

    /// Whether `m` is in the set.
    #[inline]
    pub fn contains(&self, m: ModuleId) -> bool {
        self.words[m.index() / 64] & (1u64 << (m.index() % 64)) != 0
    }

    /// Number of modules in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|w| *w == 0)
    }

    /// Whether every member except `m` itself is set in the `loaded` bit
    /// words, `m` itself is a member, **and** `m` is not yet loaded. This
    /// is the loader's one-shot test for "the recursive walk would load
    /// exactly `m` and nothing else" — if `m` is already loaded the walk
    /// would load nothing, which the fast path must not change.
    #[inline]
    pub fn only_missing_is(&self, loaded: &[u64], m: ModuleId) -> bool {
        let m_word = m.index() / 64;
        let m_bit = 1u64 << (m.index() % 64);
        if self.words[m_word] & m_bit == 0 || loaded[m_word] & m_bit != 0 {
            return false;
        }
        self.words
            .iter()
            .zip(loaded.iter())
            .enumerate()
            .all(|(w, (&members, &have))| {
                let missing = members & !have;
                if w == m_word {
                    missing & !m_bit == 0
                } else {
                    missing == 0
                }
            })
    }
}

/// Shared per-application loader metadata. Build once (it is deterministic
/// in the application, including its `stripped` flags) and share across all
/// processes via `Arc`.
#[derive(Debug)]
pub struct LoaderPlan {
    /// For each module, the ids of its existing dotted-prefix ancestors in
    /// shortest-first order, ending with the module itself — exactly the
    /// sequence the CPython-style loader visits for `import a.b.c`.
    ancestors: Vec<Box<[ModuleId]>>,
    /// Lazily memoized transitive eager-load closures: `closures[m]` is the
    /// set of modules a load of `m` from an empty process would bring in
    /// (global imports only, stripped modules excluded).
    closures: Vec<OnceLock<ModuleSet>>,
}

impl LoaderPlan {
    /// Computes ancestor chains for every module of `app`.
    pub fn build(app: &Application) -> LoaderPlan {
        let table = NameTable::build(app);
        let modules = app.modules();
        let mut ancestors = Vec::with_capacity(modules.len());
        for module in modules {
            let name = module.name();
            let bytes = name.as_bytes();
            let mut chain = Vec::new();
            for i in 0..=bytes.len() {
                if i == bytes.len() || bytes[i] == b'.' {
                    if let Some(id) = table.module_by_name(&name[..i]) {
                        chain.push(id);
                    }
                }
            }
            ancestors.push(chain.into_boxed_slice());
        }
        LoaderPlan {
            ancestors,
            closures: (0..modules.len()).map(|_| OnceLock::new()).collect(),
        }
    }

    /// The existing dotted-prefix ancestors of `module`, shortest first,
    /// ending with `module` itself.
    #[inline]
    pub fn ancestors(&self, module: ModuleId) -> &[ModuleId] {
        &self.ancestors[module.index()]
    }

    /// The transitive eager-load closure of `module`, computed on first use
    /// and memoized for the lifetime of the plan (thread-safe; the result
    /// is a pure function of the application, so racing initializers agree).
    pub fn closure(&self, app: &Application, module: ModuleId) -> &ModuleSet {
        self.closures[module.index()].get_or_init(|| {
            let mut set = ModuleSet::empty(app.modules().len());
            self.collect_with_parents(app, module, &mut set);
            set
        })
    }

    /// Mirrors `Process::load_with_parents` over a visited set.
    fn collect_with_parents(&self, app: &Application, module: ModuleId, set: &mut ModuleSet) {
        for &a in self.ancestors(module) {
            if !set.contains(a) && !app.module(a).stripped() {
                self.collect_single(app, a, set);
            }
        }
    }

    /// Mirrors `Process::load_single`'s recursion over global imports.
    fn collect_single(&self, app: &Application, module: ModuleId, set: &mut ModuleSet) {
        set.insert(module);
        for decl in app.imports_of(module) {
            if !decl.mode.is_global() || app.module(decl.target).stripped() {
                continue;
            }
            if !set.contains(decl.target) {
                self.collect_with_parents(app, decl.target, set);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::app::AppBuilder;
    use slimstart_appmodel::imports::ImportMode;
    use slimstart_simcore::time::SimDuration;
    use std::sync::Arc;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    /// handler -> lib (-> lib.hot global, lib.cold deferred -> lib.cold.leaf global)
    fn app() -> Arc<Application> {
        let mut b = AppBuilder::new("t");
        let lib = b.add_library("lib");
        let h = b.add_app_module("handler", ms(1), 1);
        let root = b.add_library_module("lib", ms(1), 1, false, lib);
        let hot = b.add_library_module("lib.hot", ms(1), 1, false, lib);
        let cold = b.add_library_module("lib.cold", ms(1), 1, false, lib);
        let leaf = b.add_library_module("lib.cold.leaf", ms(1), 1, false, lib);
        b.add_import(h, root, 2, ImportMode::Global).unwrap();
        b.add_import(root, hot, 2, ImportMode::Global).unwrap();
        b.add_import(root, cold, 3, ImportMode::Deferred).unwrap();
        b.add_import(cold, leaf, 2, ImportMode::Global).unwrap();
        let f = b.add_function("main", h, 4, vec![]);
        b.add_handler("main", f);
        Arc::new(b.finish().unwrap())
    }

    #[test]
    fn ancestors_follow_dotted_prefixes() {
        let app = app();
        let plan = LoaderPlan::build(&app);
        let leaf = app.module_by_name("lib.cold.leaf").unwrap();
        let names: Vec<&str> = plan
            .ancestors(leaf)
            .iter()
            .map(|m| app.module(*m).name())
            .collect();
        assert_eq!(names, vec!["lib", "lib.cold", "lib.cold.leaf"]);
        let h = app.module_by_name("handler").unwrap();
        let names: Vec<&str> = plan
            .ancestors(h)
            .iter()
            .map(|m| app.module(*m).name())
            .collect();
        assert_eq!(names, vec!["handler"]);
    }

    #[test]
    fn closure_follows_global_imports_only() {
        let app = app();
        let plan = LoaderPlan::build(&app);
        let h = app.module_by_name("handler").unwrap();
        let closure = plan.closure(&app, h);
        assert!(closure.contains(h));
        assert!(closure.contains(app.module_by_name("lib").unwrap()));
        assert!(closure.contains(app.module_by_name("lib.hot").unwrap()));
        // Deferred subtree is not part of the eager closure.
        assert!(!closure.contains(app.module_by_name("lib.cold").unwrap()));
        assert_eq!(closure.len(), 3);
    }

    #[test]
    fn closure_of_submodule_includes_package_ancestry() {
        let app = app();
        let plan = LoaderPlan::build(&app);
        let leaf = app.module_by_name("lib.cold.leaf").unwrap();
        let closure = plan.closure(&app, leaf);
        // Loading lib.cold.leaf pulls in lib (ancestor) which pulls lib.hot.
        for name in ["lib", "lib.hot", "lib.cold", "lib.cold.leaf"] {
            assert!(
                closure.contains(app.module_by_name(name).unwrap()),
                "{name}"
            );
        }
        assert!(!closure.contains(app.module_by_name("handler").unwrap()));
    }

    #[test]
    fn closure_matches_eager_load_set() {
        let app = app();
        let plan = LoaderPlan::build(&app);
        for (i, _) in app.modules().iter().enumerate() {
            let m = slimstart_appmodel::ModuleId::from_index(i);
            let closure = plan.closure(&app, m);
            // eager_load_set has no parent-package rule, so it can only be a
            // subset of the loader's closure; every eager module must appear.
            for e in app.eager_load_set(m) {
                assert!(closure.contains(e), "module {i}: missing {e}");
            }
        }
    }

    #[test]
    fn closure_skips_stripped_modules() {
        let app = app();
        let mut app2 = (*app).clone();
        let hot = app2.module_by_name("lib.hot").unwrap();
        app2.module_mut(hot).set_stripped(true);
        let plan = LoaderPlan::build(&app2);
        let h = app2.module_by_name("handler").unwrap();
        let closure = plan.closure(&app2, h);
        assert!(!closure.contains(hot));
        assert_eq!(closure.len(), 2);
    }

    #[test]
    fn only_missing_is_detects_shallow_loads() {
        let app = app();
        let plan = LoaderPlan::build(&app);
        let h = app.module_by_name("handler").unwrap();
        let lib = app.module_by_name("lib").unwrap();
        let hot = app.module_by_name("lib.hot").unwrap();
        let closure = plan.closure(&app, h);
        let mut loaded = vec![0u64; app.modules().len().div_ceil(64)];
        // Nothing loaded: handler's deps are missing.
        assert!(!closure.only_missing_is(&loaded, h));
        loaded[lib.index() / 64] |= 1 << (lib.index() % 64);
        loaded[hot.index() / 64] |= 1 << (hot.index() % 64);
        // Everything but handler itself is loaded.
        assert!(closure.only_missing_is(&loaded, h));
        // A module outside its own closure never qualifies.
        let cold = app.module_by_name("lib.cold").unwrap();
        assert!(!plan.closure(&app, h).only_missing_is(&loaded, cold));
        // Once handler itself is loaded the walk would load nothing, so the
        // shallow path must not fire (a reload would re-charge init cost).
        loaded[h.index() / 64] |= 1 << (h.index() % 64);
        assert!(!closure.only_missing_is(&loaded, h));
    }
}
