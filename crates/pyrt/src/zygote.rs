//! Zygote fork images: per-node live dependency sharing.
//!
//! HotSwap-style dependency sharing keeps a small set of pre-warmed
//! *zygote* processes on each node, each holding an already-initialized
//! closure of the node's hottest libraries. A cold start then forks from
//! the best-matching zygote instead of booting an empty runtime: modules
//! the zygote already holds are *acquired* at a flat, configurable fork
//! cost (remapping shared pages) rather than re-paying their full init
//! cost, so a hot library's init runs once per node instead of once per
//! container.
//!
//! A [`ZygoteImage`] is the process-level view of one such fork: which
//! modules of *this* application are resident in the chosen zygote (a
//! bitset over module ids), the fork acquisition cost, and the node's
//! hotness ranking (`prefetch` ranks). The fleet layer plans images from
//! node-wide profiles (load cost × member-app hit frequency) and hands
//! one to every container of an app; [`crate::process::Process`] applies
//! it at each cost-charging point:
//!
//! * the loader ([`crate::process::Process::cold_start`] and deferred
//!   first-use loads) charges the fork cost instead of `init_cost` for
//!   resident modules;
//! * snapshot restores substitute the same way — captured snapshots
//!   record *nominal* charges, so a restore under a zygote reproduces
//!   exactly what a real forked cold start would have paid;
//! * lazy (working-set) restores replay the working set **plus** the
//!   resident modules (the fork maps them in regardless), in **prefetch
//!   order**: hottest-ranked modules first, so early invocations stop
//!   faulting sooner. Without a zygote the capture-order replay is
//!   untouched.
//!
//! Memory is modeled conservatively: acquired modules still count their
//! full footprint in the forked process (no copy-on-write dedup), and
//! the zygote's own resident bytes are accounted against the node budget
//! by the fleet layer instead.
//!
//! Counters ([`ZygoteCounters`]) are shared across every container and
//! run of an app via `Arc` and flow into the fleet report's zygote rows.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use slimstart_appmodel::{Application, ModuleId};
use slimstart_simcore::time::SimDuration;

/// Default per-module fork acquisition cost: mapping an initialized
/// module from the zygote is near-free next to running its top level.
pub const DEFAULT_FORK_COST: SimDuration = SimDuration::from_micros(100);

/// Rank assigned to modules the node ranking never scored: they replay
/// after every ranked module, in capture order.
const UNRANKED: u32 = u32::MAX;

/// Lifetime fork counters of one application's zygote attachment, shared
/// across its containers and measurement runs.
#[derive(Debug, Default)]
pub struct ZygoteCounters {
    forks: AtomicU64,
    forked_loads: AtomicU64,
}

impl ZygoteCounters {
    /// Cold starts that forked from a zygote.
    pub fn forks(&self) -> u64 {
        self.forks.load(Ordering::Relaxed)
    }

    /// Module loads acquired at fork cost instead of full init cost.
    pub fn forked_loads(&self) -> u64 {
        self.forked_loads.load(Ordering::Relaxed)
    }

    fn note_fork(&self) {
        self.forks.fetch_add(1, Ordering::Relaxed);
    }

    fn note_forked_load(&self) {
        self.forked_loads.fetch_add(1, Ordering::Relaxed);
    }
}

/// One application's view of the zygote it forks from: residency bitset,
/// fork cost, and the node's hotness ranking for prefetch ordering.
pub struct ZygoteImage {
    /// Resident-module bitset (one bit per module id of this app).
    resident: Box<[u64]>,
    resident_count: usize,
    /// Modeled bytes the resident modules pin in the zygote process.
    resident_bytes: u64,
    /// Flat nominal cost of acquiring one resident module at fork.
    fork_cost: SimDuration,
    /// Prefetch rank per module id (lower = hotter); [`UNRANKED`] for
    /// modules the node ranking never scored.
    prefetch: Box<[u32]>,
    counters: Arc<ZygoteCounters>,
}

impl std::fmt::Debug for ZygoteImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ZygoteImage")
            .field("resident_count", &self.resident_count)
            .field("resident_bytes", &self.resident_bytes)
            .field("fork_cost", &self.fork_cost)
            .finish()
    }
}

impl ZygoteImage {
    /// Builds the image of one zygote as seen by `app`.
    ///
    /// `ranked` is the node's hotness ranking, hottest first (module
    /// names, so one ranking spans every app on the node); the first
    /// `resident_prefix` ranked names are resident in the zygote, the
    /// rest only contribute prefetch ranks. Names `app` does not define
    /// are ignored — a node ranking naturally mentions other apps'
    /// modules.
    pub fn for_app<S: AsRef<str>>(
        app: &Application,
        ranked: &[S],
        resident_prefix: usize,
        fork_cost: SimDuration,
        counters: Arc<ZygoteCounters>,
    ) -> ZygoteImage {
        let words = app.modules().len().div_ceil(64);
        let mut resident = vec![0u64; words].into_boxed_slice();
        let mut prefetch = vec![UNRANKED; app.modules().len()].into_boxed_slice();
        let mut resident_count = 0usize;
        let mut resident_bytes = 0u64;
        for (rank, name) in ranked.iter().enumerate() {
            let Some(module) = app.module_by_name(name.as_ref()) else {
                continue;
            };
            let index = module.index();
            if prefetch[index] == UNRANKED {
                prefetch[index] = rank as u32;
            }
            let (word, bit) = (index / 64, 1u64 << (index % 64));
            if rank < resident_prefix && resident[word] & bit == 0 {
                resident[word] |= bit;
                resident_count += 1;
                resident_bytes += app.module(module).mem_kb() * 1024;
            }
        }
        ZygoteImage {
            resident,
            resident_count,
            resident_bytes,
            fork_cost,
            prefetch,
            counters,
        }
    }

    /// Whether `module` is resident in the zygote (acquired at fork cost).
    #[inline]
    pub fn is_resident(&self, module: ModuleId) -> bool {
        self.resident[module.index() / 64] & (1u64 << (module.index() % 64)) != 0
    }

    /// The module's prefetch rank (lower = hotter; unranked modules sort
    /// after every ranked one).
    #[inline]
    pub fn rank(&self, module: ModuleId) -> u32 {
        self.prefetch[module.index()]
    }

    /// The flat nominal fork acquisition cost per resident module.
    pub fn fork_cost(&self) -> SimDuration {
        self.fork_cost
    }

    /// Modules of this app resident in the zygote.
    pub fn resident_count(&self) -> usize {
        self.resident_count
    }

    /// Modeled bytes those modules pin in the zygote process.
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// The shared counters this image reports into.
    pub fn counters(&self) -> &Arc<ZygoteCounters> {
        &self.counters
    }

    /// Records one cold start forking from this zygote.
    pub fn note_fork(&self) {
        self.counters.note_fork();
    }

    /// The effective raw (unscaled) charge for loading `module`: the fork
    /// cost when the zygote already holds it (counted as a forked load),
    /// its nominal cost otherwise. Every cost-charging point — the
    /// loader, full restores, lazy restores — routes through this so fork
    /// semantics stay consistent across paths.
    #[inline]
    pub fn effective_cost(&self, module: ModuleId, nominal: SimDuration) -> SimDuration {
        if self.is_resident(module) {
            self.counters.note_forked_load();
            self.fork_cost
        } else {
            nominal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::app::AppBuilder;

    fn app() -> Application {
        let mut b = AppBuilder::new("z");
        let lib = b.add_library("lib");
        b.add_app_module("handler", SimDuration::from_millis(1), 128);
        b.add_library_module("lib", SimDuration::from_millis(2), 256, false, lib);
        b.add_library_module("lib.hot", SimDuration::from_millis(10), 1_000, false, lib);
        let m = b.add_app_module("main", SimDuration::ZERO, 0);
        let f = b.add_function("main", m, 1, vec![]);
        b.add_handler("h", f);
        b.finish().unwrap()
    }

    #[test]
    fn image_resolves_names_ranks_and_residency() {
        let app = app();
        let ranked = ["lib.hot", "lib", "other.app.module", "handler"];
        let image = ZygoteImage::for_app(
            &app,
            &ranked,
            2,
            DEFAULT_FORK_COST,
            Arc::new(ZygoteCounters::default()),
        );
        let hot = app.module_by_name("lib.hot").unwrap();
        let root = app.module_by_name("lib").unwrap();
        let handler = app.module_by_name("handler").unwrap();
        assert!(image.is_resident(hot));
        assert!(image.is_resident(root));
        assert!(!image.is_resident(handler), "past the resident prefix");
        assert_eq!(image.rank(hot), 0);
        assert_eq!(image.rank(root), 1);
        assert_eq!(image.rank(handler), 3);
        assert_eq!(image.rank(app.module_by_name("main").unwrap()), UNRANKED);
        assert_eq!(image.resident_count(), 2);
        assert_eq!(image.resident_bytes(), (1_000 + 256) * 1024);
    }

    #[test]
    fn effective_cost_substitutes_and_counts_only_resident_modules() {
        let app = app();
        let counters = Arc::new(ZygoteCounters::default());
        let image = ZygoteImage::for_app(
            &app,
            &["lib.hot"],
            1,
            SimDuration::from_micros(100),
            Arc::clone(&counters),
        );
        let hot = app.module_by_name("lib.hot").unwrap();
        let root = app.module_by_name("lib").unwrap();
        assert_eq!(
            image.effective_cost(hot, SimDuration::from_millis(10)),
            SimDuration::from_micros(100)
        );
        assert_eq!(
            image.effective_cost(root, SimDuration::from_millis(2)),
            SimDuration::from_millis(2)
        );
        assert_eq!(counters.forked_loads(), 1);
        image.note_fork();
        assert_eq!(counters.forks(), 1);
    }
}
