//! Runtime faults: observable failures during invocation.
//!
//! Faults are how the tests verify optimizer *safety*: a correct optimizer
//! never produces an application that faults, while an over-aggressive
//! static slimmer that strips a module the workload actually needs produces
//! a [`RuntimeFault::StrippedModuleCall`] — the false-negative failure mode
//! FaaSLight must avoid by being conservative.

use std::fmt;

use slimstart_appmodel::{FunctionId, HandlerId, ModuleId};

/// An invocation-terminating fault.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum RuntimeFault {
    /// A call needed a module that a static optimizer removed from the
    /// package (Python's `ModuleNotFoundError`).
    StrippedModuleCall {
        /// The missing module.
        module: ModuleId,
        /// The function that was being invoked.
        function: FunctionId,
    },
    /// An attribute access needed a module that a static optimizer removed.
    StrippedModuleTouch {
        /// The missing module.
        module: ModuleId,
    },
    /// A cold start was attempted on a stripped handler module.
    StrippedHandlerModule {
        /// The missing module.
        module: ModuleId,
    },
    /// An invocation referenced a handler the application does not declare.
    UnknownHandler {
        /// The offending handler id.
        handler: HandlerId,
    },
    /// The interpreter exceeded its recursion limit (a model bug guard).
    RecursionLimit {
        /// The function at which the limit was hit.
        function: FunctionId,
    },
}

impl fmt::Display for RuntimeFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeFault::StrippedModuleCall { module, function } => write!(
                f,
                "ModuleNotFoundError: module {module} was stripped but function {function} needs it"
            ),
            RuntimeFault::StrippedModuleTouch { module } => write!(
                f,
                "AttributeError: module {module} was stripped but an attribute access needs it"
            ),
            RuntimeFault::StrippedHandlerModule { module } => {
                write!(f, "handler module {module} was stripped from the package")
            }
            RuntimeFault::UnknownHandler { handler } => {
                write!(f, "unknown handler {handler}")
            }
            RuntimeFault::RecursionLimit { function } => {
                write!(f, "recursion limit exceeded in function {function}")
            }
        }
    }
}

impl std::error::Error for RuntimeFault {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = RuntimeFault::StrippedModuleCall {
            module: ModuleId::from_index(3),
            function: FunctionId::from_index(7),
        };
        let s = e.to_string();
        assert!(s.contains("m3") && s.contains("f7"));
        assert!(RuntimeFault::UnknownHandler {
            handler: HandlerId::from_index(1)
        }
        .to_string()
        .contains("h1"));
    }
}
