//! Call stacks: what the sampling profiler observes.
//!
//! Every live activation — a function call or a module top-level execution
//! ("module init") — is a [`Frame`]. The profiler's per-sample *call path*
//! is a snapshot of the stack from the entry point down to the innermost
//! frame, exactly like the paths in the paper's Tables I, IV and V.

use slimstart_appmodel::{Application, FunctionId, ModuleId};

/// What a stack frame is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// A module's top-level execution (the `__init__` phase). Samples whose
    /// stack contains one of these frames are *initialization samples*
    /// (paper §IV-A2, the Lib-4 problem).
    ModuleInit(ModuleId),
    /// A regular function activation.
    Call(FunctionId),
}

/// One activation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frame {
    /// What is executing.
    pub kind: FrameKind,
    /// The source line currently executing inside this frame.
    pub line: u32,
}

impl Frame {
    /// The module this frame executes in.
    pub fn module(&self, app: &Application) -> ModuleId {
        match self.kind {
            FrameKind::ModuleInit(m) => m,
            FrameKind::Call(f) => app.function(f).module(),
        }
    }

    /// Human-readable function name (`<module:init>` for init frames).
    pub fn function_name(&self, app: &Application) -> String {
        match self.kind {
            FrameKind::ModuleInit(_) => "<module:init>".to_string(),
            FrameKind::Call(f) => app.function(f).name().to_string(),
        }
    }

    /// The modeled source file of this frame.
    pub fn file<'a>(&self, app: &'a Application) -> &'a str {
        app.module(self.module(app)).file()
    }

    /// Whether this is a module-initialization frame.
    pub fn is_init(&self) -> bool {
        matches!(self.kind, FrameKind::ModuleInit(_))
    }
}

/// The live activation stack of a process.
#[derive(Debug, Clone, Default)]
pub struct CallStack {
    frames: Vec<Frame>,
}

impl CallStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        CallStack { frames: Vec::new() }
    }

    /// Pushes a new activation.
    pub fn push(&mut self, kind: FrameKind, line: u32) {
        self.frames.push(Frame { kind, line });
    }

    /// Pops the innermost activation.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty (an interpreter bug).
    pub fn pop(&mut self) -> Frame {
        self.frames.pop().expect("CallStack::pop on empty stack")
    }

    /// Updates the current line of the innermost frame (as execution moves
    /// from statement to statement).
    pub fn set_line(&mut self, line: u32) {
        if let Some(top) = self.frames.last_mut() {
            top.line = line;
        }
    }

    /// The frames, outermost first.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Stack depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Whether any live frame is a module-init frame — i.e. whether a sample
    /// taken now would be classified as an initialization sample.
    pub fn in_init(&self) -> bool {
        self.frames.iter().any(Frame::is_init)
    }

    /// A snapshot of the current path (outermost first), for the sampler.
    pub fn snapshot(&self) -> Vec<Frame> {
        self.frames.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::app::AppBuilder;
    use slimstart_appmodel::function::{Stmt, StmtKind};
    use slimstart_simcore::time::SimDuration;

    fn app() -> Application {
        let mut b = AppBuilder::new("t");
        let m = b.add_app_module("handler", SimDuration::ZERO, 0);
        let f = b.add_function(
            "main",
            m,
            3,
            vec![Stmt {
                line: 4,
                kind: StmtKind::Work(SimDuration::ZERO),
            }],
        );
        b.add_handler("h", f);
        b.finish().unwrap()
    }

    #[test]
    fn push_pop_depth() {
        let mut s = CallStack::new();
        assert_eq!(s.depth(), 0);
        s.push(FrameKind::ModuleInit(ModuleId::from_index(0)), 1);
        s.push(FrameKind::Call(FunctionId::from_index(0)), 3);
        assert_eq!(s.depth(), 2);
        let top = s.pop();
        assert_eq!(top.kind, FrameKind::Call(FunctionId::from_index(0)));
        assert_eq!(s.depth(), 1);
    }

    #[test]
    #[should_panic(expected = "empty stack")]
    fn pop_empty_panics() {
        CallStack::new().pop();
    }

    #[test]
    fn set_line_updates_top() {
        let mut s = CallStack::new();
        s.push(FrameKind::Call(FunctionId::from_index(0)), 3);
        s.set_line(9);
        assert_eq!(s.frames()[0].line, 9);
        // No-op on empty stack.
        let mut empty = CallStack::new();
        empty.set_line(1);
        assert_eq!(empty.depth(), 0);
    }

    #[test]
    fn in_init_detects_module_frames() {
        let mut s = CallStack::new();
        s.push(FrameKind::Call(FunctionId::from_index(0)), 1);
        assert!(!s.in_init());
        s.push(FrameKind::ModuleInit(ModuleId::from_index(0)), 1);
        assert!(s.in_init());
    }

    #[test]
    fn frame_introspection() {
        let app = app();
        let call = Frame {
            kind: FrameKind::Call(FunctionId::from_index(0)),
            line: 4,
        };
        assert_eq!(call.function_name(&app), "main");
        assert_eq!(call.file(&app), "handler.py");
        assert!(!call.is_init());
        let init = Frame {
            kind: FrameKind::ModuleInit(ModuleId::from_index(0)),
            line: 1,
        };
        assert_eq!(init.function_name(&app), "<module:init>");
        assert!(init.is_init());
    }

    #[test]
    fn snapshot_is_independent_copy() {
        let mut s = CallStack::new();
        s.push(FrameKind::Call(FunctionId::from_index(0)), 1);
        let snap = s.snapshot();
        s.pop();
        assert_eq!(snap.len(), 1);
        assert_eq!(s.depth(), 0);
    }
}
