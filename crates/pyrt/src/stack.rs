//! Call stacks: what the sampling profiler observes.
//!
//! Every live activation — a function call or a module top-level execution
//! ("module init") — is a [`Frame`]. The profiler's per-sample *call path*
//! is a snapshot of the stack from the entry point down to the innermost
//! frame, exactly like the paths in the paper's Tables I, IV and V.

use slimstart_appmodel::{Application, FunctionId, ModuleId};

/// What a stack frame is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// A module's top-level execution (the `__init__` phase). Samples whose
    /// stack contains one of these frames are *initialization samples*
    /// (paper §IV-A2, the Lib-4 problem).
    ModuleInit(ModuleId),
    /// A regular function activation.
    Call(FunctionId),
}

/// One activation record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frame {
    /// What is executing.
    pub kind: FrameKind,
    /// The source line currently executing inside this frame.
    pub line: u32,
}

impl Frame {
    /// The module this frame executes in.
    pub fn module(&self, app: &Application) -> ModuleId {
        match self.kind {
            FrameKind::ModuleInit(m) => m,
            FrameKind::Call(f) => app.function(f).module(),
        }
    }

    /// Human-readable function name (`<module:init>` for init frames).
    ///
    /// Borrows from the application (or the static init label) instead of
    /// allocating; any formatting happens at the display site.
    pub fn function_name<'a>(&self, app: &'a Application) -> &'a str {
        match self.kind {
            FrameKind::ModuleInit(_) => "<module:init>",
            FrameKind::Call(f) => app.function(f).name(),
        }
    }

    /// The modeled source file of this frame.
    pub fn file<'a>(&self, app: &'a Application) -> &'a str {
        app.module(self.module(app)).file()
    }

    /// Whether this is a module-initialization frame.
    pub fn is_init(&self) -> bool {
        matches!(self.kind, FrameKind::ModuleInit(_))
    }
}

/// Fingerprint of the empty stack. Any non-zero constant works; a fixed
/// odd pattern keeps `fingerprint()` total without an `Option`.
const EMPTY_FINGERPRINT: u64 = 0x9e37_79b9_7f4a_7c15;

/// One link of the incremental hash chain: parent fingerprint mixed with
/// the frame's own hash (FxHash-style rotate-xor-multiply, seedless and
/// deterministic).
#[inline]
fn chain_link(parent: u64, frame: &Frame) -> u64 {
    (parent.rotate_left(5) ^ fxhash::hash64(frame)).wrapping_mul(0x51_7c_c1_b7_27_22_0a_95)
}

/// The live activation stack of a process.
///
/// Alongside the frames it maintains two incremental summaries so the
/// sampling hot path never has to walk the stack:
///
/// * a **hash chain** — `chain[i]` fingerprints `frames[..=i]`, updated in
///   O(1) on push/pop/set-line, so [`CallStack::fingerprint`] identifies
///   the whole current path in one word (used by the sampler to dedupe
///   repeated identical stacks without cloning them);
/// * an **init-frame counter** making [`CallStack::in_init`] O(1) instead
///   of a scan.
#[derive(Debug, Clone, Default)]
pub struct CallStack {
    frames: Vec<Frame>,
    chain: Vec<u64>,
    init_frames: usize,
}

impl CallStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        CallStack::default()
    }

    /// Pushes a new activation.
    pub fn push(&mut self, kind: FrameKind, line: u32) {
        let frame = Frame { kind, line };
        let parent = self.fingerprint();
        self.chain.push(chain_link(parent, &frame));
        self.frames.push(frame);
        if frame.is_init() {
            self.init_frames += 1;
        }
    }

    /// Pops the innermost activation.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty (an interpreter bug).
    pub fn pop(&mut self) -> Frame {
        let frame = self.frames.pop().expect("CallStack::pop on empty stack");
        self.chain.pop();
        if frame.is_init() {
            self.init_frames -= 1;
        }
        frame
    }

    /// Updates the current line of the innermost frame (as execution moves
    /// from statement to statement).
    pub fn set_line(&mut self, line: u32) {
        if let Some(top) = self.frames.last_mut() {
            if top.line == line {
                return;
            }
            top.line = line;
            let parent = if self.chain.len() >= 2 {
                self.chain[self.chain.len() - 2]
            } else {
                EMPTY_FINGERPRINT
            };
            let link = chain_link(parent, top);
            *self.chain.last_mut().expect("chain tracks frames") = link;
        }
    }

    /// The frames, outermost first.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Stack depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Whether any live frame is a module-init frame — i.e. whether a sample
    /// taken now would be classified as an initialization sample.
    pub fn in_init(&self) -> bool {
        self.init_frames > 0
    }

    /// One-word fingerprint of the whole current path (frames and lines).
    /// Equal stacks always produce equal fingerprints; the (astronomically
    /// rare) converse collision is why consumers confirm with a slice
    /// comparison before reusing a cached path.
    #[inline]
    pub fn fingerprint(&self) -> u64 {
        self.chain.last().copied().unwrap_or(EMPTY_FINGERPRINT)
    }

    /// A snapshot of the current path (outermost first), for the sampler.
    ///
    /// Allocates a fresh `Vec` per call — the legacy capture path. The
    /// sampler's zero-clone path pairs [`CallStack::fingerprint`] with a
    /// shared `Arc<[Frame]>` cache instead.
    pub fn snapshot(&self) -> Vec<Frame> {
        self.frames.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slimstart_appmodel::app::AppBuilder;
    use slimstart_appmodel::function::{Stmt, StmtKind};
    use slimstart_simcore::time::SimDuration;

    fn app() -> Application {
        let mut b = AppBuilder::new("t");
        let m = b.add_app_module("handler", SimDuration::ZERO, 0);
        let f = b.add_function(
            "main",
            m,
            3,
            vec![Stmt {
                line: 4,
                kind: StmtKind::Work(SimDuration::ZERO),
            }],
        );
        b.add_handler("h", f);
        b.finish().unwrap()
    }

    #[test]
    fn push_pop_depth() {
        let mut s = CallStack::new();
        assert_eq!(s.depth(), 0);
        s.push(FrameKind::ModuleInit(ModuleId::from_index(0)), 1);
        s.push(FrameKind::Call(FunctionId::from_index(0)), 3);
        assert_eq!(s.depth(), 2);
        let top = s.pop();
        assert_eq!(top.kind, FrameKind::Call(FunctionId::from_index(0)));
        assert_eq!(s.depth(), 1);
    }

    #[test]
    #[should_panic(expected = "empty stack")]
    fn pop_empty_panics() {
        CallStack::new().pop();
    }

    #[test]
    fn set_line_updates_top() {
        let mut s = CallStack::new();
        s.push(FrameKind::Call(FunctionId::from_index(0)), 3);
        s.set_line(9);
        assert_eq!(s.frames()[0].line, 9);
        // No-op on empty stack.
        let mut empty = CallStack::new();
        empty.set_line(1);
        assert_eq!(empty.depth(), 0);
    }

    #[test]
    fn in_init_detects_module_frames() {
        let mut s = CallStack::new();
        s.push(FrameKind::Call(FunctionId::from_index(0)), 1);
        assert!(!s.in_init());
        s.push(FrameKind::ModuleInit(ModuleId::from_index(0)), 1);
        assert!(s.in_init());
    }

    #[test]
    fn frame_introspection() {
        let app = app();
        let call = Frame {
            kind: FrameKind::Call(FunctionId::from_index(0)),
            line: 4,
        };
        assert_eq!(call.function_name(&app), "main");
        assert_eq!(call.file(&app), "handler.py");
        assert!(!call.is_init());
        let init = Frame {
            kind: FrameKind::ModuleInit(ModuleId::from_index(0)),
            line: 1,
        };
        assert_eq!(init.function_name(&app), "<module:init>");
        assert!(init.is_init());
    }

    #[test]
    fn fingerprint_tracks_stack_identity() {
        let mut a = CallStack::new();
        let mut b = CallStack::new();
        assert_eq!(a.fingerprint(), b.fingerprint());

        a.push(FrameKind::Call(FunctionId::from_index(0)), 1);
        b.push(FrameKind::Call(FunctionId::from_index(0)), 1);
        assert_eq!(a.fingerprint(), b.fingerprint());

        a.set_line(7);
        assert_ne!(a.fingerprint(), b.fingerprint());
        b.set_line(7);
        assert_eq!(a.fingerprint(), b.fingerprint());

        a.push(FrameKind::ModuleInit(ModuleId::from_index(1)), 1);
        assert_ne!(a.fingerprint(), b.fingerprint());
        a.pop();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprint_matches_recomputed_chain() {
        // Incremental maintenance must agree with building the same stack
        // from scratch, whatever the push/pop/set_line interleaving.
        let mut incremental = CallStack::new();
        incremental.push(FrameKind::Call(FunctionId::from_index(0)), 1);
        incremental.push(FrameKind::ModuleInit(ModuleId::from_index(2)), 1);
        incremental.set_line(9);
        incremental.push(FrameKind::Call(FunctionId::from_index(3)), 4);
        incremental.pop();
        incremental.set_line(12);

        let mut fresh = CallStack::new();
        for f in incremental.frames() {
            fresh.push(f.kind, f.line);
        }
        assert_eq!(incremental.fingerprint(), fresh.fingerprint());
    }

    #[test]
    fn in_init_is_counted_not_scanned() {
        let mut s = CallStack::new();
        s.push(FrameKind::ModuleInit(ModuleId::from_index(0)), 1);
        s.push(FrameKind::ModuleInit(ModuleId::from_index(1)), 1);
        s.push(FrameKind::Call(FunctionId::from_index(0)), 2);
        assert!(s.in_init());
        s.pop();
        s.pop();
        assert!(s.in_init());
        s.pop();
        assert!(!s.in_init());
    }

    #[test]
    fn snapshot_is_independent_copy() {
        let mut s = CallStack::new();
        s.push(FrameKind::Call(FunctionId::from_index(0)), 1);
        let snap = s.snapshot();
        s.pop();
        assert_eq!(snap.len(), 1);
        assert_eq!(s.depth(), 0);
    }
}
