//! # slimstart-pyrt
//!
//! A miniature Python-like *runtime substrate*: the module loader and
//! interpreter that execute [`Application`](slimstart_appmodel::Application)s
//! on a virtual clock.
//!
//! This crate replaces CPython in the reproduction. It implements exactly
//! the semantics the paper's optimization relies on:
//!
//! * **Eager transitive loading** — loading a module executes its top level,
//!   which first loads all of its *global* imports, recursively, with a
//!   process-wide module cache (load once per process lifetime).
//! * **Parent-package loading** — importing `a.b.c` first imports `a`, then
//!   `a.b` (CPython's rule), so deferring a subpackage moves its whole
//!   subtree's cost to first use.
//! * **Deferred (lazy) imports** — imports rewritten by the optimizer do not
//!   load at importer-load time; the interpreter loads the target's module
//!   graph at the first call that needs it, charging the cost to execution
//!   rather than initialization.
//! * **Observable call stacks** — every module-init and function frame is
//!   visible to an attached [`ExecutionObserver`],
//!   which is how the SlimStart sampler captures call paths without
//!   instrumenting the code.
//!
//! # Example
//!
//! ```
//! use slimstart_appmodel::catalog::by_code;
//! use slimstart_pyrt::process::Process;
//! use slimstart_simcore::rng::SimRng;
//! use std::sync::Arc;
//!
//! let built = by_code("R-GB").expect("catalog entry").build(7)?;
//! let app = Arc::new(built.app);
//! let mut proc = Process::new(Arc::clone(&app), 1.0);
//! let init = proc.cold_start(built.app_module)?;
//! assert!(!init.is_zero());
//! let handler = app.handler_by_name("handler").expect("handler exists");
//! let outcome = proc.invoke(handler, &mut SimRng::seed_from(1))?;
//! assert!(!outcome.exec_time.is_zero());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod fault;
pub mod loader;
pub mod observer;
pub mod process;
pub mod snapshot;
pub mod stack;
pub mod zygote;

pub use fault::RuntimeFault;
pub use loader::{LoaderPlan, ModuleSet};
pub use observer::{AdvanceContext, ExecutionObserver, NullObserver};
pub use process::{InvocationOutcome, LoadEvent, Process};
pub use snapshot::{deployment_fingerprint, SnapLoad, Snapshot, SnapshotKey, SnapshotStore};
pub use stack::{CallStack, Frame, FrameKind};
pub use zygote::{ZygoteCounters, ZygoteImage, DEFAULT_FORK_COST};
